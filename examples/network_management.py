"""Network management (the paper's first industry example, Section 3).

Generates a layered data-center dependency DAG (services depend on
firewalls depend on servers ... down to core switches) and runs the
paper's query: "the component that is depended upon — both directly and
indirectly — by the largest number of entities", i.e. a variable-length
DEPENDS_ON* traversal with count(DISTINCT ...) and ORDER BY ... LIMIT 1.

Run with:  python examples/network_management.py
"""

from repro import CypherEngine
from repro.datasets.datacenter import datacenter_graph

CRITICAL_COMPONENT_QUERY = """
MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
RETURN svc.name AS component, count(DISTINCT dep) AS dependents
ORDER BY dependents DESC
LIMIT 1
"""

BLAST_RADIUS_QUERY = """
MATCH (svc:Service {name: $component})<-[:DEPENDS_ON*]-(dep:Service)
RETURN dep.kind AS kind, count(DISTINCT dep) AS affected
ORDER BY affected DESC
"""


def main():
    graph, layers = datacenter_graph(layers=4, width=6, fanout=2, seed=7)
    engine = CypherEngine(graph)

    print(
        "Topology: %d services in %d layers, %d dependency edges\n"
        % (graph.node_count(), len(layers), graph.relationship_count())
    )

    critical = engine.run(CRITICAL_COMPONENT_QUERY).single()
    print(
        "Most depended-upon component: %s (%d transitive dependents)\n"
        % (critical["component"], critical["dependents"])
    )

    print("Blast radius of that component, by service kind:")
    radius = engine.run(
        BLAST_RADIUS_QUERY, parameters={"component": critical["component"]}
    )
    print(radius.pretty())
    print()

    # Top-5 ranking, not just the winner.
    print("Top 5 critical components:")
    top5 = engine.run(
        "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
        "RETURN svc.name AS component, count(DISTINCT dep) AS dependents "
        "ORDER BY dependents DESC, component LIMIT 5"
    )
    print(top5.pretty())
    print()

    print("The physical plan (note VarLengthExpand — the paper's Expand):")
    print(engine.explain(CRITICAL_COMPONENT_QUERY))


if __name__ == "__main__":
    main()
