"""Built-in graph algorithms alongside Cypher (paper Section 1).

Property-graph databases pair a query language with "built-in support for
graph algorithms (e.g., Page Rank, subgraph matching and so on)".  This
example runs PageRank, shortest paths, components and triangles over a
citation network, mixing the library API with Cypher queries on the same
graph.

Run with:  python examples/graph_algorithms.py
"""

from repro import CypherEngine
from repro.algorithms import (
    connected_components,
    pagerank,
    shortest_path,
    triangle_count,
)
from repro.datasets.citations import citation_network


def main():
    graph, handles = citation_network(
        publications=40, researchers=8, students=10, seed=17
    )
    engine = CypherEngine(graph)
    print(
        "Citation network: %d nodes, %d relationships\n"
        % (graph.node_count(), graph.relationship_count())
    )

    # PageRank over the CITES subgraph: influential publications.
    scores = pagerank(graph, rel_types=("CITES",))
    publications = sorted(
        handles["publications"], key=lambda p: scores[p], reverse=True
    )
    print("Most influential publications by PageRank over CITES:")
    for publication in publications[:5]:
        print(
            "  acmid %-6s pagerank %.4f"
            % (
                graph.property_value(publication, "acmid"),
                scores[publication],
            )
        )
    print()

    # Cross-check the winner with a pure Cypher citation count.
    top = publications[0]
    direct = engine.run(
        "MATCH (p:Publication {acmid: $acmid})<-[:CITES]-(q) "
        "RETURN count(q) AS direct_citations",
        parameters={"acmid": graph.property_value(top, "acmid")},
    ).value()
    print("Top publication has %d direct citations (Cypher count)\n" % direct)

    # Shortest citation chain between the newest and oldest publications.
    newest, oldest = publications and (
        handles["publications"][-1], handles["publications"][0]
    )
    chain = shortest_path(graph, newest, oldest, rel_types=("CITES",))
    if chain is None:
        print("No citation chain from newest to oldest publication")
    else:
        acmids = [graph.property_value(node, "acmid") for node in chain.nodes]
        print("Citation chain (%d hops): %s" % (len(chain), " -> ".join(map(str, acmids))))
    print()

    # Structure: components and triangles.
    components = connected_components(graph)
    print(
        "Weakly connected components: %d (largest has %d nodes)"
        % (len(components), len(components[0]))
    )
    print("Triangles in the collaboration structure:", triangle_count(graph))


if __name__ == "__main__":
    main()
