"""Quickstart: build a graph, run Cypher, inspect results.

Run with:  python examples/quickstart.py
"""

from repro import CypherEngine, GraphBuilder


def main():
    # 1. Build a property graph programmatically (or start empty and
    #    CREATE everything through Cypher — see below).
    graph, ids = (
        GraphBuilder()
        .node("ann", "Person", name="Ann", age=34)
        .node("bob", "Person", name="Bob", age=29)
        .node("cat", "Person", name="Cat", age=41)
        .node("acme", "Company", name="ACME")
        .rel("ann", "KNOWS", "bob", since=2011)
        .rel("bob", "KNOWS", "cat", since=2015)
        .rel("ann", "WORKS_AT", "acme")
        .rel("cat", "WORKS_AT", "acme")
        .build()
    )

    engine = CypherEngine(graph)

    # 2. Pattern matching with the ASCII-art syntax.
    result = engine.run(
        "MATCH (a:Person)-[k:KNOWS]->(b:Person) "
        "RETURN a.name AS a, k.since AS since, b.name AS b "
        "ORDER BY since"
    )
    print("Who knows whom:")
    print(result.pretty())
    print()

    # 3. Variable-length traversal (transitive closure).
    result = engine.run(
        "MATCH (a:Person {name: 'Ann'})-[:KNOWS*]->(reached) "
        "RETURN reached.name AS name"
    )
    print("Reachable from Ann over KNOWS*:", result.values("name"))
    print()

    # 4. Aggregation with implicit grouping keys.
    result = engine.run(
        "MATCH (c:Company)<-[:WORKS_AT]-(p:Person) "
        "RETURN c.name AS company, count(p) AS headcount, "
        "avg(p.age) AS avg_age"
    )
    print("Company stats:", result.single())
    print()

    # 5. Updates: create through Cypher and read your own writes.
    engine.run(
        "MATCH (a:Person {name: 'Ann'}), (c:Person {name: 'Cat'}) "
        "MERGE (a)-[:KNOWS {since: 2020}]->(c)"
    )
    count = engine.run(
        "MATCH (:Person)-[k:KNOWS]->(:Person) RETURN count(k) AS k"
    ).value()
    print("KNOWS relationships after MERGE:", count)
    print()

    # 6. EXPLAIN shows the Volcano-style plan with Expand operators.
    print("Plan for a traversal query:")
    print(engine.explain(
        "MATCH (a:Person)-[:KNOWS]->(b) WHERE b.age > 30 RETURN a.name"
    ))


if __name__ == "__main__":
    main()
