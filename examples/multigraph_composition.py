"""Cypher 10 multiple graphs and query composition (paper Example 6.1).

Two named graphs live in a catalog: ``soc_net`` (FRIEND relationships
with 'since' years) and ``register`` (the same people, IN edges to City
nodes; node identities shared across graphs).  The first query projects a
new graph ``friends`` connecting people who share a friend; the second
composes over it, joining back to the registry for same-city pairs —
exactly the paper's example, including the $duration parameter.

Run with:  python examples/multigraph_composition.py
"""

from repro import CypherEngine
from repro.datasets.social import social_with_registry

PROJECTION_QUERY = """
FROM GRAPH soc_net AT "hdfs://data/soc_network"
MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b)
WHERE abs(r2.since - r1.since) < $duration
WITH DISTINCT a, b
RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)
"""

COMPOSITION_QUERY = """
QUERY GRAPH friends
MATCH (a)-[:SHARE_FRIEND]-(b)
FROM GRAPH register AT "bolt://data/citizens"
MATCH (a)-[:IN]->(c:City)<-[:IN]-(b)
RETURN DISTINCT a.name AS a, b.name AS b, c.name AS city
"""


def main():
    catalog, people, cities = social_with_registry(
        people=30, cities=4, avg_friends=4, seed=20
    )
    engine = CypherEngine(catalog.default(), catalog=catalog)

    soc_net = catalog.resolve(name="soc_net")
    print(
        "soc_net: %d people, %d FRIEND edges; register adds %d cities\n"
        % (soc_net.node_count(), soc_net.relationship_count(), len(cities))
    )

    # Query 1: graph-to-graph transformation (RETURN GRAPH).
    first = engine.run(PROJECTION_QUERY, parameters={"duration": 10})
    friends = first.graph("friends")
    print(
        "Projected graph 'friends': %d nodes, %d SHARE_FRIEND edges"
        % (friends.node_count(), friends.relationship_count())
    )

    # Query 2: compose — read the projected graph, then join the registry.
    second = engine.run(COMPOSITION_QUERY)
    print(
        "\nFriend-sharing pairs living in the same city (%d):"
        % len(second)
    )
    print(second.pretty(limit=12))

    # The catalog now contains all three graphs; further queries can keep
    # chaining (the paper: "query chains can also be formed into a tree").
    print("\nCatalog graphs:", catalog.names())


if __name__ == "__main__":
    main()
