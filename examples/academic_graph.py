"""The paper's Section 3 walkthrough, executed end to end.

Builds the Figure 1 graph (researchers, students, publications) and runs
the running example query stage by stage, printing every intermediate
table the paper prints — Figure 2(a), Figure 2(b), the line-4 and line-5
tables, and the final result (Nils 0 3 / Elin 2 1).

Run with:  python examples/academic_graph.py
"""

from repro import CypherEngine
from repro.datasets.paper import figure1_graph

STAGES = [
    (
        "Figure 2(a): bindings after OPTIONAL MATCH (lines 1-2)",
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "RETURN r.name AS r, s.name AS s",
    ),
    (
        "Figure 2(b): after WITH r, count(s) (line 3)",
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "RETURN r.name AS r, studentsSupervised",
    ),
    (
        "After MATCH (r)-[:AUTHORS]->(p1) (line 4) — Thor drops out",
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "RETURN r.name AS r, studentsSupervised, p1.acmid AS p1",
    ),
    (
        "After OPTIONAL MATCH (p1)<-[:CITES*]-(p2) (line 5) — note the "
        "two identical rows (the paper's daggers)",
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
        "RETURN r.name AS r, studentsSupervised, "
        "p1.acmid AS p1, p2.acmid AS p2",
    ),
    (
        "Final result (lines 6-7)",
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
        "RETURN r.name, studentsSupervised, "
        "count(DISTINCT p2) AS citedCount",
    ),
]


def main():
    graph, _ids = figure1_graph()
    engine = CypherEngine(graph)
    print("Graph: %d nodes, %d relationships (the paper's Figure 1)\n"
          % (graph.node_count(), graph.relationship_count()))
    for title, query in STAGES:
        print("=" * 72)
        print(title)
        print("-" * 72)
        print(engine.run(query).pretty())
        print()


if __name__ == "__main__":
    main()
