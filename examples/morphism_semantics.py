"""Configurable pattern-matching morphisms (paper Sections 4.2 and 8).

Demonstrates the paper's one-node/one-loop example: under Cypher's edge
isomorphism the pattern (x)-[*0..]->(x) has exactly two matches; under
homomorphism it would have infinitely many (here bounded by a cap); node
isomorphism is stricter still.

Run with:  python examples/morphism_semantics.py
"""

from repro import CypherEngine, Morphism
from repro.datasets.paper import self_loop_graph
from repro.graph.builder import GraphBuilder
from repro.semantics.morphism import EDGE_ISOMORPHISM, NODE_ISOMORPHISM


def count_matches(graph, morphism, query):
    engine = CypherEngine(graph, morphism=morphism, mode="interpreter")
    return engine.run(query).value()


def main():
    # --- the paper's self-loop example -------------------------------
    graph, _ = self_loop_graph()
    query = "MATCH (x)-[*0..]->(x) RETURN count(*) AS n"

    print("One node, one self-loop; pattern (x)-[*0..]->(x):")
    print(
        "  edge isomorphism (Cypher 9):   %d matches"
        % count_matches(graph, EDGE_ISOMORPHISM, query)
    )
    for cap in (4, 8):
        homo = Morphism("homomorphism", max_length=cap)
        print(
            "  homomorphism, capped at %d:    %d matches (unbounded in the limit)"
            % (cap, count_matches(graph, homo, query))
        )
    print()

    # --- a diamond graph separates all three modes --------------------
    diamond, _ = (
        GraphBuilder()
        .node("a", v=1).node("b", v=2).node("c", v=3).node("d", v=4)
        .rel("a", "R", "b").rel("b", "R", "d")
        .rel("a", "R", "c").rel("c", "R", "d")
        .rel("b", "R", "c")
        .build()
    )
    diamond_query = "MATCH (x {v: 1})-[*1..4]->(y {v: 4}) RETURN count(*) AS n"
    print("Diamond graph (a->b->d, a->c->d, b->c); paths a ~> d, length <= 4:")
    print(
        "  node isomorphism:  %d  (no repeated nodes)"
        % count_matches(diamond, NODE_ISOMORPHISM, diamond_query)
    )
    print(
        "  edge isomorphism:  %d  (Cypher 9 default)"
        % count_matches(diamond, EDGE_ISOMORPHISM, diamond_query)
    )
    print(
        "  homomorphism:      %d  (capped at 4 steps)"
        % count_matches(
            diamond, Morphism("homomorphism", max_length=4), diamond_query
        )
    )


if __name__ == "__main__":
    main()
