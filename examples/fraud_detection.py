"""Fraud detection (the paper's second industry example, Section 3).

Generates a synthetic identity graph in which account holders HAS
personal-information nodes (SSN / PhoneNumber / Address), plants a few
fraud rings that share PII, and runs the paper's detection query —
collect() and labels() included — to surface them.

Run with:  python examples/fraud_detection.py
"""

from repro import CypherEngine
from repro.datasets.fraud import fraud_graph

FRAUD_QUERY = """
MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
WITH pInfo,
     collect(accHolder.uniqueId) AS accountHolders,
     count(*) AS fraudRingCount
WHERE fraudRingCount > 1
RETURN accountHolders,
       labels(pInfo) AS personalInformation,
       fraudRingCount
"""


def main():
    graph, planted = fraud_graph(holders=40, rings=5, ring_size=3, seed=42)
    engine = CypherEngine(graph)

    print(
        "Identity graph: %d nodes, %d relationships; %d rings planted\n"
        % (graph.node_count(), graph.relationship_count(), len(planted))
    )

    result = engine.run(FRAUD_QUERY)
    print("Detected rings:")
    print(result.pretty())
    print()

    detected = {
        tuple(sorted(record["accountHolders"])) for record in result.records
    }
    expected = {
        tuple(
            sorted(
                graph.property_value(member, "uniqueId")
                for member in ring["members"]
            )
        )
        for ring in planted
    }
    print("All planted rings detected:", detected == expected)

    # A second, stricter analysis: holders entangled in 2+ rings.
    repeat_offenders = engine.run(
        """
        MATCH (h:AccountHolder)-[:HAS]->(pInfo)<-[:HAS]-(other:AccountHolder)
        WHERE h <> other
        WITH h, count(DISTINCT pInfo) AS sharedPieces
        WHERE sharedPieces > 1
        RETURN h.uniqueId AS holder, sharedPieces
        ORDER BY sharedPieces DESC
        """
    )
    print("\nHolders sharing more than one piece of PII:")
    print(repeat_offenders.pretty())


if __name__ == "__main__":
    main()
