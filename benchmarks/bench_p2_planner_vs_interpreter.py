"""P2: cost-based planning vs. the naive reference interpreter.

The reference interpreter enumerates match() by trying every node as a
chain start; the planner enters through the most selective label index
(the Section 2 design).  On a label-selective query the planner's
advantage must grow with graph size — the crossover the cost model exists
to buy.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

QUERY = (
    "MATCH (a:Rare)-[:LINK]->(b:Common) "
    "WHERE b.i >= 0 RETURN count(*) AS n"
)


def build_graph(commons, rares=3, fanout=2):
    graph = MemoryGraph()
    common_nodes = [
        graph.create_node(("Common",), {"i": index})
        for index in range(commons)
    ]
    for rare_index in range(rares):
        rare = graph.create_node(("Rare",), {"i": rare_index})
        for offset in range(fanout):
            graph.create_relationship(
                rare, common_nodes[(rare_index + offset) % commons], "LINK"
            )
    # noise edges among the common nodes
    for index in range(commons - 1):
        graph.create_relationship(
            common_nodes[index], common_nodes[index + 1], "NEXT"
        )
    return graph


def _time(callable_, repeats=3):
    callable_()  # warm-up: imports, statistics cache
    started = time.perf_counter()
    for _ in range(repeats):
        result = callable_()
    return (time.perf_counter() - started) / repeats, result


def test_p2_same_answers():
    graph = build_graph(commons=200)
    engine = CypherEngine(graph)
    interpreted = engine.run(QUERY, mode="interpreter")
    planned = engine.run(QUERY, mode="planner")
    assert interpreted.table.same_bag(planned.table)


def test_p2_planner_wins_and_gap_grows(table_report):
    rows = []
    ratios = []
    for commons in (100, 800, 6400):
        graph = build_graph(commons)
        engine = CypherEngine(graph)
        planner_seconds, planned = _time(
            lambda: engine.run(QUERY, mode="planner").value()
        )
        interpreter_seconds, interpreted = _time(
            lambda: engine.run(QUERY, mode="interpreter").value()
        )
        assert planned == interpreted == 6
        ratio = interpreter_seconds / max(planner_seconds, 1e-9)
        ratios.append(ratio)
        rows.append(
            (commons, "%.3f ms" % (planner_seconds * 1e3),
             "%.3f ms" % (interpreter_seconds * 1e3), "%.1fx" % ratio)
        )
    table_report(
        "P2 — planner (label-index entry) vs reference interpreter",
        ["common nodes", "planner", "interpreter", "interp/planner"],
        rows,
    )
    assert ratios[-1] > 1.0
    assert ratios[-1] > ratios[0]


@pytest.mark.parametrize("mode", ["planner", "interpreter"])
def test_p2_benchmark(benchmark, mode):
    graph = build_graph(commons=400)
    engine = CypherEngine(graph)
    result = benchmark(engine.run, QUERY, mode=mode)
    assert result.value() == 6
