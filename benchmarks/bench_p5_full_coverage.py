"""P5: the constructs that used to fall back — named paths, comprehensions.

PR 1's slotted engine only paid off on the query fragment the planner
accepted; named paths, comprehensions and quantifiers escaped to the
~9x-slower reference interpreter.  This bench pins the closed gap: the
newly-planned workloads must beat the interpreter by a wide margin, and
*no* standard workload may fall back (asserted through the
``executed_by`` result metadata, so a planner coverage regression fails
the bench run rather than silently re-routing traffic to the tree
walker).
"""

import time

import pytest

from repro import CypherEngine
from repro.datasets.citations import citation_network
from repro.graph.store import MemoryGraph

NAMED_PATH_QUERY = (
    "MATCH p = (r:Rare)-[:LINK*1..2]->(c:Common) "
    "RETURN length(p) AS hops, [x IN nodes(p) | x.i] AS ids"
)

COMPREHENSION_QUERY = (
    "MATCH (c:Common) "
    "WHERE all(x IN [c.i, 1, 2, 3] WHERE x >= 0) "
    "RETURN reduce(s = 0, x IN [c.i, 1, 2, 3, 4, 5] | s + x) AS total, "
    "[x IN [1, 2, 3, 4, 5, 6] WHERE x > 2 | x * c.i] AS scaled"
)

#: The standard workloads of the pipeline suite; none may fall back.
STANDARD_WORKLOADS = [
    NAMED_PATH_QUERY,
    COMPREHENSION_QUERY,
    "MATCH (a:Rare)-[:LINK]->(b:Common) WHERE b.i >= 0 RETURN count(*) AS n",
    "MATCH (a:Common)-[:NEXT]->(b:Common) RETURN a.i AS i ORDER BY i LIMIT 10",
    "MATCH p = (a:Rare)-[:LINK]->(b) RETURN p",
    "MATCH (a:Common) RETURN [(a)-[:NEXT]->(b) | b.i] AS succ LIMIT 20",
]


def build_graph(commons=300, rares=3, fanout=2):
    graph = MemoryGraph()
    common_nodes = [
        graph.create_node(("Common",), {"i": index}) for index in range(commons)
    ]
    for rare_index in range(rares):
        rare = graph.create_node(("Rare",), {"i": rare_index})
        for offset in range(fanout):
            graph.create_relationship(
                rare, common_nodes[(rare_index + offset) % commons], "LINK"
            )
    for index in range(commons - 1):
        graph.create_relationship(
            common_nodes[index], common_nodes[index + 1], "NEXT"
        )
    # second LINK hop so *1..2 has somewhere to go
    for index in range(0, commons - 1, 3):
        graph.create_relationship(
            common_nodes[index], common_nodes[index + 1], "LINK"
        )
    return graph


def _time(callable_, repeats=21):
    """Median wall time: robust to GC pauses on sub-millisecond runs."""
    result = callable_()  # warm-up: imports, statistics, plan cache
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2], result


def test_p5_no_standard_workload_falls_back():
    graph = build_graph(commons=60)
    engine = CypherEngine(graph)
    for query in STANDARD_WORKLOADS:
        result = engine.run(query)
        assert result.executed_by == "planner", (
            "workload fell back to the interpreter (%s): %r"
            % (result.fallback_reason, query)
        )


def test_p5_same_answers():
    graph = build_graph(commons=120)
    engine = CypherEngine(graph)
    for query in (NAMED_PATH_QUERY, COMPREHENSION_QUERY):
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query


def test_p5_planner_beats_interpreter(table_report):
    rows = []
    ratios = {}
    graph = build_graph(commons=800)
    engine = CypherEngine(graph)
    for name, query in (
        ("named paths", NAMED_PATH_QUERY),
        ("comprehensions", COMPREHENSION_QUERY),
    ):
        planner_seconds, planned = _time(
            lambda query=query: engine.run(query, mode="planner")
        )
        interpreter_seconds, interpreted = _time(
            lambda query=query: engine.run(query, mode="interpreter")
        )
        assert interpreted.table.same_bag(planned.table)
        ratio = interpreter_seconds / max(planner_seconds, 1e-9)
        ratios[name] = ratio
        rows.append(
            (name, "%.3f ms" % (planner_seconds * 1e3),
             "%.3f ms" % (interpreter_seconds * 1e3), "%.1fx" % ratio)
        )
    table_report(
        "P5 — newly-planned constructs vs reference interpreter",
        ["workload", "planner", "interpreter", "interp/planner"],
        rows,
    )
    # Acceptance floor: the planner path must carry these at >= 3x.
    assert ratios["named paths"] >= 3.0
    assert ratios["comprehensions"] >= 3.0


@pytest.mark.parametrize("mode", ["planner", "interpreter"])
def test_p5_named_path_benchmark(benchmark, mode):
    graph = build_graph(commons=300)
    engine = CypherEngine(graph)
    result = benchmark(engine.run, NAMED_PATH_QUERY, mode=mode)
    assert len(result) > 0


@pytest.mark.parametrize("mode", ["planner", "interpreter"])
def test_p5_comprehension_benchmark(benchmark, mode):
    graph = build_graph(commons=300)
    engine = CypherEngine(graph)
    result = benchmark(engine.run, COMPREHENSION_QUERY, mode=mode)
    assert len(result) > 0


def test_p5_pipeline_workloads_stay_planned():
    """The P2/P4 suite queries also run slotted end to end."""
    from bench_p2_planner_vs_interpreter import QUERY as P2_QUERY
    from bench_p4_pipeline import PIPELINE as P4_PIPELINE

    graph = build_graph(commons=60)
    engine = CypherEngine(graph)
    assert engine.run(P2_QUERY).executed_by == "planner"

    citation_graph, _ = citation_network(publications=20, seed=9)
    citation_engine = CypherEngine(citation_graph)
    assert citation_engine.run(P4_PIPELINE).executed_by == "planner"
