"""P12: LDBC-style macro-workload — bulk ingest and mixed read/write drive.

Micro-benchmarks (P1–P11) time one operator or one query shape at a
time; this suite drives the whole stack the way a deployment would hit
it.  A seeded social dataset (:mod:`repro.datasets.ldbc_social`) is
bulk-loaded through the streaming CSV ingest path, then a mixed
workload of short reads, multi-statement update transactions and
multi-hop analytics runs concurrently through the session layer, and
the suite reports throughput and p50/p95/p99 tail latency per
operation class into ``BENCH_pipeline.json`` (section ``workloads``).

Acceptance floors:

* **bulk ingest** — deferred-index batch ingest (one sorted rebuild per
  property index, one Tarjan per reachability index at the end) must be
  ≥ 3x the per-row incremental baseline (``batch_size=1``,
  ``defer_indexes=False``) on the same table set with a ``:KNOWS``
  reachability index and three property indexes declared;
* **correctness preamble** — the concurrent run must be serializable:
  zero driver errors, zero snapshot invariant failures, zero snapshot
  version regressions, and the live store after the run must be
  byte-identical (ids included) to a serial replay of the committed
  transaction log on a copy of the initial store.  Deferred and
  incremental ingest must produce byte-identical stores *and* indexes.

Latency percentiles are reported per class (short_read / update_txn /
analytic) but deliberately not pinned — wall-clock tails on shared CI
hardware are weather, the committed trajectory is the record.
"""

import time

import pytest

from repro import CypherEngine
from repro.datasets import ldbc_social
from repro.graph.ingest import ingest_csv
from repro.graph.store import MemoryGraph
from repro.selftest import graph_state

from workload import (
    MacroWorkload,
    OPERATION_CLASSES,
    PERCENTILES,
    dataset_handles,
    prepare,
    replay,
)

#: Dataset scale for the ingest pin and the driver (see ldbc_counts).
SCALE = 0.1
SEED = 7

#: Deferred bulk ingest must beat per-row incremental by this factor.
INGEST_FLOOR = 3.0

#: Driver shape: writer transactions, reader threads, wall-clock cap.
UPDATE_TXNS = 60
READERS = 2
BUDGET_S = 60.0

#: The driving engine runs with a worker pool so the analytic class
#: (issued under mode ``auto``) fans parallel-claimed plans out over
#: the scheduler mid-workload; the threshold is lowered to match the
#: scale-0.1 message-scan sizes (hundreds of rows, not thousands).
WORKLOAD_WORKERS = 4
WORKLOAD_PARALLEL_THRESHOLD = 256

#: Indexes declared before ingest — the deferred path drops and
#: rebuilds these once; the incremental path maintains them per row.
#: The all-types condensation is the expensive one to maintain
#: incrementally: each added edge runs a DAG DFS, and the social graph
#: keeps its component DAG large until the cross-type cycles close.
PROPERTY_INDEXES = (("Person", "id"), ("Post", "id"), ("Forum", "id"))
REACHABILITY_INDEXES = (["KNOWS"], None)


def _dataset():
    return ldbc_social(scale=SCALE, seed=SEED)


def _tables(dataset):
    """The CSV table set, materialised once, re-iterable per run."""
    return [
        (table.name + ".csv", list(dataset.csv_lines(table)))
        for table in dataset.tables
    ]


def _indexed_graph():
    graph = MemoryGraph()
    for label, key in PROPERTY_INDEXES:
        graph.create_index(label, key)
    for types in REACHABILITY_INDEXES:
        graph.create_reachability_index(types)
    return graph


def _ingest(tables, batch_size, defer_indexes):
    graph = _indexed_graph()
    report = ingest_csv(
        graph, tables, batch_size=batch_size, defer_indexes=defer_indexes
    )
    return graph, report


def _median_time(callable_, repeats=5):
    """Median wall time after one warm-up run."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def _driven_engine():
    """An ingested engine plus the driver handles for it."""
    dataset = _dataset()
    graph, _report = _ingest(_tables(dataset), 1000, True)
    engine = CypherEngine(
        graph,
        workers=WORKLOAD_WORKERS,
        parallel_threshold=WORKLOAD_PARALLEL_THRESHOLD,
    )
    return engine, dataset_handles(dataset)


# ---------------------------------------------------------------------------
# Correctness preamble — the floors below are only meaningful if these hold
# ---------------------------------------------------------------------------

def test_p12_deferred_ingest_identical_to_incremental():
    """Same store, same indexes, whichever maintenance strategy ran."""
    dataset = _dataset()
    tables = _tables(dataset)
    deferred, _ = _ingest(tables, 1000, True)
    incremental, _ = _ingest(tables, 1, False)
    assert graph_state(deferred) == graph_state(incremental)
    for label, key in PROPERTY_INDEXES:
        assert deferred.index_snapshot(label, key) == (
            incremental.index_snapshot(label, key)
        ), (label, key)
    for types in REACHABILITY_INDEXES:
        assert deferred.reachability_snapshot(types) == (
            incremental.reachability_snapshot(types)
        ), types
    # And both equal the direct (non-CSV) emission of the same dataset.
    assert graph_state(deferred) == graph_state(dataset.to_graph("batch"))


def test_p12_concurrent_run_matches_serial_replay():
    """The macro drive is serializable: replay reproduces the live store."""
    engine, (persons, forums, posts, next_message) = _driven_engine()
    prepare(engine)
    baseline = engine.graph.copy()
    driver = MacroWorkload(
        engine, persons, forums, posts, next_message,
        update_txns=UPDATE_TXNS, readers=READERS,
        budget_s=BUDGET_S, seed=SEED,
    )
    result = driver.run()
    assert result.committed > 0, "writer never committed"
    assert result.reads > 0, "readers never ran"
    assert result.consistent(), (
        result.errors, result.invariant_failures, result.version_regressions
    )
    replayed = replay(CypherEngine(baseline), result.committed_log)
    assert graph_state(replayed) == graph_state(engine.graph)


# ---------------------------------------------------------------------------
# Pinned floor — deferred bulk ingest vs per-row incremental maintenance
# ---------------------------------------------------------------------------

def test_p12_deferred_bulk_ingest_beats_per_row(table_report):
    dataset = _dataset()
    tables = _tables(dataset)
    bulk_seconds = _median_time(lambda: _ingest(tables, 1000, True))
    row_seconds = _median_time(lambda: _ingest(tables, 1, False))
    ratio = row_seconds / max(bulk_seconds, 1e-9)
    counts = dataset.counts
    table_report(
        "P12 — streaming ingest, scale %.2f (%d persons)"
        % (SCALE, counts["persons"]),
        ["variant", "median", "vs bulk"],
        [
            ("bulk + deferred indexes", "%.3f ms" % (bulk_seconds * 1e3), "1.0x"),
            ("per-row + incremental", "%.3f ms" % (row_seconds * 1e3),
             "%.1fx" % ratio),
        ],
    )
    assert ratio >= INGEST_FLOOR, (
        "deferred bulk ingest only %.2fx over per-row incremental "
        "(floor %.1fx)" % (ratio, INGEST_FLOOR)
    )


# ---------------------------------------------------------------------------
# Latency profile — throughput and tails per class, into the trajectory
# ---------------------------------------------------------------------------

def test_p12_macro_latency_profile(table_report, pipeline_record):
    engine, handles = _driven_engine()
    prepare(engine)
    driver = MacroWorkload(
        engine, *handles,
        update_txns=UPDATE_TXNS, readers=READERS,
        budget_s=BUDGET_S, seed=SEED,
    )
    result = driver.run()
    assert result.consistent(), (
        result.errors, result.invariant_failures, result.version_regressions
    )
    stats = result.stats()
    rows = []
    for name in OPERATION_CLASSES:
        entry = stats[name]
        percentiles = [entry[key] for key, _q in PERCENTILES]
        assert percentiles == sorted(percentiles), (name, entry)
        rows.append(
            (
                name,
                entry["count"],
                "%.1f/s" % entry["throughput_per_s"],
                "%.3f ms" % entry["p50_ms"],
                "%.3f ms" % entry["p95_ms"],
                "%.3f ms" % entry["p99_ms"],
            )
        )
    fanout = result.parallelism
    table_report(
        "P12 — mixed workload, %d committed / %d aborted txns, %.2fs; "
        "analytic auto fan-out %d/%d runs (%d partitions, %d workers)"
        % (
            result.committed, result.aborted, result.elapsed_s,
            fanout["parallel_runs"], fanout["analytic_runs"],
            fanout["partitions"], fanout["max_workers"],
        ),
        ["class", "count", "throughput", "p50", "p95", "p99"],
        rows,
    )
    assert fanout["analytic_runs"] > 0, "analytic class never ran"
    pipeline_record(
        "workloads",
        "p12_macro[scale=%s]" % SCALE,
        {
            "scale": SCALE,
            "seed": SEED,
            "update_txns": UPDATE_TXNS,
            "readers": READERS,
            "workers": WORKLOAD_WORKERS,
            "committed": result.committed,
            "aborted": result.aborted,
            "snapshot_retries": result.snapshot_retries,
            "elapsed_s": result.elapsed_s,
            "parallelism": fanout,
            "classes": stats,
        },
    )


# ---------------------------------------------------------------------------
# pytest-benchmark medians — the ingest paths in the shared trajectory
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "batch_size,defer", [(1000, True), (1, False)],
    ids=["bulk-deferred", "per-row-incremental"],
)
def test_p12_ingest_benchmark(benchmark, batch_size, defer):
    tables = _tables(_dataset())
    graph, report = benchmark(_ingest, tables, batch_size, defer)
    assert report.nodes_created == graph.node_count()
    assert report.relationships_created == graph.relationship_count()
