"""E4: the Section 4.2 formal-semantics examples on the Figure 4 graph.

Reproduces Examples 4.2 (node-pattern satisfaction), 4.3 (rigid
satisfaction), 4.4 (rigid extensions; two assignments for one path),
4.5 (bag multiplicity 2) and 4.6 (the MATCH table), and benchmarks the
satisfaction relation and the match enumeration.
"""

import pytest

from repro import parse_pattern
from repro.datasets.paper import figure4_graph
from repro.semantics.expressions import Evaluator
from repro.semantics.matching import (
    match_pattern_tuple,
    rigid_extensions,
    satisfies,
)
from repro.values.path import Path


@pytest.fixture(scope="module")
def setup():
    graph, ids = figure4_graph()
    return graph, ids, Evaluator(graph)


def test_e4_example_42(setup, table_report):
    graph, ids, _ = setup
    chi1 = parse_pattern("(x:Teacher)")
    rows = []
    for name in ("n1", "n2", "n3", "n4"):
        node = ids[name]
        verdict = satisfies(Path.single(node), graph, {"x": node}, chi1)
        rows.append((name, "|=" if verdict else "|≠", "(x:Teacher)"))
    table_report("Example 4.2 — node pattern satisfaction",
                 ["node", "verdict", "pattern"], rows)
    assert [row[1] for row in rows] == ["|=", "|≠", "|=", "|="]


def test_e4_example_43(setup):
    graph, ids, _ = setup
    pattern = parse_pattern("(x:Teacher)-[:KNOWS*2]->(y)")
    path = Path((ids["n1"], ids["n2"], ids["n3"]), (ids["r1"], ids["r2"]))
    assert satisfies(path, graph, {"x": ids["n1"], "y": ids["n3"]}, pattern)
    # rigid patterns admit at most one assignment per path:
    assert not satisfies(path, graph, {"x": ids["n1"], "y": ids["n4"]}, pattern)


def test_e4_example_44(setup, table_report):
    graph, ids, _ = setup
    pattern = parse_pattern(
        "(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)"
    )
    rigid = rigid_extensions(pattern, 2)
    assert len(rigid) == 4  # π1..π4 in the paper
    p2 = Path(
        (ids["n1"], ids["n2"], ids["n3"], ids["n4"]),
        (ids["r1"], ids["r2"], ids["r3"]),
    )
    u2 = {"x": ids["n1"], "y": ids["n4"], "z": ids["n2"]}
    u2p = {"x": ids["n1"], "y": ids["n4"], "z": ids["n3"]}
    assert satisfies(p2, graph, u2, pattern)
    assert satisfies(p2, graph, u2p, pattern)
    table_report(
        "Example 4.4 — rigid(π) and the two assignments for p2",
        ["artifact", "paper", "measured"],
        [("|rigid(π)| (max 2 steps)", 4, len(rigid)),
         ("p2 satisfies under u2", True, True),
         ("p2 satisfies under u2'", True, True)],
    )


def test_e4_example_45_multiplicity(setup, table_report):
    graph, ids, evaluator = setup
    pattern = parse_pattern(
        "(x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher)"
    )
    matches = match_pattern_tuple((pattern,), graph, {}, evaluator)
    target = {"x": ids["n1"], "y": ids["n4"]}
    multiplicity = sum(1 for match in matches if match == target)
    assert multiplicity == 2
    table_report(
        "Example 4.5 — bag multiplicity of (x: n1, y: n4)",
        ["binding", "paper", "measured"],
        [("{x: n1, y: n4}", 2, multiplicity)],
    )


def test_e4_example_46_match_table(setup, table_report):
    graph, ids, evaluator = setup
    pattern = parse_pattern("(x)-[:KNOWS*]->(y)")
    rows = []
    for record in ({"x": ids["n1"]}, {"x": ids["n3"]}):
        for bindings in match_pattern_tuple((pattern,), graph, record, evaluator):
            merged = dict(record, **bindings)
            rows.append((str(merged["x"]), str(merged["y"])))
    assert sorted(rows) == [("n1", "n2"), ("n1", "n3"), ("n1", "n4"), ("n3", "n4")]
    table_report("Example 4.6 — [[MATCH (x)-[:KNOWS*]->(y)]](T)",
                 ["x", "y"], sorted(rows))


def test_e4_satisfaction_benchmark(benchmark, setup):
    graph, ids, _ = setup
    pattern = parse_pattern(
        "(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)"
    )
    p2 = Path(
        (ids["n1"], ids["n2"], ids["n3"], ids["n4"]),
        (ids["r1"], ids["r2"], ids["r3"]),
    )
    u2 = {"x": ids["n1"], "y": ids["n4"], "z": ids["n2"]}
    assert benchmark(satisfies, p2, graph, u2, pattern)


def test_e4_match_enumeration_benchmark(benchmark, setup):
    graph, ids, evaluator = setup
    pattern = parse_pattern("(x)-[:KNOWS*]->(y)")
    matches = benchmark(
        match_pattern_tuple, (pattern,), graph, {}, evaluator
    )
    assert len(matches) == 6  # all downstream pairs in the 4-chain
