"""E5: the Section 4.2 complexity discussion made executable.

On the one-node/one-loop graph, ``(x)-[*0..]->(x)`` has exactly 2 matches
under Cypher's edge isomorphism; under homomorphism the count grows
without bound (one match per traversal length), which we demonstrate with
increasing caps.
"""

import pytest

from repro import CypherEngine, Morphism
from repro.datasets.paper import self_loop_graph
from repro.semantics.morphism import EDGE_ISOMORPHISM

QUERY = "MATCH (x)-[*0..]->(x) RETURN count(*) AS n"


@pytest.fixture(scope="module")
def loop_graph():
    graph, _ = self_loop_graph()
    return graph


def test_e5_edge_isomorphism_is_finite(loop_graph, table_report):
    engine = CypherEngine(loop_graph)
    count = engine.run(QUERY).value()
    assert count == 2
    rows = [("edge isomorphism (Cypher 9)", "2", count)]
    for cap in (2, 4, 8, 16):
        homo = CypherEngine(
            loop_graph,
            morphism=Morphism("homomorphism", max_length=cap),
            mode="interpreter",
        )
        measured = homo.run(QUERY).value()
        assert measured == cap + 1  # grows linearly with the cap → ∞
        rows.append(("homomorphism, cap %d" % cap, "unbounded", measured))
    table_report(
        "E5 — matches of (x)-[*0..]->(x) on one node with one loop",
        ["semantics", "paper", "measured"],
        rows,
    )


def test_e5_both_paths_agree(loop_graph):
    engine = CypherEngine(loop_graph)
    assert engine.run(QUERY, mode="interpreter").value() == 2
    assert engine.run(QUERY, mode="planner").value() == 2


def test_e5_edge_isomorphism_benchmark(benchmark, loop_graph):
    engine = CypherEngine(loop_graph)
    result = benchmark(engine.run, QUERY)
    assert result.value() == 2


def test_e5_homomorphism_benchmark(benchmark, loop_graph):
    engine = CypherEngine(
        loop_graph,
        morphism=Morphism("homomorphism", max_length=64),
        mode="interpreter",
    )
    result = benchmark(engine.run, QUERY)
    assert result.value() == 65
