"""E2/E3: the Section 3 industry queries on synthetic generators.

E2 — network management: the most-depended-upon component, checked
against a networkx transitive-closure ground truth.
E3 — fraud detection: planted rings must all be detected.
"""

import networkx as nx
import pytest

from repro import CypherEngine
from repro.datasets.datacenter import datacenter_graph
from repro.datasets.fraud import fraud_graph

NETWORK_QUERY = (
    "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
    "RETURN svc.name AS component, count(DISTINCT dep) AS dependents "
    "ORDER BY dependents DESC LIMIT 1"
)

FRAUD_QUERY = (
    "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo) "
    "WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address "
    "WITH pInfo, collect(accHolder.uniqueId) AS accountHolders, "
    "count(*) AS fraudRingCount "
    "WHERE fraudRingCount > 1 "
    "RETURN accountHolders, labels(pInfo) AS personalInformation, "
    "fraudRingCount"
)


@pytest.fixture(scope="module")
def datacenter():
    graph, layers = datacenter_graph(layers=4, width=6, fanout=2, seed=7)
    return graph, layers


@pytest.fixture(scope="module")
def fraud():
    return fraud_graph(holders=40, rings=5, ring_size=3, seed=42)


def test_e2_network_query_matches_ground_truth(datacenter, table_report):
    graph, _layers = datacenter
    engine = CypherEngine(graph)
    record = engine.run(NETWORK_QUERY).single()

    digraph = nx.DiGraph()
    for node in graph.nodes():
        digraph.add_node(node)
    for rel in graph.relationships():
        digraph.add_edge(graph.src(rel), graph.tgt(rel))
    truth = max(len(nx.ancestors(digraph, n)) for n in digraph.nodes)

    assert record["dependents"] == truth
    table_report(
        "E2 network management — most depended-upon component",
        ["component", "dependents", "networkx ground truth"],
        [(record["component"], record["dependents"], truth)],
    )


def test_e2_network_query_benchmark(benchmark, datacenter):
    graph, _ = datacenter
    engine = CypherEngine(graph)
    result = benchmark(engine.run, NETWORK_QUERY)
    assert len(result) == 1


def test_e3_fraud_query_finds_planted_rings(fraud, table_report):
    graph, planted = fraud
    engine = CypherEngine(graph)
    result = engine.run(FRAUD_QUERY)
    detected = {
        tuple(sorted(record["accountHolders"])) for record in result.records
    }
    expected = {
        tuple(
            sorted(
                graph.property_value(member, "uniqueId")
                for member in ring["members"]
            )
        )
        for ring in planted
    }
    assert detected == expected
    table_report(
        "E3 fraud detection — rings (planted vs detected)",
        ["ring members", "PII label", "ring size"],
        [
            (", ".join(record["accountHolders"]),
             record["personalInformation"][0],
             record["fraudRingCount"])
            for record in result.records
        ],
    )


def test_e3_fraud_query_benchmark(benchmark, fraud):
    graph, planted = fraud
    engine = CypherEngine(graph)
    result = benchmark(engine.run, FRAUD_QUERY)
    assert len(result) == len(planted)
