"""P9: what do sessions, snapshots and deadlines cost when unused-in-anger?

PR 6 adds transactional sessions (undo-logged store transactions),
copy-on-write snapshot pins and cooperative cancellation.  All three are
pay-as-you-go by design:

* plain reads never see the machinery (no undo list, no pins, no
  cancellation object → one ``is None`` check per operator compile);
* a *clean* snapshot (nothing mutated since the pin) delegates straight
  to the parent engine — full index/batch acceleration, zero overlay;
* session writes add one undo-tuple append per mutation.

Acceptance pins, min-over-interleaved-samples vs the direct
``engine.run()`` baseline (see :func:`_paired_ratio` for why min):

* **read via clean snapshot ≤ 1.10x** — the acceptance criterion's
  "snapshot overhead ≤ 10% on reads";
* **write via session transaction ≤ 1.10x** — "transaction overhead
  ≤ 10% on writes" (undo recording + begin/commit bookkeeping);
* **deadline-armed read ≤ 1.10x** — the strided cancellation checks.

The dirty-overlay read (snapshot forced onto the COW overlay by a
concurrent commit) is *reported* for the trajectory, not pinned: the
overlay trades speed for isolation deliberately (label scans + residual
filters instead of indexes).
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

ITEMS = 20000
NDV = 1000

READ_QUERY = (
    "MATCH (n:Item) WHERE n.v >= 100 AND n.v < 140 RETURN count(*) AS c"
)
#: Each measured write run creates this many nodes (fresh label, so the
#: graph grows identically under both variants).
WRITE_BATCH = 2000
WRITE_QUERY = "UNWIND range(1, %d) AS i CREATE (:Scratch {v: i})" % WRITE_BATCH

#: (name, floor) — medians must stay within floor x the direct baseline.
OVERHEAD_BUDGET = 1.10


def build_engine():
    graph = MemoryGraph()
    graph.create_index("Item", "v")
    transaction = graph.write_transaction()
    transaction.create_nodes(
        ("Item",),
        [{"v": i % NDV, "name": "item-%05d" % i} for i in range(ITEMS)],
    )
    transaction.commit()
    return CypherEngine(graph)


def _median_time(callable_, repeats=9):
    """Median wall time after one warm-up run (plan cache, scan caches)."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def _paired_ratio(variant, baseline, repeats=9, inner=1):
    """(ratio, variant seconds, baseline seconds) from interleaved runs.

    Alternating the two callables every round exposes both sides to the
    same drift — GC pauses, frequency scaling, and (for writes) the same
    graph-growth trajectory.  Each side's cost is the *minimum* over its
    samples: timing noise is one-sided (preemption only ever adds time),
    so the min is the tightest estimate of the true cost and far more
    stable than a median of sub-millisecond rounds.  ``inner`` amortises
    very short workloads over several calls per sample.
    """
    variant()
    baseline()
    variant_times, baseline_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            variant()
        middle = time.perf_counter()
        for _ in range(inner):
            baseline()
        finished = time.perf_counter()
        variant_times.append((middle - started) / inner)
        baseline_times.append((finished - middle) / inner)
    variant_seconds = min(variant_times)
    baseline_seconds = min(baseline_times)
    return (
        variant_seconds / max(baseline_seconds, 1e-9),
        variant_seconds,
        baseline_seconds,
    )


def test_p9_session_overhead_within_budget(table_report):
    """The ≤10% pins: clean-snapshot read, session write, armed read."""
    rows = []
    failures = []

    def pin(name, variant_seconds, baseline_seconds, pinned=True, ratio=None):
        if ratio is None:
            ratio = variant_seconds / max(baseline_seconds, 1e-9)
        rows.append(
            (
                name,
                "%.3f ms" % (variant_seconds * 1e3),
                "%.3f ms" % (baseline_seconds * 1e3),
                "%.3fx" % ratio,
                "%.2fx budget" % OVERHEAD_BUDGET if pinned else "report",
            )
        )
        if pinned and ratio > OVERHEAD_BUDGET:
            failures.append(
                "%s at %.3fx (budget %.2fx)"
                % (name, ratio, OVERHEAD_BUDGET)
            )

    # -- reads: direct vs clean snapshot vs deadline-armed ---------------
    engine = build_engine()
    direct_read_once = lambda: engine.run(READ_QUERY)  # noqa: E731
    with engine.session() as session:
        snapshot = session.snapshot()
        snapshot_ratio, snapshot_read, direct_read = _paired_ratio(
            lambda: snapshot.run(READ_QUERY), direct_read_once,
            repeats=11, inner=5,
        )
    pin(
        "read via clean snapshot", snapshot_read, direct_read,
        ratio=snapshot_ratio,
    )

    armed_ratio, armed_read, direct_read = _paired_ratio(
        lambda: engine.run(READ_QUERY, timeout=3600.0), direct_read_once,
        repeats=11, inner=5,
    )
    pin("read with deadline armed", armed_read, direct_read, ratio=armed_ratio)

    # -- writes: direct autocommit vs session transaction ----------------
    # Interleaved: both graphs grow by WRITE_BATCH per round, so each
    # per-round ratio compares like against like.
    direct_engine = build_engine()
    session_engine = build_engine()

    def transactional_write():
        with session_engine.session() as writer:
            writer.begin()
            writer.run(WRITE_QUERY)
            writer.commit()

    write_ratio, session_write, direct_write = _paired_ratio(
        transactional_write,
        lambda: direct_engine.run(WRITE_QUERY),
        repeats=9,
    )
    pin(
        "write via session transaction",
        session_write,
        direct_write,
        ratio=write_ratio,
    )

    # -- reported: the dirty overlay (isolation has a real price) --------
    overlay_engine = build_engine()
    with overlay_engine.session() as reader:
        overlay = reader.snapshot()
        overlay.run(READ_QUERY)  # warm while still clean
        with overlay_engine.session() as writer:
            writer.begin()
            writer.run("CREATE (:Item {v: 0})")
            writer.commit()
        overlay_read = _median_time(lambda: overlay.run(READ_QUERY))
    pin("read via dirty overlay", overlay_read, direct_read, pinned=False)

    table_report(
        "P9 — session/snapshot/cancellation overhead vs direct run()",
        ["workload", "variant", "direct", "ratio", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


def test_p9_snapshot_reads_are_isolated_and_correct():
    """The fast path must still be *snapshot* reads, not stale caches."""
    engine = build_engine()
    with engine.session() as reader:
        snapshot = reader.snapshot()
        before = list(snapshot.run(READ_QUERY).table)
        with engine.session() as writer:
            writer.begin()
            writer.run("UNWIND range(100, 139) AS i CREATE (:Item {v: i})")
            writer.commit()
        after_commit = list(snapshot.run(READ_QUERY).table)
        live = list(engine.run(READ_QUERY).table)
    assert before == after_commit
    assert live != after_commit


@pytest.mark.parametrize("variant", ["direct", "snapshot"])
def test_p9_read_benchmark(benchmark, variant):
    engine = build_engine()
    if variant == "direct":
        result = benchmark(engine.run, READ_QUERY)
    else:
        with engine.session() as session:
            result = benchmark(session.snapshot().run, READ_QUERY)
    assert list(result.table) == [{"c": 40 * (ITEMS // NDV)}]


@pytest.mark.parametrize("variant", ["direct", "session"])
def test_p9_write_benchmark(benchmark, variant):
    engine = build_engine()
    if variant == "direct":
        benchmark(engine.run, WRITE_QUERY)
        return

    def transactional_write():
        with engine.session() as writer:
            writer.begin()
            writer.run(WRITE_QUERY)
            writer.commit()

    benchmark(transactional_write)
