"""E7: the Cypher 10 temporal types (Section 6 CIP).

Exercises the five instant types plus Duration through queries, and
benchmarks parsing and arithmetic throughput.
"""

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph
from repro.temporal import Date, DateTime, Duration


def test_e7_all_types_construct_through_queries(table_report):
    engine = CypherEngine(MemoryGraph())
    record = engine.run(
        "RETURN date('2018-06-10') AS d, "
        "localtime('14:30:00') AS lt, "
        "time('14:30:00+02:00') AS t, "
        "localdatetime('2018-06-10T14:30:00') AS ldt, "
        "datetime('2018-06-10T14:30:00Z') AS dt, "
        "duration('P1Y2M3DT4H5M6S') AS dur"
    ).single()
    rows = [
        (name, value.cypher_type_name, value.cypher_to_string())
        for name, value in record.items()
    ]
    table_report("E7 — temporal values", ["alias", "type", "rendered"], rows)
    assert [row[1] for row in rows] == [
        "Date", "LocalTime", "Time", "LocalDateTime", "DateTime", "Duration",
    ]


def test_e7_arithmetic_and_comparison(table_report):
    engine = CypherEngine(MemoryGraph())
    record = engine.run(
        "RETURN date('2018-01-31') + duration('P1M') AS clamped, "
        "datetime('2018-06-10T12:00:00Z') < "
        "datetime('2018-06-10T14:00:00+01:00') AS ordered, "
        "duration('P1D') + duration('PT12H') AS summed"
    ).single()
    assert record["clamped"].cypher_to_string() == "2018-02-28"
    assert record["ordered"] is True
    assert record["summed"].days == 1 and record["summed"].seconds == 43200
    table_report(
        "E7 — temporal arithmetic",
        ["expression", "result"],
        [("date('2018-01-31') + P1M", record["clamped"].cypher_to_string()),
         ("cross-offset datetime <", record["ordered"]),
         ("P1D + PT12H", record["summed"].cypher_to_string())],
    )


def test_e7_parse_benchmark(benchmark):
    def parse_batch():
        for day in range(1, 28):
            Date.parse("2018-02-%02d" % day)
            DateTime.parse("2018-02-%02dT10:30:00+01:00" % day)
            Duration.parse("P%dDT%dH" % (day, day % 24))
        return True

    assert benchmark(parse_batch)


def test_e7_arithmetic_benchmark(benchmark):
    start = Date.parse("2000-01-01")
    step = Duration(days=17, seconds=3600)

    def shift_batch():
        current = start
        for _ in range(100):
            current = current.cypher_add(step)
        return current

    final = benchmark(shift_batch)
    assert final.cypher_compare(start) == 1
