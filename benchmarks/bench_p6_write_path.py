"""P6: the write path — bulk CREATE, fan-out SET, MERGE upserts.

Until PR 3 every updating clause tree-walked through the reference
interpreter: per-row dict copies, per-expression AST walks and one
store-version bump (plus cache invalidation) per mutation.  The slotted
write pipeline compiles property maps and SET expressions to
slot-indexed closures, streams flat rows through Eager-fenced write
operators, and batches all mutations of a statement into one store
transaction with a single commit-time version bump.

The acceptance floor is 2x on every workload: a write-heavy statement on
the planner path must run at most half the interpreter's median.  The
no-fallback check doubles as the coverage tripwire for the write
operators (bench fails rather than silently re-routing to the walker).
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

#: One statement ingesting 300 nodes with computed properties (the
#: CREATE takes the store's deferred bulk path: one label-index touch).
BULK_CREATE = (
    "UNWIND range(1, 300) AS i "
    "CREATE (:Item {v: i, bucket: i % 7, double: i * 2, "
    "offset: i + 100, even: i % 2 = 0})"
)

#: Touch every hub->leaf pair: one property write per matched row.
FANOUT_SET = (
    "MATCH (h:Hub)-[:TO]->(m:Leaf) "
    "SET m.flag = h.v + m.i, m.seen = true"
)

#: Classic upsert: half the keys exist, half are created.
MERGE_UPSERT = (
    "UNWIND range(1, 120) AS k MERGE (n:K {k: k}) "
    "ON CREATE SET n.created = 1 "
    "ON MATCH SET n.hits = coalesce(n.hits, 0) + 1"
)

WRITE_WORKLOADS = [
    ("bulk create", BULK_CREATE),
    ("fan-out set", FANOUT_SET),
    ("merge upsert", MERGE_UPSERT),
]


def build_graph(hubs=6, leaves=150, existing_keys=60):
    graph = MemoryGraph()
    leaf_nodes = [
        graph.create_node(("Leaf",), {"i": index}) for index in range(leaves)
    ]
    for hub_index in range(hubs):
        hub = graph.create_node(("Hub",), {"v": hub_index})
        for leaf_index in range(hub_index, leaves, hubs):
            graph.create_relationship(hub, leaf_nodes[leaf_index], "TO")
    for key in range(1, existing_keys + 1):
        graph.create_node(("K",), {"k": key})
    return graph


def _median_time(callable_, repeats=15):
    """Median wall time after one warm-up run (plan cache, statistics)."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def test_p6_no_write_workload_falls_back():
    engine = CypherEngine(build_graph())
    for name, query in WRITE_WORKLOADS:
        result = engine.run(query)
        assert result.executed_by == "planner", (
            "write workload %r fell back to the interpreter (%s)"
            % (name, result.fallback_reason)
        )


def graph_state(graph):
    """Canonical, id-inclusive snapshot (mirrors the fuzz cross-check)."""
    from repro.values.ordering import canonical_key

    nodes = sorted(
        (
            node.value,
            tuple(sorted(graph.labels(node))),
            canonical_key(graph.properties(node)),
        )
        for node in graph.nodes()
    )
    rels = sorted(
        (
            rel.value,
            graph.src(rel).value,
            graph.tgt(rel).value,
            graph.rel_type(rel),
            canonical_key(graph.properties(rel)),
        )
        for rel in graph.relationships()
    )
    return nodes, rels


def test_p6_same_final_state():
    """Each workload leaves byte-identical stores on both paths."""
    for _name, query in WRITE_WORKLOADS:
        interpreter_graph = build_graph()
        planner_graph = build_graph()
        interpreted = CypherEngine(interpreter_graph).run(
            query, mode="interpreter"
        )
        planned = CypherEngine(planner_graph).run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query
        assert graph_state(interpreter_graph) == graph_state(planner_graph)


def test_p6_planner_beats_interpreter(table_report):
    """Acceptance floor: planner median >= 2x faster on every workload."""
    rows = []
    ratios = {}
    for name, query in WRITE_WORKLOADS:
        planner_engine = CypherEngine(build_graph())
        interpreter_engine = CypherEngine(build_graph())
        planner_seconds = _median_time(
            lambda: planner_engine.run(query, mode="planner")
        )
        interpreter_seconds = _median_time(
            lambda: interpreter_engine.run(query, mode="interpreter")
        )
        ratio = interpreter_seconds / max(planner_seconds, 1e-9)
        ratios[name] = ratio
        rows.append(
            (
                name,
                "%.3f ms" % (planner_seconds * 1e3),
                "%.3f ms" % (interpreter_seconds * 1e3),
                "%.1fx" % ratio,
            )
        )
    table_report(
        "P6 — slotted write pipeline vs reference interpreter",
        ["workload", "planner", "interpreter", "interp/planner"],
        rows,
    )
    for name, ratio in ratios.items():
        assert ratio >= 2.0, "write workload %r only at %.2fx" % (name, ratio)


def test_p6_write_plan_cache_hits():
    """Re-running a write statement hits the cache despite its own bump."""
    engine = CypherEngine(build_graph())
    engine.run(BULK_CREATE)
    hits_before = engine.plan_cache_hits
    engine.run(BULK_CREATE)
    engine.run(BULK_CREATE)
    assert engine.plan_cache_hits == hits_before + 2


@pytest.mark.parametrize("mode", ["planner", "interpreter"])
def test_p6_bulk_create_benchmark(benchmark, mode):
    engine = CypherEngine(build_graph())
    benchmark(engine.run, BULK_CREATE, mode=mode)
    assert engine.graph.node_count() > 300


@pytest.mark.parametrize("mode", ["planner", "interpreter"])
def test_p6_fanout_set_benchmark(benchmark, mode):
    engine = CypherEngine(build_graph())
    result = benchmark(engine.run, FANOUT_SET, mode=mode)
    assert len(result) > 0  # the driving rows flow through a SET


@pytest.mark.parametrize("mode", ["planner", "interpreter"])
def test_p6_merge_upsert_benchmark(benchmark, mode):
    engine = CypherEngine(build_graph())
    result = benchmark(engine.run, MERGE_UPSERT, mode=mode)
    assert len(result) > 0  # one row per driving key
