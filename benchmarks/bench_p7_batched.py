"""P7: vectorised batch execution vs the row-at-a-time planner.

PRs 1–3 compiled dispatch, expressions and plans; what remained was
Python's per-row toll — a generator resumption per operator per row, a
``row[:]`` copy per binding, a closure call per expression per row.  The
batch engine (:mod:`repro.planner.batch`) executes the same plans as
morsels of slot columns: scans slice chunks off cached scan lists,
Expand walks whole source columns through ``expand_batch``, filters and
projections evaluate column-compiled closures once per morsel, and
aggregation accumulates straight off argument columns.

The acceptance floor is 2x on every *pinned* workload (scan, expand and
aggregation shapes): the batch median must be at most half the row
median on the same plans.  Top-k and DISTINCT are reported for the
trajectory without a floor — their cost is dominated by per-row
``sort_key``/``canonical_key`` computation, which batching cannot
amortise.  The no-silent-row check doubles as the coverage tripwire for
the batch operator claim, and every workload is cross-checked for bag
equality against both the row planner and the interpreter.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

#: Workloads with an asserted 2x floor: the scan / expand / aggregation
#: shapes the batch engine exists for.
PINNED_WORKLOADS = [
    (
        "scan filter count",
        "MATCH (n:Item) WHERE n.v >= 10000 RETURN count(*) AS c",
    ),
    (
        "expand count",
        "MATCH (h:Hub)-[:TO]->(l:Leaf) RETURN count(*) AS c",
    ),
    (
        "grouped count",
        "MATCH (n:Item) RETURN n.bucket AS b, count(*) AS c ORDER BY b",
    ),
    (
        "grouped sum",
        "MATCH (n:Item) RETURN n.bucket AS b, sum(n.v) AS s ORDER BY b",
    ),
]

#: Reported for the perf trajectory, no floor (per-row key computation
#: dominates; batching only removes the operator overhead around it).
REPORTED_WORKLOADS = [
    (
        "expand sum",
        "MATCH (h:Hub)-[:TO]->(l:Leaf) RETURN sum(l.i) AS s",
    ),
    (
        "distinct",
        "MATCH (n:Item) RETURN DISTINCT n.bucket AS b",
    ),
    (
        "top-k",
        "MATCH (n:Item) RETURN n.v AS v ORDER BY v DESC LIMIT 10",
    ),
]

ALL_WORKLOADS = PINNED_WORKLOADS + REPORTED_WORKLOADS


def build_graph(items=20000, hubs=40, leaves=4000):
    graph = MemoryGraph()
    for index in range(items):
        graph.create_node(("Item",), {"v": index, "bucket": index % 16})
    leaf_nodes = [
        graph.create_node(("Leaf",), {"i": index}) for index in range(leaves)
    ]
    for hub_index in range(hubs):
        hub = graph.create_node(("Hub",), {"v": hub_index})
        for leaf_index in range(hub_index, leaves, hubs):
            graph.create_relationship(hub, leaf_nodes[leaf_index], "TO")
    return graph


def _median_time(callable_, repeats=9):
    """Median wall time after one warm-up run (plan cache, scan caches)."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def test_p7_no_workload_leaves_batch_mode():
    """Every workload is a claimed plan and must actually run batched."""
    engine = CypherEngine(build_graph())
    for name, query in ALL_WORKLOADS:
        result = engine.run(query, mode="batch")
        assert result.executed_by == "planner", name
        assert result.execution_mode == "batch", (
            "workload %r silently ran row-wise" % name
        )


def test_p7_modes_agree_on_results():
    engine = CypherEngine(build_graph())
    for name, query in ALL_WORKLOADS:
        reference = engine.run(query, mode="interpreter")
        for mode in ("row", "batch"):
            result = engine.run(query, mode=mode)
            assert reference.table.same_bag(result.table), (name, mode)


def test_p7_batch_beats_row_engine(table_report):
    """Acceptance floor: batch median ≥ 2x faster on pinned workloads."""
    engine = CypherEngine(build_graph())
    rows = []
    ratios = {}
    for name, query in ALL_WORKLOADS:
        batch_seconds = _median_time(
            lambda query=query: engine.run(query, mode="batch")
        )
        row_seconds = _median_time(
            lambda query=query: engine.run(query, mode="row")
        )
        ratio = row_seconds / max(batch_seconds, 1e-9)
        ratios[name] = ratio
        rows.append(
            (
                name,
                "%.3f ms" % (batch_seconds * 1e3),
                "%.3f ms" % (row_seconds * 1e3),
                "%.1fx" % ratio,
                "2x floor" if (name, query) in PINNED_WORKLOADS else "report",
            )
        )
    table_report(
        "P7 — vectorised batch execution vs row-at-a-time planner",
        ["workload", "batch", "row", "row/batch", "pin"],
        rows,
    )
    for name, _query in PINNED_WORKLOADS:
        assert ratios[name] >= 2.0, (
            "workload %r only at %.2fx" % (name, ratios[name])
        )


@pytest.mark.parametrize("mode", ["batch", "row"])
def test_p7_scan_filter_benchmark(benchmark, mode):
    engine = CypherEngine(build_graph())
    result = benchmark(
        engine.run, PINNED_WORKLOADS[0][1], mode=mode
    )
    assert result.value("c") == 10000


@pytest.mark.parametrize("mode", ["batch", "row"])
def test_p7_expand_benchmark(benchmark, mode):
    engine = CypherEngine(build_graph())
    result = benchmark(engine.run, PINNED_WORKLOADS[1][1], mode=mode)
    assert result.value("c") == 4000


@pytest.mark.parametrize("mode", ["batch", "row"])
def test_p7_grouped_aggregate_benchmark(benchmark, mode):
    engine = CypherEngine(build_graph())
    result = benchmark(engine.run, PINNED_WORKLOADS[3][1], mode=mode)
    assert len(result) == 16
