"""A2: effect of the semantics-preserving rewriter.

The paper motivates the formal semantics with provably-correct
optimizations; this bench measures one of ours — pushing a pass-through
``WITH ... WHERE`` filter into the preceding MATCH — and confirms both
versions return the same bag while the pushed-down form does less work
in the reference interpreter (the filter prunes before the next clause
widens rows).
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

# The WITH...WHERE keeps only 2 of N nodes before a fan-out MATCH.
QUERY = (
    "MATCH (a:Item) WITH a WHERE a.hot "
    "MATCH (a)-[:REL]->(b) RETURN count(*) AS n"
)


def build_graph(items=400, fanout=3):
    graph = MemoryGraph()
    targets = [graph.create_node(("T",), {}) for _ in range(fanout)]
    for index in range(items):
        item = graph.create_node(("Item",), {"hot": index < 2})
        for target in targets:
            graph.create_relationship(item, target, "REL")
    return graph


def test_a2_rewrite_preserves_results():
    graph = build_graph(items=50)
    raw = CypherEngine(graph, rewrite=False)
    rewriting = CypherEngine(graph, rewrite=True)
    for mode in ("interpreter", "planner"):
        original = raw.run(QUERY, mode=mode)
        optimized = rewriting.run(QUERY, mode=mode)
        assert original.table.same_bag(optimized.table)
        assert original.value() == 2 * 3


def test_a2_pushdown_speeds_up_interpreter(table_report):
    graph = build_graph(items=800)
    raw = CypherEngine(graph, rewrite=False)
    rewriting = CypherEngine(graph, rewrite=True)

    def measure(engine):
        engine.run(QUERY, mode="interpreter")  # warm up
        started = time.perf_counter()
        for _ in range(3):
            result = engine.run(QUERY, mode="interpreter").value()
        return (time.perf_counter() - started) / 3, result

    raw_seconds, raw_count = measure(raw)
    optimized_seconds, optimized_count = measure(rewriting)
    assert raw_count == optimized_count
    table_report(
        "A2 — WITH...WHERE pushdown (reference interpreter)",
        ["variant", "mean time"],
        [("original query", "%.3f ms" % (raw_seconds * 1e3)),
         ("rewritten (pushed-down)", "%.3f ms" % (optimized_seconds * 1e3))],
    )
    # the rewrite must never be slower by more than noise
    assert optimized_seconds < raw_seconds * 1.5


@pytest.mark.parametrize("rewrite", [False, True])
def test_a2_benchmark(benchmark, rewrite):
    graph = build_graph(items=400)
    engine = CypherEngine(graph, rewrite=rewrite)
    result = benchmark(engine.run, QUERY, mode="interpreter")
    assert result.value() == 6
