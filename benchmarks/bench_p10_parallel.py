"""P10: parallel morsel execution vs the serial batch engine.

The exchange splits a claimed plan's source scan into contiguous
partitions and runs the worker segment on a thread pool
(:mod:`repro.planner.parallel`).  What that buys depends entirely on
the interpreter build:

* on GIL-enabled CPython, pure-Python workers serialise on the lock —
  the pool interleaves but cannot speed up CPU-bound morsels, so the
  speedup hovers around 1x (the *correctness* of the deterministic
  merge under real interleaving is what the differential suite
  exploits);
* on free-threaded builds (or if morsel kernels ever drop into C), the
  same machinery scales with cores.

Pins and reports:

* **single-worker overhead ≤ 1.10x serial batch** — unconditional: the
  degenerate exchange (one partition, inline scheduler) must cost
  almost nothing, or "parallel by default" would tax small queries;
* **scan-heavy ≥ 2x at 4 workers** — pinned **only on hosts with ≥ 4
  CPUs** (``os.cpu_count()``); on smaller hosts (CI containers, this
  includes single-core boxes where the GIL makes 2x physically
  impossible) the ratio is still measured and *recorded*, never
  asserted;
* **scaling trajectory** — scan/expand/aggregate ratios at 1/2/4
  workers always land in ``BENCH_pipeline.json`` via the pytest
  -benchmark entries below, so the near-linear-up-to-core-count claim
  is checkable wherever the suite runs.
"""

import os
import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph
from repro.planner.parallel import plan_supports_parallel

NODES = 20000
NDV = 50

#: The three workload families the acceptance criteria name.
WORKLOADS = (
    (
        "scan+filter",
        "MATCH (n:Item) WHERE n.v >= 10 AND n.v < 40 "
        "RETURN count(*) AS c",
    ),
    (
        "expand",
        "MATCH (a:Hub)-[:R]->(b) WHERE b.v >= 0 RETURN count(*) AS c",
    ),
    (
        "aggregate",
        "MATCH (n:Item) RETURN n.v AS v, count(*) AS c, sum(n.v) AS s",
    ),
)

WORKER_COUNTS = (1, 2, 4)

#: Single-worker exchange overhead budget vs plain serial batch.
OVERHEAD_BUDGET = 1.10

#: The ≥2x pin only applies where the hardware can physically deliver
#: it: four workers cannot double throughput on fewer than four cores
#: (and never will on a GIL build, which the pin implicitly also
#: documents — free-threaded builds are the target).
PIN_SPEEDUP = 2.0
CPUS = os.cpu_count() or 1
SPEEDUP_PINNED = CPUS >= 4


def build_graph():
    graph = MemoryGraph()
    transaction = graph.write_transaction()
    item_ids = transaction.create_nodes(
        ("Item",),
        [{"v": i % NDV, "name": "item-%05d" % i} for i in range(NODES)],
    )
    # Enough hubs that the expand workload's source scan spans several
    # partitions at the default morsel size (256).
    hub_ids = transaction.create_nodes(
        ("Hub",), [{"v": i} for i in range(1000)]
    )
    for position, item in enumerate(item_ids):
        transaction.create_relationship(
            hub_ids[position % len(hub_ids)], item, "R"
        )
    transaction.commit()
    return graph


def engine_for(workers):
    graph = build_graph()
    if workers <= 1:
        return CypherEngine(graph)
    return CypherEngine(graph, workers=workers)


def _median_time(callable_, repeats=7):
    callable_()  # warm plan cache and scan caches
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def _paired_min_ratio(variant, baseline, repeats=9, inner=3):
    """min-over-samples ratio from interleaved runs (see bench_p9)."""
    variant()
    baseline()
    variant_times, baseline_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            variant()
        middle = time.perf_counter()
        for _ in range(inner):
            baseline()
        finished = time.perf_counter()
        variant_times.append((middle - started) / inner)
        baseline_times.append((finished - middle) / inner)
    variant_seconds = min(variant_times)
    baseline_seconds = min(baseline_times)
    return (
        variant_seconds / max(baseline_seconds, 1e-9),
        variant_seconds,
        baseline_seconds,
    )


def test_p10_workloads_are_parallel_claimed_and_agree():
    """Every workload must really run through the exchange, at every
    worker count, with records identical to the serial batch engine."""
    graph = build_graph()
    serial = CypherEngine(graph)
    for name, query in WORKLOADS:
        reference = serial.run(query, mode="batch")
        assert reference.execution_mode == "batch", name
        assert plan_supports_parallel(reference.plan), name
        for workers in WORKER_COUNTS:
            engine = CypherEngine(graph, workers=workers)
            result = engine.run(query, mode="parallel")
            assert result.execution_mode == "parallel", (name, workers)
            assert result.records == reference.records, (name, workers)
            info = result.parallelism
            if workers > 1:
                assert info["partitions"] > 1, (name, workers, info)


def test_p10_single_worker_overhead_within_budget(table_report):
    """The degenerate exchange must cost ≤ 10% over plain batch."""
    graph = build_graph()
    serial = CypherEngine(graph)
    one = CypherEngine(graph, workers=1)
    rows = []
    failures = []
    for name, query in WORKLOADS:
        ratio, parallel_seconds, batch_seconds = _paired_min_ratio(
            lambda q=query: one.run(q, mode="parallel"),
            lambda q=query: serial.run(q, mode="batch"),
        )
        rows.append(
            (
                name,
                "%.3f ms" % (parallel_seconds * 1e3),
                "%.3f ms" % (batch_seconds * 1e3),
                "%.3fx" % ratio,
                "%.2fx budget" % OVERHEAD_BUDGET,
            )
        )
        if ratio > OVERHEAD_BUDGET:
            failures.append(
                "%s at %.3fx (budget %.2fx)" % (name, ratio, OVERHEAD_BUDGET)
            )
    table_report(
        "P10 — single-worker exchange vs serial batch (degenerate case)",
        ["workload", "parallel(1)", "batch", "ratio", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


def test_p10_parallel_speedup(table_report):
    """Speedup trajectory at 2 and 4 workers; 2x pin where cores allow."""
    graph = build_graph()
    serial = CypherEngine(graph)
    engines = {
        workers: CypherEngine(graph, workers=workers)
        for workers in WORKER_COUNTS
        if workers > 1
    }
    rows = []
    failures = []
    for name, query in WORKLOADS:
        batch_seconds = _median_time(
            lambda q=query: serial.run(q, mode="batch")
        )
        speedups = {}
        for workers, engine in engines.items():
            parallel_seconds = _median_time(
                lambda q=query, e=engine: e.run(q, mode="parallel")
            )
            speedups[workers] = batch_seconds / max(parallel_seconds, 1e-9)
        pinned = name == "scan+filter" and SPEEDUP_PINNED
        rows.append(
            (
                name,
                "%.3f ms" % (batch_seconds * 1e3),
                "%.2fx" % speedups[2],
                "%.2fx" % speedups[4],
                "%.1fx floor" % PIN_SPEEDUP if pinned
                else "report (%d cpu(s))" % CPUS,
            )
        )
        if pinned and speedups[4] < PIN_SPEEDUP:
            failures.append(
                "%s only %.2fx at 4 workers on %d cpus"
                % (name, speedups[4], CPUS)
            )
    table_report(
        "P10 — parallel speedup vs serial batch (higher is better)",
        ["workload", "batch", "2 workers", "4 workers", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


# -- BENCH_pipeline.json entries -------------------------------------------
# One benchmark per (workload, workers) cell, plus the serial batch
# baseline: the recorded medians are what the near-linear-scaling claim
# is checked against across hosts.

@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_p10_scan_benchmark(benchmark, workers):
    engine = engine_for(workers)
    mode = "parallel" if workers > 1 else "batch"
    result = benchmark(engine.run, WORKLOADS[0][1], mode=mode)
    assert result.value("c") == NODES * 30 // NDV


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_p10_expand_benchmark(benchmark, workers):
    engine = engine_for(workers)
    mode = "parallel" if workers > 1 else "batch"
    result = benchmark(engine.run, WORKLOADS[1][1], mode=mode)
    assert result.value("c") == NODES


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_p10_aggregate_benchmark(benchmark, workers):
    engine = engine_for(workers)
    mode = "parallel" if workers > 1 else "batch"
    result = benchmark(engine.run, WORKLOADS[2][1], mode=mode)
    assert len(result) == NDV
