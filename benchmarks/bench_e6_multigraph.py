"""E6: the Cypher 10 multi-graph composition of Example 6.1.

Projects the SHARE_FRIEND graph from soc_net, composes with the citizen
registry, and validates every produced pair against a hand-computed
ground truth; benchmarks both stages.
"""

import pytest

from repro import CypherEngine
from repro.datasets.social import social_with_registry

PROJECTION = (
    'FROM GRAPH soc_net AT "hdfs://data/soc_network" '
    "MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b) "
    "WHERE abs(r2.since - r1.since) < $duration "
    "WITH DISTINCT a, b "
    "RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)"
)

COMPOSITION = (
    "QUERY GRAPH friends "
    "MATCH (a)-[:SHARE_FRIEND]-(b) "
    'FROM GRAPH register AT "bolt://data/citizens" '
    "MATCH (a)-[:IN]->(c:City)<-[:IN]-(b) "
    "RETURN DISTINCT a.name AS a, b.name AS b, c.name AS city"
)


@pytest.fixture(scope="module")
def world():
    catalog, people, cities = social_with_registry(
        people=24, cities=3, avg_friends=3, seed=20
    )
    return catalog, people, cities


def test_e6_composition_matches_ground_truth(world, table_report):
    catalog, people, _cities = world
    engine = CypherEngine(catalog.default(), catalog=catalog)
    first = engine.run(PROJECTION, parameters={"duration": 100})
    friends = first.graph("friends")
    second = engine.run(COMPOSITION)

    register = catalog.resolve(name="register")
    city_of = {}
    for person in people:
        for rel in register.outgoing(person, {"IN"}):
            city_of[person] = register.property_value(
                register.tgt(rel), "name"
            )
    for record in second.records:
        names = {record["a"], record["b"]}
        matching = [p for p in people
                    if register.property_value(p, "name") in names]
        assert {city_of[p] for p in matching} == {record["city"]}

    table_report(
        "E6 — Example 6.1 composition",
        ["stage", "output"],
        [
            ("RETURN GRAPH friends",
             "%d nodes, %d SHARE_FRIEND edges"
             % (friends.node_count(), friends.relationship_count())),
            ("same-city friend-sharing pairs", "%d rows" % len(second)),
        ],
    )
    assert friends.relationship_count() > 0
    assert len(second) > 0


def test_e6_projection_benchmark(benchmark, world):
    catalog, _, _ = world
    engine = CypherEngine(catalog.default(), catalog=catalog)
    result = benchmark(engine.run, PROJECTION, parameters={"duration": 100})
    assert result.graph("friends").relationship_count() > 0


def test_e6_composition_benchmark(benchmark, world):
    catalog, _, _ = world
    engine = CypherEngine(catalog.default(), catalog=catalog)
    engine.run(PROJECTION, parameters={"duration": 100})
    result = benchmark(engine.run, COMPOSITION)
    assert len(result) > 0
