"""Benchmark fixtures, paper-vs-measured reporting, and the perf log.

Besides the table reporter, this conftest records the median wall time
of every pytest-benchmark entry into ``BENCH_pipeline.json`` at the repo
root (override with ``$BENCH_PIPELINE_PATH``).  The file is the
project's perf trajectory: every PR that touches a hot path reruns the
suite (``python -m repro.cli bench``) and compares medians against the
committed numbers.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest


def report(title, headers, rows):
    """Print a table in the shape the paper prints (captured by -s)."""
    widths = [
        max(len(str(header)), *(len(str(row[index])) for row in rows))
        if rows
        else len(str(header))
        for index, header in enumerate(headers)
    ]
    print()
    print(title)
    print(
        " | ".join(
            str(header).ljust(width) for header, width in zip(headers, widths)
        )
    )
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(
            " | ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )


@pytest.fixture
def table_report():
    return report


# ---------------------------------------------------------------------------
# BENCH_pipeline.json — median wall-times per benchmark
# ---------------------------------------------------------------------------

def _pipeline_path():
    override = os.environ.get("BENCH_PIPELINE_PATH")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_pipeline.json")


def pytest_sessionfinish(session, exitstatus):
    """Dump per-benchmark medians after a benchmark run.

    Only fires when pytest-benchmark collected something, so plain test
    runs (and ``-p no:benchmark`` runs) never touch the file.  A failed
    or interrupted run must not pollute the committed trajectory either.
    """
    if exitstatus:
        return
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    entries = {}
    for bench in getattr(benchmark_session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        samples = getattr(stats, "stats", stats)  # Metadata vs raw Stats
        try:
            entries[bench.fullname] = {
                "median_s": samples.median,
                "mean_s": samples.mean,
                "min_s": samples.min,
                "rounds": getattr(samples, "rounds", None),
            }
        except (AttributeError, TypeError):
            continue
    if not entries:
        return
    path = _pipeline_path()
    # Merge with the committed trajectory: a filtered run (-k /
    # --pipeline-only) must refresh only the benchmarks it actually ran,
    # not drop everyone else's baseline.
    merged = {}
    try:
        with open(path) as handle:
            merged = dict(json.load(handle).get("benchmarks", {}))
    except (OSError, ValueError):
        pass
    merged.update(entries)
    payload = {
        "generated_by": "benchmarks/conftest.py (python -m repro.cli bench)",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "benchmarks": dict(sorted(merged.items())),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(
            "wrote %d benchmark median(s) to %s" % (len(entries), path)
        )
