"""Benchmark fixtures, paper-vs-measured reporting, and the perf log.

Besides the table reporter, this conftest records the median wall time
of every pytest-benchmark entry into ``BENCH_pipeline.json`` at the repo
root (override with ``$BENCH_PIPELINE_PATH``).  The file is the
project's perf trajectory: every PR that touches a hot path reruns the
suite (``python -m repro.cli bench``) and compares medians against the
committed numbers.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest


def report(title, headers, rows):
    """Print a table in the shape the paper prints (captured by -s)."""
    widths = [
        max(len(str(header)), *(len(str(row[index])) for row in rows))
        if rows
        else len(str(header))
        for index, header in enumerate(headers)
    ]
    print()
    print(title)
    print(
        " | ".join(
            str(header).ljust(width) for header, width in zip(headers, widths)
        )
    )
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(
            " | ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )


@pytest.fixture
def table_report():
    return report


# ---------------------------------------------------------------------------
# BENCH_pipeline.json — median wall-times per benchmark, plus structured
# entries (workload percentiles etc.) recorded through pipeline_record
# ---------------------------------------------------------------------------

#: section -> {key: entry} accumulated during one run by pipeline_record.
_RECORDED = {}


@pytest.fixture
def pipeline_record():
    """Record a structured entry into BENCH_pipeline.json.

    ``pipeline_record(section, key, entry)`` merges ``entry`` under
    ``payload[section][key]`` at session end — the channel benchmarks
    use for results that are not a single wall-time median, such as the
    macro workload's per-class throughput and tail latencies.  Merging
    is per key: a filtered rerun refreshes only the entries it actually
    produced, and sections written by other runs are preserved.
    """

    def recorder(section, key, entry):
        if section == "benchmarks":
            raise ValueError(
                "'benchmarks' is reserved for pytest-benchmark medians"
            )
        _RECORDED.setdefault(section, {})[key] = entry

    return recorder


def _pipeline_path():
    override = os.environ.get("BENCH_PIPELINE_PATH")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_pipeline.json")


def _benchmark_entries(session):
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return {}
    entries = {}
    for bench in getattr(benchmark_session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        samples = getattr(stats, "stats", stats)  # Metadata vs raw Stats
        try:
            entries[bench.fullname] = {
                "median_s": samples.median,
                "mean_s": samples.mean,
                "min_s": samples.min,
                "rounds": getattr(samples, "rounds", None),
            }
        except (AttributeError, TypeError):
            continue
    return entries


def pytest_sessionfinish(session, exitstatus):
    """Dump medians and recorded entries after a benchmark run.

    Only fires when pytest-benchmark collected something or a test used
    ``pipeline_record``, so plain test runs (and ``-p no:benchmark``
    runs) never touch the file.  A failed or interrupted run must not
    pollute the committed trajectory either.  Merging is per section
    and per key inside each section, and top-level sections this run
    did not produce are carried over from the committed file untouched.
    """
    recorded = dict(_RECORDED)
    _RECORDED.clear()
    if exitstatus:
        return
    entries = _benchmark_entries(session)
    if not entries and not recorded:
        return
    path = _pipeline_path()
    # Merge with the committed trajectory: a filtered run (-k /
    # --pipeline-only) must refresh only the benchmarks it actually ran,
    # not drop everyone else's baseline.
    previous = {}
    try:
        with open(path) as handle:
            previous = dict(json.load(handle))
    except (OSError, ValueError):
        pass
    payload = {
        key: value
        for key, value in previous.items()
        if key not in ("generated_by", "generated_at", "python")
    }
    payload.setdefault("benchmarks", {})
    if not isinstance(payload["benchmarks"], dict):
        payload["benchmarks"] = {}
    payload["benchmarks"].update(entries)
    payload["benchmarks"] = dict(sorted(payload["benchmarks"].items()))
    for section, section_entries in recorded.items():
        existing = payload.get(section)
        if not isinstance(existing, dict):
            existing = {}
        existing.update(section_entries)
        payload[section] = dict(sorted(existing.items()))
    payload = {
        "generated_by": "benchmarks/conftest.py (python -m repro.cli bench)",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        **payload,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    written = len(entries) + sum(len(v) for v in recorded.values())
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(
            "wrote %d benchmark entr%s to %s"
            % (written, "y" if written == 1 else "ies", path)
        )
