"""Benchmark fixtures and the paper-vs-measured reporting helper."""

from __future__ import annotations

import pytest


def report(title, headers, rows):
    """Print a table in the shape the paper prints (captured by -s)."""
    widths = [
        max(len(str(header)), *(len(str(row[index])) for row in rows))
        if rows
        else len(str(header))
        for index, header in enumerate(headers)
    ]
    print()
    print(title)
    print(
        " | ".join(
            str(header).ljust(width) for header, width in zip(headers, widths)
        )
    )
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(
            " | ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )


@pytest.fixture
def table_report():
    return report
