"""P8: index-accelerated access paths vs LabelScan + Filter.

Until PR 5 every property predicate ran as a full label scan with a
post-hoc Filter — `WHERE n.v = 500` touched all 20k :Item nodes to keep
20.  The property-index subsystem gives the planner real access paths:
a hash half for equality/IN probes, a sorted half for ranges and
prefixes, chosen over the label scan by NDV-backed cost estimates and
maintained incrementally inside the store transaction.

Acceptance floors, on **both** engines (row and batch), same data with
and without the index declared:

* point lookup ≥ 10x the LabelScan+Filter median;
* range scan ≥ 3x the LabelScan+Filter median.

Write-path guards, two of them:

* the <10% acceptance budget is on ``bench_p6_write_path.py``'s
  committed medians — those workloads carry **no** indexes, so they
  measure the cost the subsystem imposes on everyone (one falsy-dict
  check per mutation; re-measured flat to -8% at PR 5);
* ingesting into a label with two live indexes is pinned at < 2.5x the
  unindexed bulk create and reported in per-entry microseconds.  The
  baseline is the leanest write path in the store (two dict stores per
  node), so each index entry's canonical-form + bucket work shows up
  undiluted — measured ≈1.1µs/entry, i.e. ~1.9x with two indexes.
  Incremental maintenance still beats any rebuild by construction: a
  rebuild is the same per-entry work *plus* a full rescan per statement.

Results land in ``BENCH_pipeline.json`` via the benchmark fixtures
below.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

#: Standard workload size (matches bench_p7's scan benchmarks).
ITEMS = 20000
#: Distinct v values: buckets of ITEMS/NDV = 20 rows per point lookup.
NDV = 1000

POINT_LOOKUP = "MATCH (n:Item) WHERE n.v = 500 RETURN count(*) AS c"
POINT_ROWS = ITEMS // NDV

RANGE_SCAN = (
    "MATCH (n:Item) WHERE n.v >= 100 AND n.v < 150 RETURN count(*) AS c"
)
RANGE_ROWS = 50 * (ITEMS // NDV)

PINNED = [
    ("point lookup", POINT_LOOKUP, 10.0),
    ("range scan", RANGE_SCAN, 3.0),
]

#: Reported for the trajectory, no floor.
REPORTED = [
    ("IN probe", "MATCH (n:Item) WHERE n.v IN [5, 250, 500] "
                 "RETURN count(*) AS c"),
    ("prefix", "MATCH (n:Item) WHERE n.name STARTS WITH 'item-00042' "
               "RETURN count(*) AS c"),
]


def build_graph(indexed):
    graph = MemoryGraph()
    if indexed:
        # Declared first: the whole load runs through the incremental
        # maintenance path, exactly like production ingest would.
        graph.create_index("Item", "v")
        graph.create_index("Item", "name")
    transaction = graph.write_transaction()
    transaction.create_nodes(
        ("Item",),
        [{"v": i % NDV, "name": "item-%05d" % i} for i in range(ITEMS)],
    )
    transaction.commit()
    return graph


def _median_time(callable_, repeats=9):
    """Median wall time after one warm-up run (plan cache, scan caches)."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def test_p8_index_plans_do_not_fall_back():
    engine = CypherEngine(build_graph(indexed=True))
    for name, query, _floor in PINNED:
        for mode in ("row", "batch"):
            result = engine.run(query, mode=mode, profile=True)
            assert result.executed_by == "planner", (name, mode)
            (record,) = result.access_paths
            assert record["operator"] in ("IndexScan", "IndexRangeScan"), (
                "%s [%s] entered via %s" % (name, mode, record["entry"])
            )


def test_p8_results_identical_with_and_without_index():
    plain = CypherEngine(build_graph(indexed=False))
    indexed = CypherEngine(build_graph(indexed=True))
    for name, query in [(n, q) for n, q, _f in PINNED] + REPORTED:
        reference = plain.run(query, mode="interpreter")
        for engine in (plain, indexed):
            for mode in ("row", "batch"):
                result = engine.run(query, mode=mode)
                assert reference.table.same_bag(result.table), (name, mode)


def test_p8_index_beats_label_scan(table_report):
    """Acceptance floors: ≥10x point, ≥3x range — both engines."""
    plain = CypherEngine(build_graph(indexed=False))
    indexed = CypherEngine(build_graph(indexed=True))
    rows = []
    failures = []
    for mode in ("row", "batch"):
        for name, query, floor in PINNED + [(n, q, None) for n, q in REPORTED]:
            indexed_seconds = _median_time(
                lambda query=query, mode=mode: indexed.run(query, mode=mode)
            )
            plain_seconds = _median_time(
                lambda query=query, mode=mode: plain.run(query, mode=mode)
            )
            ratio = plain_seconds / max(indexed_seconds, 1e-9)
            rows.append(
                (
                    "%s [%s]" % (name, mode),
                    "%.3f ms" % (indexed_seconds * 1e3),
                    "%.3f ms" % (plain_seconds * 1e3),
                    "%.1fx" % ratio,
                    "%.0fx floor" % floor if floor else "report",
                )
            )
            if floor is not None and ratio < floor:
                failures.append(
                    "%s [%s] only at %.2fx (floor %.0fx)"
                    % (name, mode, ratio, floor)
                )
    table_report(
        "P8 — index access paths vs LabelScan+Filter (row and batch)",
        ["workload", "indexed", "label scan", "scan/index", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


def test_p8_maintenance_overhead_within_budget(table_report):
    """Two-index ingest < 2.5x the leanest possible bulk create."""
    plain_seconds = _median_time(
        lambda: build_graph(indexed=False), repeats=7
    )
    indexed_seconds = _median_time(
        lambda: build_graph(indexed=True), repeats=7
    )
    overhead = indexed_seconds / max(plain_seconds, 1e-9)
    per_entry = (indexed_seconds - plain_seconds) / (2.0 * ITEMS)
    table_report(
        "P8 — write-path maintenance overhead (bulk create of %d)" % ITEMS,
        ["variant", "median"],
        [
            ("no indexes", "%.3f ms" % (plain_seconds * 1e3)),
            ("two indexes", "%.3f ms" % (indexed_seconds * 1e3)),
            ("overhead", "%.2fx" % overhead),
            ("per index entry", "%.2f µs" % (per_entry * 1e6)),
        ],
    )
    assert overhead < 2.5, "maintenance overhead %.2fx" % overhead


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "plain"])
def test_p8_point_lookup_benchmark(benchmark, mode, indexed):
    engine = CypherEngine(build_graph(indexed=indexed))
    result = benchmark(engine.run, POINT_LOOKUP, mode=mode)
    assert result.value("c") == POINT_ROWS


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "plain"])
def test_p8_range_scan_benchmark(benchmark, mode, indexed):
    engine = CypherEngine(build_graph(indexed=indexed))
    result = benchmark(engine.run, RANGE_SCAN, mode=mode)
    assert result.value("c") == RANGE_ROWS
