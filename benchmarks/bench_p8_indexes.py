"""P8: index-accelerated access paths vs LabelScan + Filter.

Until PR 5 every property predicate ran as a full label scan with a
post-hoc Filter — `WHERE n.v = 500` touched all 20k :Item nodes to keep
20.  The property-index subsystem gives the planner real access paths:
a hash half for equality/IN probes, a sorted half for ranges and
prefixes, chosen over the label scan by NDV-backed cost estimates and
maintained incrementally inside the store transaction.

Acceptance floors, on **both** engines (row and batch), same data with
and without the index declared:

* point lookup ≥ 10x the LabelScan+Filter median;
* range scan ≥ 3x the LabelScan+Filter median.

Write-path guards, two of them:

* the <10% acceptance budget is on ``bench_p6_write_path.py``'s
  committed medians — those workloads carry **no** indexes, so they
  measure the cost the subsystem imposes on everyone (one falsy-dict
  check per mutation; re-measured flat to -8% at PR 5);
* ingesting into a label with two live indexes is pinned at < 2.5x the
  unindexed bulk create and reported in per-entry microseconds.  The
  baseline is the leanest write path in the store (two dict stores per
  node), so each index entry's canonical-form + bucket work shows up
  undiluted — measured ≈1.1µs/entry, i.e. ~1.9x with two indexes.
  Incremental maintenance still beats any rebuild by construction: a
  rebuild is the same per-entry work *plus* a full rescan per statement.

Results land in ``BENCH_pipeline.json`` via the benchmark fixtures
below.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

#: Standard workload size (matches bench_p7's scan benchmarks).
ITEMS = 20000
#: Distinct v values: buckets of ITEMS/NDV = 20 rows per point lookup.
NDV = 1000

POINT_LOOKUP = "MATCH (n:Item) WHERE n.v = 500 RETURN count(*) AS c"
POINT_ROWS = ITEMS // NDV

RANGE_SCAN = (
    "MATCH (n:Item) WHERE n.v >= 100 AND n.v < 150 RETURN count(*) AS c"
)
RANGE_ROWS = 50 * (ITEMS // NDV)

PINNED = [
    ("point lookup", POINT_LOOKUP, 10.0),
    ("range scan", RANGE_SCAN, 3.0),
]

#: Reported for the trajectory, no floor.
REPORTED = [
    ("IN probe", "MATCH (n:Item) WHERE n.v IN [5, 250, 500] "
                 "RETURN count(*) AS c"),
    ("prefix", "MATCH (n:Item) WHERE n.name STARTS WITH 'item-00042' "
               "RETURN count(*) AS c"),
]


def build_graph(indexed):
    graph = MemoryGraph()
    if indexed:
        # Declared first: the whole load runs through the incremental
        # maintenance path, exactly like production ingest would.
        graph.create_index("Item", "v")
        graph.create_index("Item", "name")
    transaction = graph.write_transaction()
    transaction.create_nodes(
        ("Item",),
        [{"v": i % NDV, "name": "item-%05d" % i} for i in range(ITEMS)],
    )
    transaction.commit()
    return graph


def _median_time(callable_, repeats=9):
    """Median wall time after one warm-up run (plan cache, scan caches)."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def test_p8_index_plans_do_not_fall_back():
    engine = CypherEngine(build_graph(indexed=True))
    for name, query, _floor in PINNED:
        for mode in ("row", "batch"):
            result = engine.run(query, mode=mode, profile=True)
            assert result.executed_by == "planner", (name, mode)
            (record,) = result.access_paths
            assert record["operator"] in ("IndexScan", "IndexRangeScan"), (
                "%s [%s] entered via %s" % (name, mode, record["entry"])
            )


def test_p8_results_identical_with_and_without_index():
    plain = CypherEngine(build_graph(indexed=False))
    indexed = CypherEngine(build_graph(indexed=True))
    for name, query in [(n, q) for n, q, _f in PINNED] + REPORTED:
        reference = plain.run(query, mode="interpreter")
        for engine in (plain, indexed):
            for mode in ("row", "batch"):
                result = engine.run(query, mode=mode)
                assert reference.table.same_bag(result.table), (name, mode)


def test_p8_index_beats_label_scan(table_report):
    """Acceptance floors: ≥10x point, ≥3x range — both engines."""
    plain = CypherEngine(build_graph(indexed=False))
    indexed = CypherEngine(build_graph(indexed=True))
    rows = []
    failures = []
    for mode in ("row", "batch"):
        for name, query, floor in PINNED + [(n, q, None) for n, q in REPORTED]:
            indexed_seconds = _median_time(
                lambda query=query, mode=mode: indexed.run(query, mode=mode)
            )
            plain_seconds = _median_time(
                lambda query=query, mode=mode: plain.run(query, mode=mode)
            )
            ratio = plain_seconds / max(indexed_seconds, 1e-9)
            rows.append(
                (
                    "%s [%s]" % (name, mode),
                    "%.3f ms" % (indexed_seconds * 1e3),
                    "%.3f ms" % (plain_seconds * 1e3),
                    "%.1fx" % ratio,
                    "%.0fx floor" % floor if floor else "report",
                )
            )
            if floor is not None and ratio < floor:
                failures.append(
                    "%s [%s] only at %.2fx (floor %.0fx)"
                    % (name, mode, ratio, floor)
                )
    table_report(
        "P8 — index access paths vs LabelScan+Filter (row and batch)",
        ["workload", "indexed", "label scan", "scan/index", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


def test_p8_maintenance_overhead_within_budget(table_report):
    """Two-index ingest within budget over the leanest possible bulk create.

    The ratio budget is 3.5x (was 2.5x before composite/covering
    indexes): every entry now carries its actual-values payload so
    covering projections are served straight from the index, plus the
    prefix hierarchy that order-provided scans walk — paid once on the
    write path instead of per read.  The absolute per-entry ceiling is
    the sharper regression tripwire; the ratio is sensitive to noise in
    the index-free baseline.
    """
    plain_seconds = _median_time(
        lambda: build_graph(indexed=False), repeats=7
    )
    indexed_seconds = _median_time(
        lambda: build_graph(indexed=True), repeats=7
    )
    overhead = indexed_seconds / max(plain_seconds, 1e-9)
    per_entry = (indexed_seconds - plain_seconds) / (2.0 * ITEMS)
    table_report(
        "P8 — write-path maintenance overhead (bulk create of %d)" % ITEMS,
        ["variant", "median"],
        [
            ("no indexes", "%.3f ms" % (plain_seconds * 1e3)),
            ("two indexes", "%.3f ms" % (indexed_seconds * 1e3)),
            ("overhead", "%.2fx" % overhead),
            ("per index entry", "%.2f µs" % (per_entry * 1e6)),
        ],
    )
    assert overhead < 3.5, "maintenance overhead %.2fx" % overhead
    assert per_entry < 3.5e-6, "per-entry cost %.2f µs" % (per_entry * 1e6)


# ---------------------------------------------------------------------------
# Composite indexes: point lookups, order-provided scans, histograms
# ---------------------------------------------------------------------------

#: Two quasi-independent key columns: 50 values each, 2500 distinct
#: pairs, 8 rows per pair — so the best single-key plan still drags
#: 400 candidate rows through a residual Filter while the composite
#: seek touches exactly 8.
COMPOSITE_POINT = (
    "MATCH (n:Pair) WHERE n.a = 7 AND n.b = 13 RETURN count(*) AS c"
)
COMPOSITE_POINT_ROWS = ITEMS // 2500

#: Equality on the first key column plus ORDER BY on the second with a
#: small LIMIT: the composite index provides the order, so the scan
#: early-exits after LIMIT rows instead of sorting all 5000 matches.
ORDER_TOP = (
    "MATCH (o:Ord) WHERE o.g = 1 AND o.s IS NOT NULL "
    "RETURN o.s AS s ORDER BY s LIMIT 10"
)

#: Composite-point floor: ≥5x over the best single-key plan.
COMPOSITE_FLOOR = 5.0
#: Sort-elimination floor: ≥3x over probe + Sort + Top.
ORDER_FLOOR = 3.0


def build_pair_graph(composite):
    """Both single-key indexes always; the composite only on demand —
    the baseline is the best *single-key* plan, not a label scan."""
    graph = MemoryGraph()
    graph.create_index("Pair", "a")
    graph.create_index("Pair", "b")
    if composite:
        graph.create_index("Pair", "a", "b")
    transaction = graph.write_transaction()
    transaction.create_nodes(
        ("Pair",),
        [{"a": i % 50, "b": (i // 50) % 50} for i in range(ITEMS)],
    )
    transaction.commit()
    return graph


def build_ordered_graph(composite):
    """Equality probes on g cost the same either way; only the order
    (and the covering read of s) differs between the two variants."""
    graph = MemoryGraph()
    if composite:
        graph.create_index("Ord", "g", "s")
    else:
        graph.create_index("Ord", "g")
    transaction = graph.write_transaction()
    transaction.create_nodes(
        ("Ord",),
        [{"g": i % 4, "s": (i * 37) % ITEMS} for i in range(ITEMS)],
    )
    transaction.commit()
    return graph


def _scan_estimate(plan):
    """The estimated rows of the plan's index scan leaf."""
    from repro.planner import logical as lg

    stack = [plan]
    while stack:
        op = stack.pop()
        if isinstance(
            op, (lg.IndexScan, lg.IndexRangeScan, lg.IndexOrderedScan)
        ):
            return op.estimated_rows
        stack.extend(op._children())
    return None


def test_p8_composite_plans_take_the_composite_index():
    engine = CypherEngine(build_pair_graph(composite=True))
    result = engine.run(COMPOSITE_POINT, profile=True)
    (record,) = result.access_paths
    assert record["operator"] == "IndexScan", record
    assert ":Pair(a,b)" in record["entry"], record
    assert result.value("c") == COMPOSITE_POINT_ROWS


def test_p8_order_provided_plan_has_no_sort():
    from repro.planner import logical as lg

    engine = CypherEngine(build_ordered_graph(composite=True))
    result = engine.run(ORDER_TOP)
    kinds = set()
    stack = [result.plan]
    while stack:
        op = stack.pop()
        kinds.add(type(op))
        stack.extend(op._children())
    assert lg.IndexOrderedScan in kinds, result.plan.describe()
    assert lg.Sort not in kinds, result.plan.describe()
    assert lg.Top not in kinds, result.plan.describe()


def test_p8_composite_results_identical_across_variants():
    for build, query in (
        (build_pair_graph, COMPOSITE_POINT),
        (build_ordered_graph, ORDER_TOP),
    ):
        single = CypherEngine(build(composite=False))
        composite = CypherEngine(build(composite=True))
        reference = single.run(query, mode="interpreter")
        for engine in (single, composite):
            for mode in ("row", "batch"):
                result = engine.run(query, mode=mode)
                assert [
                    tuple(record.values()) for record in reference.records
                ] == [
                    tuple(record.values()) for record in result.records
                ], (query, mode)


def test_p8_composite_beats_best_single_key(table_report):
    """Acceptance: composite point ≥5x, order-provided top ≥3x."""
    workloads = [
        ("composite point", build_pair_graph, COMPOSITE_POINT,
         COMPOSITE_FLOOR),
        ("ordered top-k", build_ordered_graph, ORDER_TOP, ORDER_FLOOR),
    ]
    rows = []
    failures = []
    for name, build, query, floor in workloads:
        single = CypherEngine(build(composite=False))
        composite = CypherEngine(build(composite=True))
        for mode in ("row", "batch"):
            composite_seconds = _median_time(
                lambda q=query, m=mode: composite.run(q, mode=m)
            )
            single_seconds = _median_time(
                lambda q=query, m=mode: single.run(q, mode=m)
            )
            ratio = single_seconds / max(composite_seconds, 1e-9)
            rows.append(
                (
                    "%s [%s]" % (name, mode),
                    "%.3f ms" % (composite_seconds * 1e3),
                    "%.3f ms" % (single_seconds * 1e3),
                    "%.1fx" % ratio,
                    "%.0fx floor" % floor,
                )
            )
            if ratio < floor:
                failures.append(
                    "%s [%s] only at %.2fx (floor %.0fx)"
                    % (name, mode, ratio, floor)
                )
    table_report(
        "P8 — composite index vs best single-key plan (row and batch)",
        ["workload", "composite", "single-key", "single/composite", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


#: Skewed :Skew(x) distribution: 90% of rows dense in [0, 100), a 10%
#: tail spread over [100, 1000) — the shape that makes a flat range
#: constant wrong by an order of magnitude.
def build_skew_graph():
    graph = MemoryGraph()
    graph.create_index("Skew", "x")
    transaction = graph.write_transaction()
    transaction.create_nodes(
        ("Skew",),
        [
            {"x": 100 + (i % 900) if i % 10 == 0 else i % 100}
            for i in range(ITEMS)
        ],
    )
    transaction.commit()
    return graph


#: (name, query, number of bounds) — the tail range is the flat
#: constant's worst case (>10x over), pinned below.
HISTOGRAM_RANGES = [
    ("tail", "MATCH (n:Skew) WHERE n.x >= 900 RETURN count(*) AS c", 1),
    ("dense slice",
     "MATCH (n:Skew) WHERE n.x >= 20 AND n.x < 40 RETURN count(*) AS c", 2),
    ("mid range",
     "MATCH (n:Skew) WHERE n.x >= 100 AND n.x < 500 RETURN count(*) AS c",
     2),
]


def test_p8_histogram_range_estimates(table_report, pipeline_record):
    """Histogram-backed estimates within 2x of actual; the flat
    constant would miss the skewed tail by >10x."""
    from repro.planner.cost import RANGE_SELECTIVITY

    engine = CypherEngine(build_skew_graph())
    rows = []
    recorded = {}
    failures = []
    for name, query, bounds in HISTOGRAM_RANGES:
        result = engine.run(query)
        actual = result.value("c")
        estimate = _scan_estimate(result.plan)
        assert estimate is not None, (name, result.plan.describe())
        flat = ITEMS * RANGE_SELECTIVITY ** bounds
        error = max(estimate, actual) / max(min(estimate, actual), 1e-9)
        flat_error = max(flat, actual) / max(min(flat, actual), 1e-9)
        rows.append(
            (
                name, actual, "%.0f" % estimate, "%.2fx" % error,
                "%.0f" % flat, "%.1fx" % flat_error,
            )
        )
        recorded[name] = {
            "actual_rows": actual,
            "histogram_estimate": estimate,
            "histogram_error": error,
            "flat_estimate": flat,
            "flat_error": flat_error,
        }
        if error > 2.0:
            failures.append(
                "%s estimate %.0f vs actual %d (%.2fx, budget 2x)"
                % (name, estimate, actual, error)
            )
    table_report(
        "P8 — histogram range estimates vs the flat constant",
        ["range", "actual", "histogram", "error", "flat", "flat error"],
        rows,
    )
    pipeline_record(
        "indexes", "p8_histogram_estimates", {"ranges": recorded}
    )
    assert not failures, "; ".join(failures)
    assert recorded["tail"]["flat_error"] > 10.0, recorded["tail"]


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize(
    "composite", [True, False], ids=["composite", "single-key"]
)
def test_p8_composite_point_benchmark(benchmark, mode, composite):
    engine = CypherEngine(build_pair_graph(composite=composite))
    result = benchmark(engine.run, COMPOSITE_POINT, mode=mode)
    assert result.value("c") == COMPOSITE_POINT_ROWS


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize(
    "composite", [True, False], ids=["ordered", "sort+top"]
)
def test_p8_order_top_benchmark(benchmark, mode, composite):
    engine = CypherEngine(build_ordered_graph(composite=composite))
    result = benchmark(engine.run, ORDER_TOP, mode=mode)
    assert len(result) == 10


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "plain"])
def test_p8_point_lookup_benchmark(benchmark, mode, indexed):
    engine = CypherEngine(build_graph(indexed=indexed))
    result = benchmark(engine.run, POINT_LOOKUP, mode=mode)
    assert result.value("c") == POINT_ROWS


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "plain"])
def test_p8_range_scan_benchmark(benchmark, mode, indexed):
    engine = CypherEngine(build_graph(indexed=indexed))
    result = benchmark(engine.run, RANGE_SCAN, mode=mode)
    assert result.value("c") == RANGE_ROWS
