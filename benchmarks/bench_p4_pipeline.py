"""P4: linear clause composition throughput (paper Section 2).

"Each clause in a query is a function that takes a table and outputs a
table ... The whole query is then the composition of these functions."
This bench runs a representative MATCH → WITH/aggregate → MATCH →
OPTIONAL MATCH → RETURN pipeline (the Section 3 shape) on growing
citation networks, on both execution paths.
"""

import pytest

from repro import CypherEngine
from repro.datasets.citations import citation_network

PIPELINE = (
    "MATCH (r:Researcher) "
    "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
    "WITH r, count(s) AS supervised "
    "MATCH (r)-[:AUTHORS]->(p:Publication) "
    "OPTIONAL MATCH (p)<-[:CITES]-(citer:Publication) "
    "RETURN r.name AS name, supervised, "
    "count(DISTINCT citer) AS citations "
    "ORDER BY citations DESC, name"
)


@pytest.fixture(scope="module", params=[20, 60])
def network(request):
    graph, handles = citation_network(
        publications=request.param,
        researchers=max(4, request.param // 5),
        students=max(6, request.param // 4),
        seed=9,
    )
    return graph, handles


def test_p4_pipeline_answers_are_consistent(network):
    graph, handles = network
    engine = CypherEngine(graph)
    interpreted = engine.run(PIPELINE, mode="interpreter")
    planned = engine.run(PIPELINE, mode="planner")
    assert interpreted.table.same_bag(planned.table)
    # every researcher with at least one publication appears
    publishers = {
        graph.src(rel) for rel in graph.relationships_with_type("AUTHORS")
    }
    assert len(interpreted) == len(publishers)


@pytest.mark.parametrize("mode", ["interpreter", "planner"])
def test_p4_pipeline_benchmark(benchmark, network, mode):
    graph, _ = network
    engine = CypherEngine(graph)
    result = benchmark(engine.run, PIPELINE, mode=mode)
    assert len(result) > 0


def test_p4_projection_stage_benchmark(benchmark):
    graph, _ = citation_network(publications=40, seed=3)
    engine = CypherEngine(graph)
    query = (
        "MATCH (p:Publication) WITH p.year AS year, count(*) AS papers "
        "WHERE papers > 0 RETURN year, papers ORDER BY year"
    )
    result = benchmark(engine.run, query)
    assert len(result) > 0
