"""Mixed read/write macro-workload driver over the session layer.

Drives an LDBC-style social graph with three operation classes running
in separate threads:

* **short_read** — interactive lookups (a person's friends, a person's
  message count) against a pinned snapshot;
* **update_txn** — multi-statement write transactions through
  ``engine.session()`` (new post, new like, new friendship — each also
  bumps a ``:Meta`` counter node in the same transaction, which is what
  makes torn reads observable);
* **analytic** — multi-hop and scan-heavy reads (friends-of-friends,
  bounded reply chains, forum fan-in, message scans) against the same
  snapshots, issued under engine mode ``auto`` so parallel-claimed
  plans fan out over the morsel scheduler mid-workload whenever the
  driving engine has ``workers > 1``; the fan-outs that actually
  happened are tallied in ``WorkloadResult.parallelism``.

Concurrency model: the store's read paths are cooperative — a mutation
must never land *inside* one statement's execution (see
:mod:`repro.graph.snapshot`) — so every statement and every snapshot
pin acquires one global statement lock.  Sessions, transactions and
snapshots span many lock acquisitions and interleave preemptively
across threads, which is exactly the surface under test: a snapshot
taken between two statements of an uncommitted writer transaction must
be refused, a snapshot taken after a commit must never see a later
commit, and the final store must equal a serial replay of the committed
transaction log.

Correctness is checked two ways:

* **snapshot invariant** — every reader snapshot verifies
  ``Meta.posts == count(:Post)``, ``Meta.likes == count(LIKES)`` and
  ``Meta.knows == count(KNOWS)``; each update transaction changes both
  sides in separate statements, so any non-atomic visibility shows up
  as a counter mismatch;
* **serial-replay differential** — :func:`replay` re-executes the
  committed transaction log, in commit order, on a copy of the initial
  store; the result must be byte-identical (ids included) to the live
  store after the concurrent run.  Deliberately rolled-back
  transactions never enter the log, so the differential also pins that
  aborts leave nothing behind.
"""

from __future__ import annotations

import math
import threading
import time

from repro.exceptions import TransactionError

#: The latency classes reported per run, in reporting order.
OPERATION_CLASSES = ("short_read", "update_txn", "analytic")

#: Percentile keys recorded into BENCH_pipeline.json, ascending.
PERCENTILES = (("p50_ms", 50), ("p95_ms", 95), ("p99_ms", 99))


def percentile(samples, q):
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def latency_stats(samples, elapsed_s):
    """``{count, throughput_per_s, p50_ms, p95_ms, p99_ms}`` for one class."""
    stats = {
        "count": len(samples),
        "throughput_per_s": (
            len(samples) / elapsed_s if elapsed_s > 0 else 0.0
        ),
    }
    for key, q in PERCENTILES:
        stats[key] = percentile(samples, q) * 1000.0 if samples else 0.0
    return stats


class WorkloadResult:
    """Everything one driver run observed."""

    def __init__(self):
        self.latencies = {name: [] for name in OPERATION_CLASSES}
        self.committed_log = []   # list of [(query, params), ...] per txn
        self.committed = 0
        self.aborted = 0          # deliberate rollbacks (never in the log)
        self.reads = 0
        #: Exchange fan-outs observed by the analytic class under mode
        #: ``auto``: statements issued, how many actually ran parallel,
        #: total partitions across those, and the largest worker pool.
        self.parallelism = {
            "analytic_runs": 0,
            "parallel_runs": 0,
            "partitions": 0,
            "max_workers": 0,
        }
        self.snapshot_retries = 0
        self.invariant_failures = []
        self.version_regressions = []
        self.errors = []
        self.elapsed_s = 0.0

    def stats(self):
        """Per-class latency/throughput stats, percentile keys ordered."""
        return {
            name: latency_stats(self.latencies[name], self.elapsed_s)
            for name in OPERATION_CLASSES
        }

    def consistent(self):
        return not (
            self.invariant_failures
            or self.version_regressions
            or self.errors
        )


#: Update transactions: each entry is a list of statement templates the
#: writer instantiates with fresh parameters.  Every transaction touches
#: its entity *and* the Meta counters in separate statements.
def _new_post(context):
    mid = "w%d" % context["next_message"]
    context["next_message"] += 1
    rng = context["rng"]
    return [
        (
            "MATCH (p:Person {id: $pid}) "
            "CREATE (m:Post {id: $mid, content: $content, length: $length, "
            "creationDate: $ts})-[:HAS_CREATOR]->(p)",
            {
                "pid": rng.choice(context["persons"]),
                "mid": mid,
                "content": "update %s" % mid,
                "length": len(mid) + 7,
                "ts": context["clock"],
            },
        ),
        (
            "MATCH (f:Forum {id: $fid}), (m:Post {id: $mid}) "
            "CREATE (f)-[:CONTAINER_OF]->(m)",
            {"fid": rng.choice(context["forums"]), "mid": mid},
        ),
        (
            "MATCH (c:Meta) SET c.txns = c.txns + 1, c.posts = c.posts + 1",
            None,
        ),
    ]


def _new_like(context):
    rng = context["rng"]
    return [
        (
            "MATCH (p:Person {id: $pid}), (m:Post {id: $mid}) "
            "CREATE (p)-[:LIKES {creationDate: $ts}]->(m)",
            {
                "pid": rng.choice(context["persons"]),
                "mid": rng.choice(context["posts"]),
                "ts": context["clock"],
            },
        ),
        (
            "MATCH (c:Meta) SET c.txns = c.txns + 1, c.likes = c.likes + 1",
            None,
        ),
    ]


def _new_friendship(context):
    rng = context["rng"]
    left = rng.choice(context["persons"])
    right = rng.choice(context["persons"])
    while right == left:
        right = rng.choice(context["persons"])
    return [
        (
            "MATCH (a:Person {id: $left}), (b:Person {id: $right}) "
            "CREATE (a)-[:KNOWS {creationDate: $ts}]->(b)",
            {"left": left, "right": right, "ts": context["clock"]},
        ),
        (
            "MATCH (c:Meta) SET c.txns = c.txns + 1, c.knows = c.knows + 1",
            None,
        ),
    ]


_UPDATE_KINDS = (_new_post, _new_like, _new_friendship)

_SHORT_READS = (
    "MATCH (p:Person {id: $pid})-[:KNOWS]-(f:Person) RETURN count(f) AS n",
    "MATCH (m)-[:HAS_CREATOR]->(p:Person {id: $pid}) RETURN count(m) AS n",
)

_ANALYTICS = (
    "MATCH (p:Person {id: $pid})-[:KNOWS]-()-[:KNOWS]-(fof:Person) "
    "RETURN count(fof) AS n",
    "MATCH (m:Comment)-[:REPLY_OF*1..3]->(root)-[:HAS_CREATOR]->"
    "(p:Person {id: $pid}) RETURN count(m) AS n",
    "MATCH (f:Forum {id: $fid})-[:CONTAINER_OF]->(m:Post)<-[:LIKES]-(p) "
    "RETURN count(p) AS n",
    # Scan-heavy aggregates whose source scans clear the parallel
    # threshold on workers>1 engines — the class's fan-out exercisers.
    "MATCH (m:Comment) WHERE m.length >= $minlen RETURN count(m) AS n",
    "MATCH (m:Post) WHERE m.creationDate >= 0 "
    "RETURN count(m) AS n, sum(m.length) AS total",
)

#: The three (counter property, counted pattern) invariant pairs.
_INVARIANTS = (
    ("posts", "MATCH (m:Post) RETURN count(m) AS n"),
    ("likes", "MATCH ()-[r:LIKES]->() RETURN count(r) AS n"),
    ("knows", "MATCH ()-[r:KNOWS]->() RETURN count(r) AS n"),
)


def prepare(engine):
    """Install the driver's Meta counter node, seeded from the store.

    Runs as one auto-committed statement per counter read plus one
    CREATE, *before* the concurrent phase — callers copy the graph
    after this to get the replay baseline.
    """
    counts = {}
    for key, query in _INVARIANTS:
        counts[key] = engine.run(query).values("n")[0]
    engine.run(
        "CREATE (:Meta {txns: 0, posts: $posts, likes: $likes, "
        "knows: $knows})",
        counts,
    )


class MacroWorkload:
    """One concurrent mixed-workload run against a prepared engine.

    ``update_txns`` bounds the writer; ``readers`` reader threads run
    short reads and analytics against snapshots until the writer
    finishes (each completes its current batch before stopping).
    ``budget_s`` is a wall-clock ceiling: the writer stops issuing new
    transactions once it is exceeded, so a run always terminates even
    on a slow machine.  ``abort_every``-th transactions are executed
    and then deliberately rolled back.
    """

    def __init__(
        self,
        engine,
        persons,
        forums,
        posts,
        next_message,
        update_txns=40,
        readers=2,
        abort_every=7,
        analytic_every=3,
        budget_s=None,
        seed=0,
    ):
        import random

        self.engine = engine
        self.update_txns = update_txns
        self.readers = readers
        self.abort_every = abort_every
        self.analytic_every = analytic_every
        self.budget_s = budget_s
        self.seed = seed
        self.context = {
            "persons": list(persons),
            "forums": list(forums),
            "posts": list(posts),
            "next_message": next_message,
            "rng": random.Random(seed),
            "clock": 0,
        }
        #: One statement (or snapshot pin) at a time — the store's read
        #: paths are cooperative; see the module docstring.
        self._statement_lock = threading.Lock()
        self._stop = threading.Event()

    # -- threads ---------------------------------------------------------

    def run(self):
        """Execute the mixed workload; returns a :class:`WorkloadResult`."""
        result = WorkloadResult()
        started = time.perf_counter()
        deadline = (
            started + self.budget_s if self.budget_s is not None else None
        )
        threads = [
            threading.Thread(
                target=self._read_loop,
                args=(result, reader_index, deadline),
                name="reader-%d" % reader_index,
            )
            for reader_index in range(self.readers)
        ]
        writer = threading.Thread(
            target=self._write_loop, args=(result, deadline), name="writer"
        )
        for thread in threads:
            thread.start()
        writer.start()
        writer.join()
        self._stop.set()
        for thread in threads:
            thread.join()
        result.elapsed_s = time.perf_counter() - started
        return result

    def _write_loop(self, result, deadline):
        try:
            rng = self.context["rng"]
            with self.engine.session() as session:
                for txn_index in range(self.update_txns):
                    if deadline is not None and time.perf_counter() > deadline:
                        break
                    self.context["clock"] = txn_index
                    statements = rng.choice(_UPDATE_KINDS)(self.context)
                    abort = (
                        self.abort_every
                        and (txn_index + 1) % self.abort_every == 0
                    )
                    begun = time.perf_counter()
                    session.begin()
                    for query, parameters in statements:
                        with self._statement_lock:
                            session.run(query, parameters)
                        time.sleep(0)  # yield: let readers pin mid-txn
                    if abort:
                        with self._statement_lock:
                            session.rollback()
                        result.aborted += 1
                    else:
                        with self._statement_lock:
                            session.commit()
                        result.committed += 1
                        result.committed_log.append(statements)
                        result.latencies["update_txn"].append(
                            time.perf_counter() - begun
                        )
                    time.sleep(0)
        except BaseException as error:  # noqa: BLE001 — surfaced to caller
            result.errors.append("writer: %r" % (error,))
        finally:
            self._stop.set()

    def _read_loop(self, result, reader_index, deadline):
        import random

        rng = random.Random(self.seed * 8191 + reader_index + 1)
        last_version = -1
        iteration = 0
        try:
            while not self._stop.is_set():
                if deadline is not None and time.perf_counter() > deadline:
                    break
                iteration += 1
                with self.engine.session() as session:
                    snapshot = self._pin(session, result)
                    if snapshot is None:
                        continue
                    if snapshot.version < last_version:
                        result.version_regressions.append(
                            (reader_index, last_version, snapshot.version)
                        )
                    last_version = snapshot.version
                    pid = rng.choice(self.context["persons"])
                    fid = rng.choice(self.context["forums"])
                    self._timed_read(
                        result, "short_read", snapshot,
                        rng.choice(_SHORT_READS), {"pid": pid},
                    )
                    if iteration % self.analytic_every == 0:
                        self._timed_read(
                            result, "analytic", snapshot,
                            rng.choice(_ANALYTICS),
                            {"pid": pid, "fid": fid, "minlen": 5},
                            mode="auto",
                        )
                        self._check_invariants(result, snapshot)
                time.sleep(0)
        except BaseException as error:  # noqa: BLE001
            result.errors.append("reader-%d: %r" % (reader_index, error))

    def _pin(self, session, result):
        """Pin a snapshot, retrying while the writer holds uncommitted
        changes (the store refuses to pin a non-committed version)."""
        for _attempt in range(1000):
            with self._statement_lock:
                try:
                    return session.snapshot()
                except TransactionError:
                    result.snapshot_retries += 1
            if self._stop.is_set():
                return None
            time.sleep(0.0005)
        return None

    def _timed_read(
        self, result, op_class, snapshot, query, parameters, mode=None
    ):
        options = {} if mode is None else {"mode": mode}
        with self._statement_lock:
            begun = time.perf_counter()
            run = snapshot.run(query, parameters, **options)
            records = run.records
            elapsed = time.perf_counter() - begun
            if op_class == "analytic":
                counts = result.parallelism
                counts["analytic_runs"] += 1
                info = run.parallelism
                if run.execution_mode == "parallel" and info:
                    counts["parallel_runs"] += 1
                    counts["partitions"] += info.get("partitions", 0)
                    counts["max_workers"] = max(
                        counts["max_workers"], info.get("workers", 0)
                    )
        result.latencies[op_class].append(elapsed)
        result.reads += 1
        return records

    def _check_invariants(self, result, snapshot):
        with self._statement_lock:
            meta = snapshot.run(
                "MATCH (c:Meta) RETURN c.posts AS posts, c.likes AS likes, "
                "c.knows AS knows"
            ).records
            if not meta:
                return  # prepare() not run on this engine
            counters = meta[0]
            for key, query in _INVARIANTS:
                actual = snapshot.run(query).values("n")[0]
                if actual != counters[key]:
                    result.invariant_failures.append(
                        "v%d: %s counter=%r actual=%r"
                        % (snapshot.version, key, counters[key], actual)
                    )


def replay(engine, committed_log):
    """Re-execute a committed-transaction log serially, in commit order.

    ``engine`` wraps the replay target — a copy of the store as it was
    when the concurrent run started (after :func:`prepare`).  Returns
    the engine's graph for comparison against the live store.
    """
    for statements in committed_log:
        with engine.session() as session:
            session.begin()
            for query, parameters in statements:
                session.run(query, parameters)
            session.commit()
    return engine.graph


def dataset_handles(dataset):
    """``(persons, forums, posts, next_message)`` driver inputs from an
    :class:`~repro.datasets.ldbc_social.LdbcDataset`."""
    counts = dataset.counts
    persons = ["p%d" % index for index in range(counts["persons"])]
    forums = ["f%d" % index for index in range(counts["forums"])]
    posts = ["m%d" % index for index in range(counts["posts"])]
    return persons, forums, posts, counts["posts"] + counts["comments"]
