"""P3: variable-length matching cost vs. range width and graph size.

Demonstrates the finiteness guarantee of edge isomorphism (Section 4.2):
match counts stay bounded and runtimes scale with the reachable frontier,
not with the (infinite) space of homomorphism walks.  Grid and chain
topologies are swept over increasing ``*1..k`` widths, and the
trajectory additionally records the *deep* shapes (chains ≥ 64 hops,
unbounded grid fan-out) that reachability probes accelerate in
``bench_p11_reachability.py`` — these entries are the vanilla-DFS
baseline those speedups are measured against.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph


def chain_graph(length):
    graph = MemoryGraph()
    nodes = [
        graph.create_node(("Link",), {"i": index}) for index in range(length)
    ]
    for index in range(length - 1):
        graph.create_relationship(nodes[index], nodes[index + 1], "NEXT")
    return graph


def grid_graph(side):
    graph = MemoryGraph()
    nodes = {}
    for row in range(side):
        for column in range(side):
            nodes[row, column] = graph.create_node(
                ("Cell",), {"r": row, "c": column}
            )
    for row in range(side):
        for column in range(side):
            if column + 1 < side:
                graph.create_relationship(
                    nodes[row, column], nodes[row, column + 1], "E"
                )
            if row + 1 < side:
                graph.create_relationship(
                    nodes[row, column], nodes[row + 1, column], "E"
                )
    return graph


class TestChainCounts:
    def test_counts_match_closed_form(self, table_report):
        # On an n-chain, (a)-[*1..k]->(b) has sum_{d=1..k} (n-d) matches.
        length = 30
        graph = chain_graph(length)
        engine = CypherEngine(graph)
        rows = []
        for width in (1, 2, 4, 8):
            measured = engine.run(
                "MATCH (a)-[*1..%d]->(b) RETURN count(*) AS n" % width
            ).value()
            expected = sum(length - distance for distance in range(1, width + 1))
            assert measured == expected
            rows.append((width, expected, measured))
        table_report(
            "P3 — chain(%d): matches of (a)-[*1..k]->(b)" % length,
            ["k", "closed form", "measured"],
            rows,
        )

    def test_unbounded_is_finite_on_cycle(self):
        graph = chain_graph(8)
        nodes = list(graph.nodes())
        graph.create_relationship(nodes[-1], nodes[0], "NEXT")  # close cycle
        engine = CypherEngine(graph)
        count = engine.run("MATCH (a)-[*]->(b) RETURN count(*) AS n").value()
        # 8 edges, edge isomorphism: walks are simple edge-paths on the
        # cycle: 8 starts x 8 lengths
        assert count == 64


class TestScaling:
    def test_runtime_grows_with_width(self, table_report):
        graph = grid_graph(6)
        engine = CypherEngine(graph)
        rows = []
        timings = []
        for width in (1, 2, 3, 4):
            query = (
                "MATCH ({r: 0, c: 0})-[*1..%d]->(b) RETURN count(*) AS n"
                % width
            )
            started = time.perf_counter()
            count = engine.run(query).value()
            elapsed = time.perf_counter() - started
            timings.append(elapsed)
            rows.append((width, count, "%.2f ms" % (elapsed * 1e3)))
        table_report(
            "P3 — grid(6x6): frontier size and runtime vs range width",
            ["k", "matches", "runtime"],
            rows,
        )
        counts = [row[1] for row in rows]
        assert counts == sorted(counts)  # frontier grows monotonically


@pytest.mark.parametrize("width", [2, 4, 8])
def test_p3_chain_benchmark(benchmark, width):
    graph = chain_graph(40)
    engine = CypherEngine(graph)
    query = "MATCH (a)-[*1..%d]->(b) RETURN count(*) AS n" % width
    result = benchmark(engine.run, query)
    assert result.value() > 0


def test_p3_grid_benchmark(benchmark):
    graph = grid_graph(5)
    engine = CypherEngine(graph)
    query = "MATCH ({r: 0, c: 0})-[*1..4]->(b) RETURN count(*) AS n"
    result = benchmark(engine.run, query)
    assert result.value() > 0


@pytest.mark.parametrize("depth", [64, 128])
def test_p3_deep_chain_benchmark(benchmark, depth):
    """Unbounded traversal down a chain ≥ 64 hops deep.

    On an n-chain, ``({i: 0})-[*]->(b)`` emits one match per deeper
    node: exactly ``depth`` rows, found by walking the whole chain.
    This is the workload reachability probes cut to the target's depth.
    """
    graph = chain_graph(depth + 1)
    engine = CypherEngine(graph)
    query = "MATCH ({i: 0})-[*]->(b) RETURN count(*) AS n"
    result = benchmark(engine.run, query)
    assert result.value() == depth


def test_p3_grid_unbounded_benchmark(benchmark):
    """Unbounded fan-out from a grid corner (directed-path explosion).

    The right+down 6x6 grid is a DAG whose directed paths from the
    corner number ``C(12, 6) - 2 = 922`` — the closed form pins the
    enumeration; the runtime records how fast a blind DFS drowns.
    """
    graph = grid_graph(6)
    engine = CypherEngine(graph)
    query = "MATCH ({r: 0, c: 0})-[*]->(b) RETURN count(*) AS n"
    result = benchmark(engine.run, query)
    assert result.value() == 922
