"""A1: ablations of the design choices DESIGN.md calls out.

* label index vs. full scan (the NodeByLabelScan entry point);
* cached vs. recomputed statistics (the planner's cost-model input);
* edge-uniqueness bookkeeping cost (what edge isomorphism costs on
  queries where it does not change the answer).
"""

import time

import pytest

from repro import CypherEngine, Morphism
from repro.graph.statistics import GraphStatistics
from repro.graph.store import MemoryGraph
from repro.planner.cost import statistics_for
from repro.semantics.morphism import EDGE_ISOMORPHISM


def labelled_graph(commons=2000, rares=4):
    graph = MemoryGraph()
    for index in range(commons):
        graph.create_node(("Common",), {"i": index})
    rare_nodes = [
        graph.create_node(("Rare",), {"i": index}) for index in range(rares)
    ]
    return graph, rare_nodes


class TestLabelIndexAblation:
    def test_index_beats_scan(self, table_report):
        graph, rare_nodes = labelled_graph()

        def via_index():
            return sum(1 for _ in graph.nodes_with_label("Rare"))

        def via_scan():
            return sum(
                1 for node in graph.nodes() if "Rare" in graph.labels(node)
            )

        assert via_index() == via_scan() == len(rare_nodes)
        started = time.perf_counter()
        for _ in range(20):
            via_index()
        index_seconds = (time.perf_counter() - started) / 20
        started = time.perf_counter()
        for _ in range(20):
            via_scan()
        scan_seconds = (time.perf_counter() - started) / 20
        speedup = scan_seconds / max(index_seconds, 1e-9)
        table_report(
            "A1a — label index vs full node scan (4 of 2004 nodes)",
            ["access path", "mean time"],
            [("label index", "%.4f ms" % (index_seconds * 1e3)),
             ("full scan", "%.4f ms" % (scan_seconds * 1e3)),
             ("speedup", "%.0fx" % speedup)],
        )
        assert speedup > 5


class TestStatisticsCacheAblation:
    def test_cache_hit_is_cheap(self, table_report):
        graph, _ = labelled_graph()
        statistics_for(graph)  # warm
        started = time.perf_counter()
        for _ in range(50):
            statistics_for(graph)
        cached_seconds = (time.perf_counter() - started) / 50
        started = time.perf_counter()
        for _ in range(5):
            GraphStatistics(graph)
        recomputed_seconds = (time.perf_counter() - started) / 5
        table_report(
            "A1b — statistics: cached vs recomputed per query",
            ["variant", "mean time"],
            [("cached (version hit)", "%.4f ms" % (cached_seconds * 1e3)),
             ("recomputed", "%.4f ms" % (recomputed_seconds * 1e3))],
        )
        assert cached_seconds < recomputed_seconds

    def test_cache_invalidates_on_mutation(self):
        graph, _ = labelled_graph(commons=10)
        before = statistics_for(graph)
        graph.create_node(("Common",))
        after = statistics_for(graph)
        assert after.node_count == before.node_count + 1


class TestUniquenessAblation:
    def test_overhead_on_uniqueness_irrelevant_query(self, table_report):
        # A simple chain query on a DAG: homomorphism and edge isomorphism
        # agree on the answer; the delta is pure bookkeeping cost.
        graph = MemoryGraph()
        nodes = [graph.create_node(("N",), {"i": i}) for i in range(400)]
        for index in range(399):
            graph.create_relationship(nodes[index], nodes[index + 1], "NEXT")
        query = "MATCH (a)-[:NEXT]->(b)-[:NEXT]->(c) RETURN count(*) AS n"

        def run_with(morphism):
            engine = CypherEngine(graph, morphism=morphism, mode="planner")
            engine.run(query)
            started = time.perf_counter()
            for _ in range(3):
                result = engine.run(query).value()
            return (time.perf_counter() - started) / 3, result

        edge_seconds, edge_count = run_with(EDGE_ISOMORPHISM)
        homo_seconds, homo_count = run_with(
            Morphism("homomorphism", max_length=4)
        )
        assert edge_count == homo_count == 398
        table_report(
            "A1c — edge-uniqueness bookkeeping on a DAG 2-hop query",
            ["semantics", "mean time"],
            [("edge isomorphism", "%.3f ms" % (edge_seconds * 1e3)),
             ("homomorphism", "%.3f ms" % (homo_seconds * 1e3))],
        )
        # the check must not dominate: within 3x of the unchecked run
        assert edge_seconds < homo_seconds * 3


def test_a1_label_scan_benchmark(benchmark):
    graph, _ = labelled_graph()
    engine = CypherEngine(graph)
    result = benchmark(engine.run, "MATCH (r:Rare) RETURN count(*) AS n")
    assert result.value() == 4
