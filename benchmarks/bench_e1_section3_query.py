"""E1: the paper's Section 3 running query on the Figure 1 graph.

Regenerates every table the paper prints (Figure 2a, Figure 2b, the
line-4 and line-5 tables, the final result) and asserts exact equality;
the benchmark times the full query on both execution paths.
"""

from collections import Counter

import pytest

from repro import CypherEngine
from repro.datasets.paper import figure1_graph

FULL_QUERY = (
    "MATCH (r:Researcher) "
    "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
    "WITH r, count(s) AS studentsSupervised "
    "MATCH (r)-[:AUTHORS]->(p1:Publication) "
    "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
    "RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount"
)


@pytest.fixture(scope="module")
def setup():
    graph, ids = figure1_graph()
    return graph, ids, CypherEngine(graph)


def _bag(result, *columns):
    return Counter(
        tuple(record[column] for column in columns) for record in result.records
    )


def test_e1_stage_tables_match_paper(setup, table_report):
    graph, ids, engine = setup
    fig2a = engine.run(
        "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "RETURN r.name AS r, s.name AS s"
    )
    assert _bag(fig2a, "r", "s") == Counter(
        {("Nils", None): 1, ("Elin", "Sten"): 1,
         ("Elin", "Linda"): 1, ("Thor", "Sten"): 1}
    )
    table_report(
        "Figure 2(a) — reproduced", ["r", "s"],
        [(r["r"], r["s"]) for r in fig2a.records],
    )

    fig2b = engine.run(
        "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "RETURN r.name AS r, studentsSupervised"
    )
    assert _bag(fig2b, "r", "studentsSupervised") == Counter(
        {("Nils", 0): 1, ("Elin", 2): 1, ("Thor", 1): 1}
    )
    table_report(
        "Figure 2(b) — reproduced", ["r", "studentsSupervised"],
        [(r["r"], r["studentsSupervised"]) for r in fig2b.records],
    )

    line5 = engine.run(
        "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
        "RETURN r.name AS r, studentsSupervised, "
        "p1.acmid AS p1, p2.acmid AS p2"
    )
    assert len(line5) == 6  # incl. the two identical dagger rows
    assert _bag(line5, "r", "p1", "p2")[("Nils", 220, 269)] == 2
    table_report(
        "Line-5 table — reproduced (note the duplicate rows)",
        ["r", "studentsSupervised", "p1", "p2"],
        [
            (r["r"], r["studentsSupervised"], r["p1"], r["p2"])
            for r in line5.records
        ],
    )


def test_e1_final_result_matches_paper(setup, table_report):
    graph, ids, engine = setup
    result = engine.run(FULL_QUERY)
    assert _bag(result, "r.name", "studentsSupervised", "citedCount") == (
        Counter({("Nils", 0, 3): 1, ("Elin", 2, 1): 1})
    )
    table_report(
        "Final result — paper says: Nils 0 3 / Elin 2 1",
        result.columns,
        [tuple(record.values()) for record in result.records],
    )


@pytest.mark.parametrize("mode", ["interpreter", "planner"])
def test_e1_query_benchmark(benchmark, setup, mode):
    graph, ids, engine = setup
    result = benchmark(engine.run, FULL_QUERY, mode=mode)
    assert len(result) == 2
