"""P1: Expand vs. a relational hash join (paper Section 2).

"Semantically Expand is very similar to a relational join ... [but] never
needs to read any unnecessary data, or proceed via an indirection such as
an index in order to find related nodes."

We time the same traversal — from a *selective* label through one
relationship hop — executed (a) with the engine's Expand pipeline over
adjacency lists and (b) with a hash-join baseline that scans and hashes
the full relationship set, as a relational engine without adjacency would.
The shape claim: Expand wins, and its advantage grows as the graph grows
while the selected frontier stays fixed.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

QUERY = "MATCH (h:Hub)-[:LINK]->(t) RETURN count(*) AS n"


def build_graph(people, hubs=5, fanout=4):
    graph = MemoryGraph()
    crowd = [
        graph.create_node(("Person",), {"i": index}) for index in range(people)
    ]
    hub_nodes = [
        graph.create_node(("Hub",), {"h": index}) for index in range(hubs)
    ]
    for hub_index, hub in enumerate(hub_nodes):
        for offset in range(fanout):
            graph.create_relationship(
                hub, crowd[(hub_index * fanout + offset) % people], "LINK"
            )
    # background edges that a full-relationship hash join must scan
    for index in range(people - 1):
        graph.create_relationship(crowd[index], crowd[index + 1], "NEXT")
    return graph


def hash_join_baseline(graph):
    """A relational plan: scan σ_label(nodes) ⋈ scan(relationships)."""
    hubs = {
        node for node in graph.nodes() if "Hub" in graph.labels(node)
    }
    build_side = {}
    for rel in graph.relationships():  # full scan — no adjacency access
        if graph.rel_type(rel) == "LINK":
            build_side.setdefault(graph.src(rel), []).append(graph.tgt(rel))
    return sum(len(build_side.get(hub, ())) for hub in hubs)


def expand_pipeline(engine):
    return engine.run(QUERY, mode="planner").value()


def test_p1_same_answer():
    graph = build_graph(people=300)
    engine = CypherEngine(graph)
    assert expand_pipeline(engine) == hash_join_baseline(graph)


def test_p1_expand_advantage_grows(table_report):
    rows = []
    ratios = []
    for people in (200, 800, 3200):
        graph = build_graph(people)
        engine = CypherEngine(graph)
        expand_pipeline(engine)  # warm both paths
        hash_join_baseline(graph)

        started = time.perf_counter()
        for _ in range(3):
            expand_result = expand_pipeline(engine)
        expand_seconds = (time.perf_counter() - started) / 3

        started = time.perf_counter()
        for _ in range(3):
            join_result = hash_join_baseline(graph)
        join_seconds = (time.perf_counter() - started) / 3

        assert expand_result == join_result
        ratio = join_seconds / max(expand_seconds, 1e-9)
        ratios.append(ratio)
        rows.append(
            (people, "%.4f ms" % (expand_seconds * 1e3),
             "%.4f ms" % (join_seconds * 1e3), "%.1fx" % ratio)
        )
    table_report(
        "P1 — Expand vs hash join on a selective traversal",
        ["graph size", "Expand", "hash join", "join/Expand"],
        rows,
    )
    # the paper's shape claim: adjacency wins and the gap widens with size
    assert ratios[-1] > 1.0
    assert ratios[-1] > ratios[0]


def test_p1_expand_benchmark(benchmark):
    graph = build_graph(people=800)
    engine = CypherEngine(graph)
    result = benchmark(expand_pipeline, engine)
    assert result == 20


def test_p1_hash_join_benchmark(benchmark):
    graph = build_graph(people=800)
    result = benchmark(hash_join_baseline, graph)
    assert result == 20
