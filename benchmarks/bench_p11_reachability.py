"""P11: reachability probes vs blind var-length DFS.

Until PR 8 an unbounded traversal between two *bound* endpoints —
``MATCH (a {..}), (b {..}) MATCH (a)-[:T*]->(b)`` — enumerated every
walk out of ``a`` and filtered on arrival: on a 600-link chain with the
target 8 hops in, the engine walked all 599 edges to keep one row; on a
grid it drowned in the ``C(r+c, r)`` directed-path explosion.  The
reachability index condenses the type-segmented adjacency into its SCC
DAG with interval labels, and the planner's ``ReachabilityProbe``
prunes every walk step that provably cannot reach the bound endpoint —
the walk itself remains the residual verifier, so bags and emission
order are untouched.

Acceptance floors, on **both** engines (row and batch), same data with
and without the index declared:

* deep-chain probe (target 8 of 600) ≥ 10x the blind-DFS median;
* grid probe (target one diagonal step in) ≥ 10x the blind-DFS median.

The correctness preamble re-proves on the bench graphs what the tier-1
differentials pin on the fuzz corpus: identical records across
interpreter / row / batch with and without the index, the probe visible
in the profiled access paths, and maintenance ≡ rebuild after the
workload's mutations.

Results land in ``BENCH_pipeline.json`` via the benchmark fixtures
below.
"""

import time

import pytest

from repro import CypherEngine
from repro.graph.store import MemoryGraph

#: Deep chain: 600 :Link nodes, the probe target 8 hops from the head.
CHAIN = 600
CHAIN_TARGET = 8

#: Grid: right+down (7x7 is a DAG with C(14, 7) - 2 directed corner
#: paths), the probe target one diagonal step from the origin.
GRID = 7

CHAIN_QUERY = (
    "MATCH (a:Link {i: 0}), (b:Link {i: %d}) "
    "MATCH (a)-[:NEXT*]->(b) RETURN count(*) AS c" % CHAIN_TARGET
)

GRID_QUERY = (
    "MATCH (a:Cell {r: 0, c: 0}), (b:Cell {r: 1, c: 1}) "
    "MATCH (a)-[:E*]->(b) RETURN count(*) AS c"
)

#: (name, query, expected row value, acceptance floor)
PINNED = [
    ("deep chain", CHAIN_QUERY, 1, 10.0),
    ("grid", GRID_QUERY, 2, 10.0),
]


def chain_graph(indexed):
    graph = MemoryGraph()
    # Both variants get the property index so the bound endpoints bind
    # in O(1) either way — the floor measures the traversal, not scans.
    graph.create_index("Link", "i")
    if indexed:
        # Declared first: the whole load runs through the incremental
        # condensation maintenance, exactly like production ingest.
        graph.create_reachability_index(["NEXT"])
    nodes = [
        graph.create_node(("Link",), {"i": index}) for index in range(CHAIN)
    ]
    for index in range(CHAIN - 1):
        graph.create_relationship(nodes[index], nodes[index + 1], "NEXT")
    return graph


def grid_graph(indexed):
    graph = MemoryGraph()
    graph.create_index("Cell", "r")
    if indexed:
        graph.create_reachability_index(["E"])
    nodes = {}
    for row in range(GRID):
        for column in range(GRID):
            nodes[row, column] = graph.create_node(
                ("Cell",), {"r": row, "c": column}
            )
    for row in range(GRID):
        for column in range(GRID):
            if column + 1 < GRID:
                graph.create_relationship(
                    nodes[row, column], nodes[row, column + 1], "E"
                )
            if row + 1 < GRID:
                graph.create_relationship(
                    nodes[row, column], nodes[row + 1, column], "E"
                )
    return graph


BUILDERS = {"deep chain": chain_graph, "grid": grid_graph}


def _median_time(callable_, repeats=9):
    """Median wall time after one warm-up run (plan cache, labels)."""
    callable_()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[repeats // 2]


def test_p11_probe_plans_do_not_fall_back():
    """The probe must be provably in the plan and in the access log."""
    for name, query, expected, _floor in PINNED:
        engine = CypherEngine(BUILDERS[name](indexed=True))
        for mode in ("row", "batch"):
            result = engine.run(query, mode=mode, profile=True)
            assert result.executed_by == "planner", (name, mode)
            assert result.value() == expected, (name, mode)
            probes = [
                record for record in result.access_paths
                if record["operator"] == "ReachabilityProbe"
            ]
            assert probes, "%s [%s] never probed: %s" % (
                name, mode, result.access_paths
            )


def test_p11_results_identical_with_and_without_index():
    for name, query, expected, _floor in PINNED:
        plain = CypherEngine(BUILDERS[name](indexed=False))
        indexed = CypherEngine(BUILDERS[name](indexed=True))
        reference = plain.run(query, mode="interpreter")
        assert reference.value() == expected, name
        for engine in (plain, indexed):
            for mode in ("row", "batch"):
                result = engine.run(query, mode=mode)
                assert reference.table.same_bag(result.table), (name, mode)


def test_p11_maintenance_equals_rebuild_after_mutations():
    """The bench graph's index survives chain surgery identically."""
    graph = chain_graph(indexed=True)
    engine = CypherEngine(graph)
    engine.run(
        "MATCH (a:Link {i: %d}), (b:Link {i: 0}) CREATE (a)-[:NEXT]->(b)"
        % (CHAIN - 1)  # close the chain into one giant SCC
    )
    engine.run(
        "MATCH (a:Link {i: 10})-[r:NEXT]->(b:Link {i: 11}) DELETE r"
    )  # and cut it back apart
    rebuilt = graph.copy()
    for types in graph.reachability_indexes():
        assert graph.reachability_snapshot(types) == (
            rebuilt.reachability_snapshot(types)
        ), types
    assert engine.run(CHAIN_QUERY).value() == 1
    assert engine.run(
        "MATCH (a:Link {i: 0}), (b:Link {i: 20}) "
        "MATCH (a)-[:NEXT*]->(b) RETURN count(*) AS c"
    ).value() == 0  # severed by the cut


def test_p11_probe_beats_blind_dfs(table_report):
    """Acceptance floors: ≥10x on deep chain and grid — both engines."""
    rows = []
    failures = []
    for name, query, expected, floor in PINNED:
        plain = CypherEngine(BUILDERS[name](indexed=False))
        indexed = CypherEngine(BUILDERS[name](indexed=True))
        for mode in ("row", "batch"):
            probe_seconds = _median_time(
                lambda query=query, mode=mode: indexed.run(query, mode=mode)
            )
            blind_seconds = _median_time(
                lambda query=query, mode=mode: plain.run(query, mode=mode)
            )
            ratio = blind_seconds / max(probe_seconds, 1e-9)
            rows.append(
                (
                    "%s [%s]" % (name, mode),
                    "%.3f ms" % (probe_seconds * 1e3),
                    "%.3f ms" % (blind_seconds * 1e3),
                    "%.1fx" % ratio,
                    "%.0fx floor" % floor,
                )
            )
            if ratio < floor:
                failures.append(
                    "%s [%s] only at %.2fx (floor %.0fx)"
                    % (name, mode, ratio, floor)
                )
    table_report(
        "P11 — reachability probe vs blind var-length DFS (row and batch)",
        ["workload", "probe", "blind DFS", "DFS/probe", "pin"],
        rows,
    )
    assert not failures, "; ".join(failures)


def test_p11_build_and_maintenance_cost(table_report):
    """Trajectory report: declared-first ingest vs plain, no floor."""
    plain_seconds = _median_time(
        lambda: chain_graph(indexed=False), repeats=7
    )
    indexed_seconds = _median_time(
        lambda: chain_graph(indexed=True), repeats=7
    )
    overhead = indexed_seconds / max(plain_seconds, 1e-9)
    table_report(
        "P11 — condensation maintenance during ingest (chain of %d)" % CHAIN,
        ["variant", "median"],
        [
            ("no index", "%.3f ms" % (plain_seconds * 1e3)),
            (":NEXT index", "%.3f ms" % (indexed_seconds * 1e3)),
            ("overhead", "%.2fx" % overhead),
        ],
    )


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("indexed", [True, False], ids=["probe", "blind"])
def test_p11_deep_chain_benchmark(benchmark, mode, indexed):
    engine = CypherEngine(chain_graph(indexed=indexed))
    result = benchmark(engine.run, CHAIN_QUERY, mode=mode)
    assert result.value() == 1


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("indexed", [True, False], ids=["probe", "blind"])
def test_p11_grid_benchmark(benchmark, mode, indexed):
    engine = CypherEngine(grid_graph(indexed=indexed))
    result = benchmark(engine.run, GRID_QUERY, mode=mode)
    assert result.value() == 2
