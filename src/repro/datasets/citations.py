"""A seeded citation-network generator (the Figure 1 schema, scaled up).

Researchers author publications, publications cite strictly older
publications (so CITES* is acyclic and variable-length matching has a
natural frontier), and researchers supervise students — the same three
labels and three relationship types as the paper's running example.
"""

from __future__ import annotations

import random

from repro.graph.store import MemoryGraph


def citation_network(
    publications=60,
    researchers=12,
    students=18,
    max_citations=4,
    seed=0,
):
    """Build a synthetic academic graph; returns ``(graph, handles)``.

    ``handles`` maps "researchers"/"publications"/"students" to id lists.
    """
    rng = random.Random(seed)
    graph = MemoryGraph()
    researcher_ids = [
        graph.create_node(("Researcher",), {"name": "researcher-%d" % index})
        for index in range(researchers)
    ]
    student_ids = [
        graph.create_node(("Student",), {"name": "student-%d" % index})
        for index in range(students)
    ]
    publication_ids = []
    for index in range(publications):
        publication = graph.create_node(
            ("Publication",),
            {"acmid": 1000 + index, "year": 1990 + index % 30},
        )
        publication_ids.append(publication)
        author = rng.choice(researcher_ids)
        graph.create_relationship(author, publication, "AUTHORS")
        if index and rng.random() < 0.3:  # some papers have two authors
            second = rng.choice(researcher_ids)
            if second != author:
                graph.create_relationship(second, publication, "AUTHORS")
        # cite strictly older publications: the citation graph is a DAG
        older = publication_ids[:-1]
        for cited in rng.sample(older, min(len(older), rng.randint(0, max_citations))):
            graph.create_relationship(publication, cited, "CITES")
    for student in student_ids:
        for supervisor in rng.sample(researcher_ids, rng.randint(1, 2)):
            graph.create_relationship(supervisor, student, "SUPERVISES")
    handles = {
        "researchers": researcher_ids,
        "students": student_ids,
        "publications": publication_ids,
    }
    return graph, handles
