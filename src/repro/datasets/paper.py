"""The paper's own example graphs, rebuilt node-for-node.

``figure1_graph`` is the academic graph of Figure 1 / Example 4.1 (ids
n1..n10, r1..r11 in the same numbering); ``figure4_graph`` is the
teachers/students graph of Figure 4; ``self_loop_graph`` is the
one-node/one-relationship graph from the Section 4.2 complexity
discussion.

Label and type casing follows the *queries* in the paper (``:Researcher``,
``:SUPERVISES``), which is what Section 3 executes.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder


def figure1_graph():
    """Figure 1: researchers, students, publications and citations.

    Returns ``(graph, ids)`` where ids maps "n1".."n10" and "r1".."r11"
    to the node/relationship identifiers, mirroring Example 4.1:

    * src: r1:n1, r2:n2, r3:n4, r4:n5, r5:n6, r6:n6, r7:n6, r8:n10,
      r9:n9, r10:n6, r11:n9
    * tgt: r1:n2, r2:n3, r3:n2, r4:n2, r5:n5, r6:n7, r7:n8, r8:n7,
      r9:n4, r10:n9, r11:n5
    """
    return (
        GraphBuilder()
        .node("n1", "Researcher", name="Nils")
        .node("n2", "Publication", acmid=220)
        .node("n3", "Publication", acmid=190)
        .node("n4", "Publication", acmid=235)
        .node("n5", "Publication", acmid=240)
        .node("n6", "Researcher", name="Elin")
        .node("n7", "Student", name="Sten")
        .node("n8", "Student", name="Linda")
        .node("n9", "Publication", acmid=269)
        .node("n10", "Researcher", name="Thor")
        .rel("n1", "AUTHORS", "n2", handle="r1")
        .rel("n2", "CITES", "n3", handle="r2")
        .rel("n4", "CITES", "n2", handle="r3")
        .rel("n5", "CITES", "n2", handle="r4")
        .rel("n6", "AUTHORS", "n5", handle="r5")
        .rel("n6", "SUPERVISES", "n7", handle="r6")
        .rel("n6", "SUPERVISES", "n8", handle="r7")
        .rel("n10", "SUPERVISES", "n7", handle="r8")
        .rel("n9", "CITES", "n4", handle="r9")
        .rel("n6", "AUTHORS", "n9", handle="r10")
        .rel("n9", "CITES", "n5", handle="r11")
        .build()
    )


def figure4_graph():
    """Figure 4: the property graph with students and teachers.

    n1:Teacher -r1:knows-> n2:Student -r2:knows-> n3:Teacher
    -r3:knows-> n4:Teacher.
    """
    return (
        GraphBuilder()
        .node("n1", "Teacher")
        .node("n2", "Student")
        .node("n3", "Teacher")
        .node("n4", "Teacher")
        .rel("n1", "KNOWS", "n2", handle="r1")
        .rel("n2", "KNOWS", "n3", handle="r2")
        .rel("n3", "KNOWS", "n4", handle="r3")
        .build()
    )


def self_loop_graph():
    """Section 4.2: one node with a single self-loop relationship.

    Under Cypher's edge-isomorphism semantics the pattern
    ``(x)-[*0..]->(x)`` has exactly two matches here (traverse the loop
    zero times or once); under homomorphism it would have infinitely many.
    """
    return (
        GraphBuilder()
        .node("n", "Node")
        .rel("n", "LOOP", "n", handle="r")
        .build()
    )
