"""Social-network generators, including the two-graph world of Example 6.1.

``social_graph`` is a plain seeded friendship network.
``social_with_registry`` builds the Cypher 10 composition scenario: a
``soc_net`` graph of FRIEND relationships and a ``register`` graph that
*shares the person node identities* and adds City nodes with IN
relationships — so a graph produced from one can be queried against the
other, as the paper's friend-sharing example does.
"""

from __future__ import annotations

import random

from repro.graph.catalog import GraphCatalog
from repro.graph.store import MemoryGraph


def social_graph(people=40, avg_friends=4, seed=0, since_range=(1980, 2018)):
    """A seeded friendship network; returns ``(graph, person_ids)``.

    FRIEND relationships carry a ``since`` year, used by queries like the
    paper's ``abs(r2.since - r1.since) < $duration`` filter.
    """
    rng = random.Random(seed)
    graph = MemoryGraph()
    person_ids = [
        graph.create_node(("Person",), {"name": "person-%d" % index})
        for index in range(people)
    ]
    target_edges = people * avg_friends // 2
    seen_pairs = set()
    guard = 0
    while len(seen_pairs) < target_edges and guard < target_edges * 20:
        guard += 1
        left, right = rng.sample(person_ids, 2)
        key = (min(left.value, right.value), max(left.value, right.value))
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        graph.create_relationship(
            left, right, "FRIEND", {"since": rng.randint(*since_range)}
        )
    return graph, person_ids


def social_with_registry(people=24, cities=4, avg_friends=3, seed=0):
    """The Example 6.1 world: returns ``(catalog, person_ids, city_ids)``.

    The catalog contains ``soc_net`` (FRIEND network, the default graph)
    and ``register`` (same people, IN edges to City nodes).  Person node
    ids are identical in both graphs, which is what makes the composed
    query ``QUERY GRAPH friends ... FROM GRAPH register MATCH
    (a)-[:IN]->(c:City)<-[:IN]-(b)`` meaningful.
    """
    rng = random.Random(seed)
    soc_net, person_ids = social_graph(people, avg_friends, seed=seed)
    register = MemoryGraph()
    for person in person_ids:
        register.adopt_node(
            person,
            soc_net.labels(person),
            soc_net.properties(person),
        )
    city_ids = [
        register.create_node(("City",), {"name": "city-%d" % index})
        for index in range(cities)
    ]
    for person in person_ids:
        register.create_relationship(
            person, rng.choice(city_ids), "IN"
        )
    catalog = GraphCatalog(soc_net, "soc_net")
    catalog.register("soc_net", soc_net, uri="hdfs://data/soc_network")
    catalog.register("register", register, uri="bolt://data/citizens")
    return catalog, person_ids, city_ids
