"""Dataset generators.

``paper`` rebuilds the paper's own figures (the Figure 1 academic graph
and the Figure 4 teachers graph) exactly.  The rest are seeded synthetic
generators for the industrial domains the paper cites in Sections 1 and 3
— data-center dependency topologies, fraud rings sharing PII, citation
networks and social networks — standing in for the proprietary datasets
(DESIGN.md §5).
"""

from repro.datasets.paper import figure1_graph, figure4_graph, self_loop_graph
from repro.datasets.citations import citation_network
from repro.datasets.datacenter import datacenter_graph
from repro.datasets.fraud import fraud_graph
from repro.datasets.ldbc_social import LdbcDataset, generate as ldbc_social
from repro.datasets.social import social_graph

__all__ = [
    "figure1_graph",
    "figure4_graph",
    "self_loop_graph",
    "citation_network",
    "datacenter_graph",
    "fraud_graph",
    "ldbc_social",
    "LdbcDataset",
    "social_graph",
]
