"""LDBC-style social network generator for the macro-workload.

A seeded, scale-parameterised approximation of the LDBC SNB schema:
Person / Forum / Post / Comment nodes with timestamped properties, wired
by KNOWS (power-law degrees), HAS_MEMBER, CONTAINER_OF, HAS_CREATOR,
REPLY_OF and LIKES relationships.  The scale factor maps linearly to
node/edge counts (:func:`ldbc_counts`), so ``scale=0.01`` is a
ten-person smoke world and ``scale=1.0`` a thousand-person benchmark
graph.

The generator materialises one canonical row model
(:class:`LdbcDataset`): an ordered list of tables, each either a node
table or a relationship table, with neo4j-admin-style typed headers
(``:ID(ns)``, ``:LABEL``, ``:START_ID(ns)``, ``:END_ID(ns)``, ``:TYPE``,
``name:int``).  From that one model the dataset emits either

* a :class:`~repro.graph.store.MemoryGraph` directly
  (:meth:`LdbcDataset.to_graph`, with ``mode`` selecting per-row public
  mutators, per-row transactional creates, or bulk transactional
  creates — all three produce identical stores), or
* CSV streams/files (:meth:`LdbcDataset.csv_lines` /
  :meth:`LdbcDataset.write_csv`) for the bulk-ingest path in
  :mod:`repro.graph.ingest`.

Output is deterministic per ``(scale, seed)``: every random draw comes
from one ``random.Random`` stream consumed in a fixed order, and rows
round-trip losslessly through CSV (ints and strings only).
"""

from __future__ import annotations

import csv
import os
import random

from repro.graph.store import MemoryGraph

#: 2010-01-01T00:00:00Z — all creation timestamps sit in the three
#: years after this epoch, as integer seconds.
EPOCH = 1262304000
_SPREAD = 3 * 365 * 24 * 3600

_FIRST_NAMES = (
    "Ada", "Alan", "Barbara", "Edsger", "Grace", "John", "Leslie",
    "Margaret", "Maurice", "Niklaus", "Robin", "Tony",
)
_LAST_NAMES = (
    "Backus", "Dijkstra", "Hamilton", "Hoare", "Hopper", "Kay",
    "Lamport", "Liskov", "Lovelace", "Milner", "Turing", "Wilkes",
)
_BROWSERS = ("Chrome", "Firefox", "Safari", "Opera")
_WORDS = (
    "about", "maybe", "photos", "great", "thanks", "agree", "trip",
    "music", "paper", "query", "graph", "rain", "coffee", "match",
)


def ldbc_counts(scale):
    """Entity counts for one scale factor (linear in ``scale``).

    ``scale=1.0`` is the kiloperson reference point; every count floors
    at a value that keeps the tiny smoke scales structurally complete
    (at least two forums, every person reachable).
    """
    if scale <= 0:
        raise ValueError("scale factor must be positive")
    persons = max(8, round(scale * 1000))
    return {
        "persons": persons,
        "forums": max(2, persons // 5),
        "posts": persons * 4,
        "comments": persons * 8,
        "knows": persons * 3,
        "likes": persons * 8,
    }


class Table:
    """One CSV-shaped table: a typed header plus value-tuple rows."""

    __slots__ = ("name", "kind", "header", "rows")

    def __init__(self, name, kind, header, rows):
        self.name = name          # file stem, e.g. "persons"
        self.kind = kind          # "nodes" | "relationships"
        self.header = header      # tuple of column specs
        self.rows = rows          # list of value tuples

    def __repr__(self):
        return "Table(%s, %s, %d rows)" % (self.name, self.kind, len(self.rows))


def _power_law_weights(count, alpha=0.7):
    """Zipf-ish weights: the head of the id range is the heavy tail."""
    return [(index + 1) ** -alpha for index in range(count)]


def generate(scale=0.01, seed=0):
    """Build the canonical row model for ``(scale, seed)``.

    Returns an :class:`LdbcDataset`.  All structure is drawn from a
    single seeded stream in fixed order, so equal arguments give equal
    datasets, row for row.
    """
    counts = ldbc_counts(scale)
    rng = random.Random(seed)
    n_persons = counts["persons"]
    n_forums = counts["forums"]
    n_posts = counts["posts"]
    n_comments = counts["comments"]

    def stamp():
        return EPOCH + rng.randrange(_SPREAD)

    persons = [
        (
            "p%d" % index,
            rng.choice(_FIRST_NAMES),
            rng.choice(_LAST_NAMES),
            EPOCH - rng.randrange(50 * 365) * 24 * 3600,  # birthday
            stamp(),
            rng.choice(_BROWSERS),
        )
        for index in range(n_persons)
    ]
    forums = [
        (
            "f%d" % index,
            "Forum about %s" % rng.choice(_WORDS),
            stamp(),
        )
        for index in range(n_forums)
    ]

    def content():
        n_words = rng.randint(2, 6)
        text = " ".join(rng.choice(_WORDS) for _ in range(n_words))
        return text, len(text)

    # Posts and comments share the Message id namespace: REPLY_OF,
    # HAS_CREATOR and LIKES all reference messages regardless of kind.
    person_weights = _power_law_weights(n_persons)
    posts = []
    post_creator = []
    post_forum = []
    for index in range(n_posts):
        text, length = content()
        posts.append(("m%d" % index, text, length, stamp()))
        post_creator.append(
            rng.choices(range(n_persons), weights=person_weights)[0]
        )
        post_forum.append(rng.randrange(n_forums))
    comments = []
    comment_creator = []
    comment_parent = []  # index into the shared message id space
    for offset in range(n_comments):
        index = n_posts + offset
        text, length = content()
        comments.append(("m%d" % index, text, length, stamp()))
        comment_creator.append(
            rng.choices(range(n_persons), weights=person_weights)[0]
        )
        # Reply to any earlier message: a post, or a comment already
        # generated — comment threads form chains of REPLY_OF edges.
        comment_parent.append(rng.randrange(index))

    # KNOWS with power-law degrees: endpoints drawn from the zipf
    # weights, so early persons become hubs.
    knows = []
    seen_pairs = set()
    attempts = 0
    while len(knows) < counts["knows"] and attempts < counts["knows"] * 20:
        attempts += 1
        left, right = rng.choices(
            range(n_persons), weights=person_weights, k=2
        )
        if left == right:
            continue
        key = (min(left, right), max(left, right))
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        knows.append(("p%d" % left, "p%d" % right, stamp()))

    members = []
    for forum_index in range(n_forums):
        size = max(2, rng.randint(2, max(2, n_persons // n_forums * 2)))
        for person_index in rng.sample(range(n_persons), min(size, n_persons)):
            members.append(
                ("f%d" % forum_index, "p%d" % person_index, stamp())
            )

    likes = []
    seen_likes = set()
    n_messages = n_posts + n_comments
    attempts = 0
    while len(likes) < counts["likes"] and attempts < counts["likes"] * 20:
        attempts += 1
        person = rng.choices(range(n_persons), weights=person_weights)[0]
        message = rng.randrange(n_messages)
        if (person, message) in seen_likes:
            continue
        seen_likes.add((person, message))
        likes.append(("p%d" % person, "m%d" % message, stamp()))

    tables = [
        Table(
            "persons",
            "nodes",
            (
                ":ID(Person)", ":LABEL", "id", "firstName", "lastName",
                "birthday:int", "creationDate:int", "browser",
            ),
            [
                (pid, "Person", pid, first, last, birthday, created, browser)
                for pid, first, last, birthday, created, browser in persons
            ],
        ),
        Table(
            "forums",
            "nodes",
            (":ID(Forum)", ":LABEL", "id", "title", "creationDate:int"),
            [
                (fid, "Forum", fid, title, created)
                for fid, title, created in forums
            ],
        ),
        Table(
            "messages",
            "nodes",
            (
                ":ID(Message)", ":LABEL", "id", "content", "length:int",
                "creationDate:int",
            ),
            [
                (mid, "Post", mid, text, length, created)
                for mid, text, length, created in posts
            ]
            + [
                (mid, "Comment", mid, text, length, created)
                for mid, text, length, created in comments
            ],
        ),
        Table(
            "knows",
            "relationships",
            (
                ":START_ID(Person)", ":END_ID(Person)", ":TYPE",
                "creationDate:int",
            ),
            [
                (left, right, "KNOWS", created)
                for left, right, created in knows
            ],
        ),
        Table(
            "members",
            "relationships",
            (":START_ID(Forum)", ":END_ID(Person)", ":TYPE", "joinDate:int"),
            [
                (forum, person, "HAS_MEMBER", joined)
                for forum, person, joined in members
            ],
        ),
        Table(
            "containers",
            "relationships",
            (":START_ID(Forum)", ":END_ID(Message)", ":TYPE"),
            [
                ("f%d" % post_forum[index], "m%d" % index, "CONTAINER_OF")
                for index in range(n_posts)
            ],
        ),
        Table(
            "creators",
            "relationships",
            (":START_ID(Message)", ":END_ID(Person)", ":TYPE"),
            [
                ("m%d" % index, "p%d" % post_creator[index], "HAS_CREATOR")
                for index in range(n_posts)
            ]
            + [
                (
                    "m%d" % (n_posts + offset),
                    "p%d" % comment_creator[offset],
                    "HAS_CREATOR",
                )
                for offset in range(n_comments)
            ],
        ),
        Table(
            "replies",
            "relationships",
            (":START_ID(Message)", ":END_ID(Message)", ":TYPE"),
            [
                ("m%d" % (n_posts + offset), "m%d" % comment_parent[offset],
                 "REPLY_OF")
                for offset in range(n_comments)
            ],
        ),
        Table(
            "likes",
            "relationships",
            (
                ":START_ID(Person)", ":END_ID(Message)", ":TYPE",
                "creationDate:int",
            ),
            [
                (person, message, "LIKES", created)
                for person, message, created in likes
            ],
        ),
    ]
    return LdbcDataset(scale, seed, counts, tables)


def _column_value(spec, raw):
    if spec.endswith(":int"):
        return int(raw)
    return raw


class LdbcDataset:
    """The canonical row model one ``(scale, seed)`` pair generates."""

    def __init__(self, scale, seed, counts, tables):
        self.scale = scale
        self.seed = seed
        self.counts = counts
        self.tables = tables

    # -- direct graph emission ------------------------------------------

    def to_graph(self, mode="batch", graph=None):
        """Materialise into a :class:`MemoryGraph`.

        ``mode`` selects the write path — ``"interpreter"`` uses the
        public per-row mutators (one version bump each), ``"row"`` a
        store transaction with per-row creates, ``"batch"`` a store
        transaction with the bulk create paths.  All three iterate the
        same canonical table order, so the resulting stores are
        identical snapshot-for-snapshot.
        """
        if graph is None:
            graph = MemoryGraph()
        if mode == "interpreter":
            ids = {}
            for table in self.tables:
                if table.kind == "nodes":
                    for labels, properties in _node_rows(table):
                        external = properties["id"]
                        ids[external] = graph.create_node(labels, properties)
                else:
                    for src, tgt, rel_type, properties in _rel_rows(table):
                        graph.create_relationship(
                            ids[src], ids[tgt], rel_type, properties
                        )
            return graph
        if mode not in ("row", "batch"):
            raise ValueError("unknown emission mode %r" % (mode,))
        transaction = graph.write_transaction()
        try:
            ids = {}
            for table in self.tables:
                if table.kind == "nodes":
                    if mode == "batch":
                        for labels, batch in _label_batches(table):
                            properties = [props for props in batch]
                            for external, node in zip(
                                (props["id"] for props in properties),
                                transaction.create_nodes(labels, properties),
                            ):
                                ids[external] = node
                    else:
                        for labels, properties in _node_rows(table):
                            ids[properties["id"]] = transaction.create_node(
                                labels, properties
                            )
                else:
                    if mode == "batch":
                        for rel_type, batch in _type_batches(table):
                            transaction.create_relationships(
                                rel_type,
                                [
                                    (ids[src], ids[tgt], properties)
                                    for src, tgt, properties in batch
                                ],
                            )
                    else:
                        for src, tgt, rel_type, properties in _rel_rows(table):
                            transaction.create_relationship(
                                ids[src], ids[tgt], rel_type, properties
                            )
            transaction.commit()
        except BaseException:
            transaction.abandon()
            raise
        return graph

    # -- CSV emission ----------------------------------------------------

    def csv_lines(self, table):
        """The table as CSV text lines (header first), a generator."""
        yield _csv_line(table.header)
        for row in table.rows:
            yield _csv_line(row)

    def write_csv(self, directory):
        """Write one ``<name>.csv`` per table; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for table in self.tables:
            path = os.path.join(directory, table.name + ".csv")
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(table.header)
                writer.writerows(table.rows)
            paths.append(path)
        return paths

    def __repr__(self):
        return "LdbcDataset(scale=%r, seed=%r, %d tables)" % (
            self.scale, self.seed, len(self.tables)
        )


def _csv_line(row):
    import io

    buffer = io.StringIO()
    csv.writer(buffer).writerow(row)
    return buffer.getvalue().rstrip("\r\n")


def _node_rows(table):
    """Yield ``(labels, properties)`` per row, id column included."""
    header = table.header
    label_at = header.index(":LABEL")
    for row in table.rows:
        labels = (row[label_at],)
        properties = {
            spec.split(":", 1)[0]: _column_value(spec, row[position])
            for position, spec in enumerate(header)
            if not spec.startswith(":")
        }
        yield labels, properties


def _rel_rows(table):
    """Yield ``(src_external, tgt_external, type, properties)`` per row."""
    header = table.header
    src_at = next(
        position for position, spec in enumerate(header)
        if spec.startswith(":START_ID")
    )
    tgt_at = next(
        position for position, spec in enumerate(header)
        if spec.startswith(":END_ID")
    )
    type_at = header.index(":TYPE")
    for row in table.rows:
        properties = {
            spec.split(":", 1)[0]: _column_value(spec, row[position])
            for position, spec in enumerate(header)
            if not spec.startswith(":")
        }
        yield row[src_at], row[tgt_at], row[type_at], properties


def _label_batches(table):
    """Group consecutive node rows sharing a label tuple."""
    batch_labels = None
    batch = []
    for labels, properties in _node_rows(table):
        if labels != batch_labels:
            if batch:
                yield batch_labels, batch
            batch_labels, batch = labels, []
        batch.append(properties)
    if batch:
        yield batch_labels, batch


def _type_batches(table):
    """Group consecutive relationship rows sharing a type."""
    batch_type = None
    batch = []
    for src, tgt, rel_type, properties in _rel_rows(table):
        if rel_type != batch_type:
            if batch:
                yield batch_type, batch
            batch_type, batch = rel_type, []
        batch.append((src, tgt, properties))
    if batch:
        yield batch_type, batch
