"""Fraud-ring generator (the paper's second industry example).

Account holders HAS personal-information nodes labelled SSN, PhoneNumber
or Address; a *fraud ring* is a PII node shared by more than one account
holder.  The generator plants a known number of rings among otherwise
honest holders, so the paper's fraud query has a ground truth to be
checked against.
"""

from __future__ import annotations

import random

from repro.graph.store import MemoryGraph

_PII_LABELS = ("SSN", "PhoneNumber", "Address")


def fraud_graph(holders=30, rings=4, ring_size=3, seed=0):
    """Build a synthetic identity graph; returns ``(graph, planted)``.

    ``planted`` lists, per planted ring, the shared PII node id and the
    account-holder ids attached to it (each ring shares one PII node
    among ``ring_size`` holders).
    """
    rng = random.Random(seed)
    graph = MemoryGraph()
    holder_ids = []
    for index in range(holders):
        holder_ids.append(
            graph.create_node(
                ("AccountHolder",),
                {"uniqueId": "holder-%d" % index, "name": "h%d" % index},
            )
        )
    serial = [0]

    def fresh_pii(label):
        serial[0] += 1
        return graph.create_node(
            (label,), {"value": "%s-%d" % (label.lower(), serial[0])}
        )

    # honest holders: private PII all of their own
    for holder in holder_ids:
        for label in _PII_LABELS:
            graph.create_relationship(holder, fresh_pii(label), "HAS")

    planted = []
    available = list(holder_ids)
    rng.shuffle(available)
    for ring_index in range(rings):
        members = [
            available[(ring_index * ring_size + offset) % len(available)]
            for offset in range(ring_size)
        ]
        members = list(dict.fromkeys(members))
        label = _PII_LABELS[ring_index % len(_PII_LABELS)]
        shared = fresh_pii(label)
        for member in members:
            graph.create_relationship(member, shared, "HAS")
        planted.append({"pii": shared, "label": label, "members": members})
    return graph, planted
