"""A data-center dependency topology (the paper's network-management query).

"In a data center, entities such as services, firewalls, servers, routers
and network switches are modeled as nodes, with relationships representing
the dependencies between them."  The generator layers services so that
DEPENDS_ON edges always point from a higher layer to a lower one: the
dependency graph is a DAG, ``DEPENDS_ON*`` terminates, and core services
accumulate the most transitive dependents — which is exactly what the
paper's example query ranks.
"""

from __future__ import annotations

import random

from repro.graph.store import MemoryGraph

_LAYER_KINDS = ("switch", "router", "server", "firewall", "service")


def datacenter_graph(layers=4, width=6, fanout=2, seed=0):
    """Build a layered service-dependency DAG; returns ``(graph, layers)``.

    Layer 0 is the core; every node in layer i > 0 DEPENDS_ON ``fanout``
    nodes of layer i-1.  All nodes carry the label Service (the paper's
    query matches ``(svc:Service)``) plus a kind property.
    """
    rng = random.Random(seed)
    graph = MemoryGraph()
    layer_ids = []
    for layer in range(layers):
        ids = []
        for index in range(width):
            kind = _LAYER_KINDS[min(layer, len(_LAYER_KINDS) - 1)]
            ids.append(
                graph.create_node(
                    ("Service",),
                    {
                        "name": "%s-%d-%d" % (kind, layer, index),
                        "kind": kind,
                        "layer": layer,
                    },
                )
            )
        layer_ids.append(ids)
        if layer > 0:
            for service in ids:
                targets = rng.sample(
                    layer_ids[layer - 1],
                    min(fanout, len(layer_ids[layer - 1])),
                )
                for target in targets:
                    graph.create_relationship(service, target, "DEPENDS_ON")
    return graph, layer_ids
