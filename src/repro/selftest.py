"""A self-contained correctness smoke suite: ``python -m repro.cli selftest``.

CI-friendly distillation of the repository's two big differential
harnesses, runnable without pytest or the tests/ tree:

* a **differential corpus** — a fixed set of read and update queries over
  a structurally rich little graph, each executed by the reference
  interpreter, the row-wise planner and the vectorised batch engine;
  reads must agree as bags (and claimed plans must actually run
  batched), updates must additionally leave byte-identical stores;
* a **parallel smoke set** — the same read corpus through the parallel
  executor at several worker counts and morsel sizes; claimed plans
  must run through the exchange (partition counts checked, so silent
  serial fallback fails) and match the serial batch engine record for
  record, order included;
* an **index-maintenance smoke set** — a create → update → delete
  statement sequence over an indexed clone of the same graph; the probe
  queries afterwards must actually enter through the index (plan
  inspected, not trusted) and agree with a filter-only run on an
  unindexed clone;
* a **crash-recovery smoke set** — a transactional session driven into
  injected faults at a first, interior and commit-flush mutation site;
  each crash must leave store and index equal to an untouched clone and
  the engine still answering queries;
* the **TCK smoke set** — a handful of scenario suites (including the
  morsel-boundary and index features) through the full multi-mode TCK
  runner.

Exit status 0 means every check passed; failures print the offending
query/scenario and return 1, so the command can gate a commit.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.runtime.engine import CypherEngine
from repro.values.ordering import canonical_key

#: Read queries: every batch-engine operator plus the row-only shapes.
READ_CORPUS = [
    "MATCH (n) RETURN count(*) AS c",
    "MATCH (a:A) RETURN a.v AS v ORDER BY v",
    "MATCH (a:A)-[:R]->(b) RETURN a.v AS av, b.v AS bv ORDER BY av, bv",
    "MATCH (a)-[r:R|S]->(b) WHERE r.w >= 1 RETURN count(*) AS c",
    "MATCH (a)-->(b)-->(c) RETURN count(*) AS paths",
    "MATCH (a:B) WHERE a.v > 1 OR a.name CONTAINS '4' RETURN a.name AS n",
    "MATCH (a) RETURN a.v AS g, count(*) AS c ORDER BY g",
    "MATCH (a) RETURN DISTINCT a.v AS v ORDER BY v",
    "MATCH (a) RETURN a.v AS v ORDER BY v DESC LIMIT 3",
    "MATCH (a) WITH a.v AS v ORDER BY v SKIP 2 LIMIT 4 RETURN sum(v) AS s",
    "UNWIND [3, 1, 2] AS x RETURN x * 10 AS y ORDER BY y",
    "MATCH (a:A) WITH collect(a.v) AS vs RETURN size(vs) AS n",
    "MATCH (a) WHERE all(x IN [a.v] WHERE x >= 0) RETURN count(*) AS c",
    # Batch-claimed since the frontier-BFS var-length implementation:
    "MATCH (a)-[:R*1..2]->(b) RETURN count(*) AS c",
    # Row-engine-only shapes (still differential against the interpreter):
    "MATCH p = (a:A)-[:R]->(b) RETURN length(p) AS l, count(*) AS c",
    "MATCH (a:A) OPTIONAL MATCH (a)-[:S]->(c) RETURN a.v AS v, c.v AS cv "
    "ORDER BY v, cv",
    "RETURN 1 AS x UNION RETURN 2 AS x",
]

#: Update queries: ordered drivers, so final stores must match exactly.
UPDATE_CORPUS = [
    "UNWIND range(1, 5) AS i CREATE (:N {v: i})",
    "MATCH (a:A) WITH a ORDER BY a.name CREATE (a)-[:W {src: a.v}]->(:New)",
    "MATCH (a) WITH a ORDER BY a.name SET a.w = a.v * 2, a:Seen",
    "MATCH ()-[r:S]->() DELETE r",
    "MATCH (a:C) DETACH DELETE a",
    "UNWIND [0, 1, 2, 3] AS v MERGE (n:A {v: v}) "
    "ON CREATE SET n.created = 1 ON MATCH SET n.hits = 1",
    "MATCH (a:B) WITH a ORDER BY a.name REMOVE a.v, a:B",
]

#: TCK suites for the smoke set (coverage + morsel boundaries + writes
#: + index-backed predicates).
TCK_SMOKE = ("match_basic", "aggregation", "batching", "updates", "indexes")

_MODES = ("interpreter", "row", "batch")

#: The index-maintenance smoke sequence: create, update, delete — each
#: mutating entries of the :A(v) index declared on the indexed clone.
INDEX_SMOKE_STATEMENTS = (
    "UNWIND range(10, 14) AS i CREATE (:A {v: i, name: 'fresh-' + "
    "toString(i)})",
    "MATCH (a:A) WHERE a.v = 11 SET a.v = 99",
    "MATCH (a:A) WHERE a.v = 13 REMOVE a.v",
    "MATCH (a:A) WHERE a.v = 12 DETACH DELETE a",
)

#: Probe queries that must (a) enter through the index on the indexed
#: clone and (b) agree with the unindexed, filter-only clone.
INDEX_SMOKE_PROBES = (
    "MATCH (a:A) WHERE a.v = 99 RETURN count(*) AS c",
    "MATCH (a:A) WHERE a.v = 13 RETURN count(*) AS c",
    "MATCH (a:A) WHERE a.v >= 10 RETURN a.v AS v ORDER BY v",
    "MATCH (a:A) WHERE a.v IN [10, 12, 14] RETURN count(*) AS c",
)


def fixture_graph():
    """Three labels, two relationship types, a cycle and a self-loop."""
    builder = GraphBuilder()
    labels = ["A", "B", "C"]
    for index in range(9):
        builder.node(
            "n%d" % index,
            labels[index % 3],
            v=index % 4,
            name="node-%d" % index,
        )
    edges = [
        (0, 1, "R"), (1, 2, "R"), (2, 3, "R"), (3, 4, "S"), (4, 5, "S"),
        (5, 0, "R"), (0, 2, "S"), (2, 4, "R"), (6, 7, "R"), (7, 6, "S"),
        (8, 8, "R"), (1, 4, "S"),
    ]
    for position, (source, target, rel_type) in enumerate(edges):
        builder.rel("n%d" % source, rel_type, "n%d" % target, w=position % 3)
    graph, _ = builder.build()
    return graph


def graph_state(graph):
    """Canonical, id-inclusive snapshot for final-store comparison."""
    nodes = sorted(
        (
            node.value,
            tuple(sorted(graph.labels(node))),
            canonical_key(graph.properties(node)),
        )
        for node in graph.nodes()
    )
    rels = sorted(
        (
            rel.value,
            graph.src(rel).value,
            graph.tgt(rel).value,
            graph.rel_type(rel),
            canonical_key(graph.properties(rel)),
        )
        for rel in graph.relationships()
    )
    return nodes, rels


def _check_read(query, graph, failures):
    from repro.planner.batch import plan_supports_batch

    engine = CypherEngine(graph)
    reference = engine.run(query, mode="interpreter")
    for mode in ("row", "batch"):
        result = engine.run(query, mode=mode)
        if result.executed_by != "planner":
            failures.append("%s: fell back to interpreter in %r" % (query, mode))
            continue
        if mode == "row" and result.execution_mode != "row":
            failures.append("%s: row mode ran %r" % (query, result.execution_mode))
        if (
            mode == "batch"
            and plan_supports_batch(result.plan)
            and result.execution_mode != "batch"
        ):
            failures.append(
                "%s: batch-claimed plan ran %r" % (query, result.execution_mode)
            )
        if not reference.table.same_bag(result.table):
            failures.append("%s: %s-mode result bag diverged" % (query, mode))


#: ``(workers, morsel_size)`` pairs for the parallel smoke; the tiny
#: morsels force the 9-node fixture graph into several partitions.
PARALLEL_SMOKE_CONFIGS = ((2, 4), (4, 2))


def _check_parallel(query, graph, failures):
    """Parallel runs must equal serial batch runs record-for-record.

    For parallel-claimed plans the published ``parallelism`` record is
    checked too: the run must really have partitioned (more than one
    partition whenever the source had enough rows), so a silent serial
    fallback fails the selftest rather than hiding in a bag match.
    """
    from repro.planner.parallel import plan_supports_parallel

    serial = CypherEngine(graph).run(query, mode="batch")
    for workers, morsel_size in PARALLEL_SMOKE_CONFIGS:
        engine = CypherEngine(graph, workers=workers, morsel_size=morsel_size)
        result = engine.run(query, mode="parallel")
        if not plan_supports_parallel(result.plan):
            if not serial.table.same_bag(result.table):
                failures.append("%s: unclaimed parallel run diverged" % query)
            continue
        if result.execution_mode != "parallel":
            failures.append(
                "%s: parallel-claimed plan ran %r"
                % (query, result.execution_mode)
            )
            continue
        if result.records != serial.records:
            failures.append(
                "%s: parallel records diverged at %d workers"
                % (query, workers)
            )
        info = result.parallelism
        if info["source_rows"] >= 2 * morsel_size and info["partitions"] < 2:
            failures.append(
                "%s: silent serial fallback (%d partition(s) at %d workers)"
                % (query, info["partitions"], workers)
            )


def _check_update(query, graph, failures):
    clones = {mode: graph.copy() for mode in _MODES}
    results = {}
    for mode, clone in clones.items():
        try:
            results[mode] = CypherEngine(clone).run(query, mode=mode)
        except Exception as error:  # noqa: BLE001 — report, don't crash
            failures.append("%s: %s mode raised %r" % (query, mode, error))
            return
    reference = results["interpreter"].table
    reference_state = graph_state(clones["interpreter"])
    for mode in ("row", "batch"):
        if not reference.same_bag(results[mode].table):
            failures.append("%s: %s-mode result bag diverged" % (query, mode))
        if graph_state(clones[mode]) != reference_state:
            failures.append("%s: %s-mode final store diverged" % (query, mode))


def _check_index_smoke(failures):
    """Create → update → delete on an indexed clone, then probe.

    Probes must *prove* the index path — the plan is walked for an
    IndexScan / IndexRangeScan operator, falling back silently would
    pass the bag check and still fail here — and their results must
    match a filter-only run on an unindexed clone with identical data.
    """
    indexed = fixture_graph()
    indexed.create_index("A", "v")
    plain = fixture_graph()
    indexed_engine = CypherEngine(indexed)
    plain_engine = CypherEngine(plain)
    for statement in INDEX_SMOKE_STATEMENTS:
        indexed_engine.run(statement)
        plain_engine.run(statement)
    if graph_state(indexed) != graph_state(plain):
        failures.append("index smoke: indexed and plain stores diverged")
        return
    for query in INDEX_SMOKE_PROBES:
        result = indexed_engine.run(query)
        if not _plan_enters_index(result.plan):
            failures.append(
                "index smoke: %s did not enter through the index" % query
            )
        reference = plain_engine.run(query)
        if not reference.table.same_bag(result.table):
            failures.append(
                "index smoke: %s disagrees with the filter-only run" % query
            )


def _plan_enters_index(plan):
    """True when the plan provably uses a property-index access path."""
    from repro.planner import logical as lg

    stack = [plan]
    while stack:
        op = stack.pop()
        if isinstance(
            op, (lg.IndexScan, lg.IndexRangeScan, lg.IndexOrderedScan)
        ):
            return True
        stack.extend(op._children())
    return False


#: The composite-index smoke sequence: mutate every column of the
#: declared :A(v, name) index — entry growth, recompute, column removal
#: (which must *drop* the whole entry), node deletion.
COMPOSITE_SMOKE_STATEMENTS = (
    "UNWIND range(20, 24) AS i CREATE (:A {v: i, name: 'comp-' + "
    "toString(i)})",
    "MATCH (a:A) WHERE a.v = 21 SET a.name = 'renamed'",
    "MATCH (a:A) WHERE a.v = 23 REMOVE a.name",
    "MATCH (a:A) WHERE a.v = 22 DETACH DELETE a",
)

#: Multi-column probes that must enter through the composite index on
#: the indexed clone (plan-inspected) and agree with the plain clone.
COMPOSITE_SMOKE_PROBES = (
    "MATCH (a:A) WHERE a.v = 21 AND a.name = 'renamed' "
    "RETURN count(*) AS c",
    "MATCH (a:A) WHERE a.v = 20 AND a.name STARTS WITH 'comp' "
    "RETURN a.name AS n",
    "MATCH (a:A) WHERE a.v >= 20 AND a.name IS NOT NULL "
    "RETURN a.v AS v, a.name AS n ORDER BY v",
)


def _check_composite_index_smoke(failures):
    """Create → probe (plan-proven) → update → drop, composite edition.

    Same discipline as the single-key smoke — the probes must provably
    enter through the ``:A(v, name)`` composite index and agree with a
    filter-only clone — plus the drop: after ``drop_index`` the same
    probes must re-plan off the index and still agree.
    """
    indexed = fixture_graph()
    indexed.create_index("A", "v", "name")
    plain = fixture_graph()
    indexed_engine = CypherEngine(indexed)
    plain_engine = CypherEngine(plain)
    for statement in COMPOSITE_SMOKE_STATEMENTS:
        indexed_engine.run(statement)
        plain_engine.run(statement)
    if graph_state(indexed) != graph_state(plain):
        failures.append(
            "composite smoke: indexed and plain stores diverged"
        )
        return
    for query in COMPOSITE_SMOKE_PROBES:
        result = indexed_engine.run(query)
        if not _plan_enters_index(result.plan):
            failures.append(
                "composite smoke: %s did not enter through the index"
                % query
            )
        reference = plain_engine.run(query)
        if not reference.table.same_bag(result.table):
            failures.append(
                "composite smoke: %s disagrees with the filter-only run"
                % query
            )
    indexed_engine.drop_index("A", "v", "name")
    for query in COMPOSITE_SMOKE_PROBES:
        result = indexed_engine.run(query)
        if _plan_enters_index(result.plan):
            failures.append(
                "composite smoke: %s still claims an index after drop"
                % query
            )
        reference = plain_engine.run(query)
        if not reference.table.same_bag(result.table):
            failures.append(
                "composite smoke: %s diverged after index drop" % query
            )


#: The reachability-maintenance smoke sequence: extend the :R chain,
#: close a cycle, then cut it — each reshaping the condensation the
#: declared reachability indexes maintain incrementally.
REACHABILITY_SMOKE_STATEMENTS = (
    "MATCH (a {name: 'node-4'}), (b {name: 'node-6'}) CREATE (a)-[:R]->(b)",
    "MATCH (a {name: 'node-6'}), (b {name: 'node-0'}) CREATE (a)-[:R]->(b)",
    "MATCH (a {name: 'node-4'})-[r:S]->(b {name: 'node-5'}) DELETE r",
)

#: Probe queries that must take the ReachabilityProbe access path on the
#: indexed clone and agree with a DFS-only run on a plain clone.
REACHABILITY_SMOKE_PROBES = (
    "MATCH (a {name: 'node-0'}), (b {name: 'node-6'}) "
    "MATCH (a)-[:R*]->(b) RETURN count(*) AS c",
    "MATCH (a {name: 'node-3'}), (b {name: 'node-1'}) "
    "MATCH (a)<-[:R*]-(b) RETURN count(*) AS c",
    "MATCH (a {name: 'node-0'}), (b {name: 'node-5'}) "
    "MATCH p = (a)-[*]->(b) RETURN length(p) AS len ORDER BY len LIMIT 3",
)


def _check_reachability_smoke(failures):
    """Create → mutate → probe against the reachability index.

    Mirrors the property-index smoke: probes must *prove* the probe
    path — the plan is walked for a ReachabilityProbe operator — and
    their results must match a DFS-only run on an unindexed clone, and
    the maintained condensation must equal a from-scratch rebuild after
    the mutations.
    """
    from repro.planner import logical as lg

    indexed = fixture_graph()
    indexed.create_reachability_index()
    indexed.create_reachability_index(["R"])
    plain = fixture_graph()
    indexed_engine = CypherEngine(indexed)
    plain_engine = CypherEngine(plain)
    for statement in REACHABILITY_SMOKE_STATEMENTS:
        indexed_engine.run(statement)
        plain_engine.run(statement)
    if graph_state(indexed) != graph_state(plain):
        failures.append(
            "reachability smoke: indexed and plain stores diverged"
        )
        return
    rebuilt = indexed.copy()
    for types in indexed.reachability_indexes():
        if indexed.reachability_snapshot(types) != (
            rebuilt.reachability_snapshot(types)
        ):
            failures.append(
                "reachability smoke: maintained index %r differs from a "
                "rebuild" % (types,)
            )
    for query in REACHABILITY_SMOKE_PROBES:
        result = indexed_engine.run(query)
        stack = [result.plan]
        hit = False
        while stack:
            op = stack.pop()
            if isinstance(op, lg.ReachabilityProbe):
                hit = True
            stack.extend(op._children())
        if not hit:
            failures.append(
                "reachability smoke: %s did not take the probe path" % query
            )
        reference = plain_engine.run(query)
        if not reference.table.same_bag(result.table):
            failures.append(
                "reachability smoke: %s disagrees with the DFS-only run"
                % query
            )


#: Session statements for the crash-recovery smoke: every mutation kind,
#: so a crash point lands in create, set, remove, delete and index
#: maintenance alike.
CRASH_SMOKE_STATEMENTS = (
    "UNWIND range(20, 24) AS i CREATE (:A {v: i, name: 'tx-' + toString(i)})",
    "MATCH (a:A) WHERE a.v >= 20 SET a.v = a.v + 100, a:Fresh",
    "MATCH (a:B) WITH a ORDER BY a.name LIMIT 2 REMOVE a.v",
    "MATCH (a:C) WITH a ORDER BY a.name LIMIT 1 DETACH DELETE a",
)


def _check_crash_recovery(failures):
    """Fault-injected sessions must leave a usable, unchanged engine.

    An injector arms one crash point at a time — first mutation, an
    interior site, then the commit flush itself.  Each crash aborts the
    session; afterwards the store **and** its index must equal an
    untouched indexed clone (state compared, index probed), and the
    engine must still run statements.
    """
    from repro.graph.store import FaultInjector, InjectedFault

    def fresh():
        graph = fixture_graph()
        graph.create_index("A", "v")
        return graph

    pristine_state = graph_state(fresh())
    pristine_index = fresh().index_statistics()

    counter = FaultInjector()
    graph = fresh()
    with CypherEngine(graph).session() as session:
        session.begin()
        previous = graph.install_fault_injector(counter)
        try:
            for statement in CRASH_SMOKE_STATEMENTS:
                session.run(statement)
            session.commit()
        finally:
            graph.install_fault_injector(previous)
    if counter.total == 0:
        failures.append("crash smoke: no fault sites reached")
        return

    # First site, a mid-transaction site, and the final (commit-flush).
    for ordinal in sorted({1, counter.total // 2, counter.total}):
        graph = fresh()
        engine = CypherEngine(graph)
        injector = FaultInjector(arm_at=ordinal)
        previous = graph.install_fault_injector(injector)
        crashed = False
        try:
            with engine.session() as session:
                session.begin()
                for statement in CRASH_SMOKE_STATEMENTS:
                    session.run(statement)
                session.commit()
        except InjectedFault:
            crashed = True
        finally:
            graph.install_fault_injector(previous)
        if not crashed:
            failures.append(
                "crash smoke: site %d did not fire (%d sites)"
                % (ordinal, counter.total)
            )
            continue
        if graph_state(graph) != pristine_state:
            failures.append(
                "crash smoke: store diverged after crash at site %d" % ordinal
            )
        if graph.index_statistics() != pristine_index:
            failures.append(
                "crash smoke: index diverged after crash at site %d" % ordinal
            )
        survivor = engine.run("MATCH (a:A) RETURN count(*) AS c")
        if list(survivor.table) != [{"c": 3}]:
            failures.append(
                "crash smoke: engine unusable after crash at site %d" % ordinal
            )


#: Macro smoke shape: tiny scale, short writer, hard wall-clock cap.
MACRO_SMOKE_SCALE = 0.01
MACRO_SMOKE_TXNS = 12
MACRO_SMOKE_BUDGET_S = 30.0


def _check_macro_smoke(failures):
    """Generate → ingest → concurrent mixed drive → differential.

    The end-to-end macro path: a scale-0.01 social dataset streams
    through the deferred-index CSV ingest (checked byte-identical to the
    direct emission), then the mixed read/write driver runs under a
    wall-clock budget, and the live store must equal a serial replay of
    the committed transaction log — with zero reader errors, snapshot
    invariant violations or version regressions.
    """
    import os
    import sys

    from repro.datasets import ldbc_social
    from repro.graph.ingest import ingest_csv
    from repro.graph.store import MemoryGraph

    benchmarks_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
        "benchmarks",
    )
    if not os.path.isdir(benchmarks_dir):
        failures.append("macro smoke: benchmarks/ not found (no driver)")
        return
    if benchmarks_dir not in sys.path:
        sys.path.insert(0, benchmarks_dir)
    from workload import MacroWorkload, dataset_handles, prepare, replay

    dataset = ldbc_social(scale=MACRO_SMOKE_SCALE, seed=0)
    graph = MemoryGraph()
    graph.create_index("Person", "id")
    graph.create_reachability_index(["KNOWS"])
    ingest_csv(
        graph,
        [(t.name + ".csv", list(dataset.csv_lines(t)))
         for t in dataset.tables],
    )
    if graph_state(graph) != graph_state(dataset.to_graph()):
        failures.append("macro smoke: CSV ingest diverged from emission")
        return
    engine = CypherEngine(graph)
    prepare(engine)
    baseline = graph.copy()
    driver = MacroWorkload(
        engine, *dataset_handles(dataset),
        update_txns=MACRO_SMOKE_TXNS, readers=2,
        budget_s=MACRO_SMOKE_BUDGET_S, seed=0,
    )
    result = driver.run()
    for error in result.errors:
        failures.append("macro smoke: driver error %s" % error)
    for violation in result.invariant_failures:
        failures.append("macro smoke: snapshot invariant %s" % violation)
    for regression in result.version_regressions:
        failures.append(
            "macro smoke: snapshot version regressed %r" % (regression,)
        )
    if result.committed == 0:
        failures.append("macro smoke: writer never committed")
        return
    replayed = replay(CypherEngine(baseline), result.committed_log)
    if graph_state(replayed) != graph_state(engine.graph):
        failures.append(
            "macro smoke: serial replay diverged from the concurrent store"
        )
    return result


def run_selftest(output=print):
    """Run the whole suite; returns the number of failures."""
    failures = []
    graph = fixture_graph()
    for query in READ_CORPUS:
        _check_read(query, graph, failures)
    output(
        "differential reads:   %2d queries x %d modes"
        % (len(READ_CORPUS), len(_MODES))
    )
    for query in READ_CORPUS:
        _check_parallel(query, graph, failures)
    output(
        "parallel smoke:       %2d queries x %d worker configs "
        "(records compared)"
        % (len(READ_CORPUS), len(PARALLEL_SMOKE_CONFIGS))
    )
    for query in UPDATE_CORPUS:
        _check_update(query, graph, failures)
    output(
        "differential updates: %2d queries x %d modes (stores compared)"
        % (len(UPDATE_CORPUS), len(_MODES))
    )
    _check_index_smoke(failures)
    output(
        "index maintenance:    %2d statements, %d index-proven probes"
        % (len(INDEX_SMOKE_STATEMENTS), len(INDEX_SMOKE_PROBES))
    )
    _check_composite_index_smoke(failures)
    output(
        "composite indexes:    %2d statements, %d probes + drop re-plan"
        % (len(COMPOSITE_SMOKE_STATEMENTS), len(COMPOSITE_SMOKE_PROBES))
    )
    _check_reachability_smoke(failures)
    output(
        "reachability probes:  %2d statements, %d probe-proven queries"
        % (len(REACHABILITY_SMOKE_STATEMENTS), len(REACHABILITY_SMOKE_PROBES))
    )
    _check_crash_recovery(failures)
    output(
        "crash recovery:       %2d statements, faults at first/mid/commit "
        "sites" % len(CRASH_SMOKE_STATEMENTS)
    )
    before_macro = len(failures)
    macro = _check_macro_smoke(failures)
    output(
        "macro workload:       scale %.2f ingest + %s txns committed, "
        "%s reads, replay %s"
        % (
            MACRO_SMOKE_SCALE,
            macro.committed if macro else "no",
            macro.reads if macro else 0,
            "matched" if macro and len(failures) == before_macro
            else "DIVERGED",
        )
    )

    from repro.tck import TckRunner
    from repro.tck.scenarios import ALL_FEATURES

    scenario_count = 0
    for name in TCK_SMOKE:
        try:
            feature = TckRunner().run_feature(ALL_FEATURES[name])
        except AssertionError as error:
            failures.append("tck %s: %s" % (name, error))
        else:
            scenario_count += len(feature.scenarios)
    output(
        "tck smoke set:        %2d scenarios over %s"
        % (scenario_count, ", ".join(TCK_SMOKE))
    )

    for failure in failures:
        output("FAIL: %s" % failure)
    output(
        "selftest %s (%d failure%s)"
        % (
            "passed" if not failures else "FAILED",
            len(failures),
            "" if len(failures) == 1 else "s",
        )
    )
    return len(failures)
