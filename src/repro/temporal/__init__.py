"""Cypher 10 temporal types (paper Section 6, "Temporal types").

The proposal the paper cites (CIP2015-08-06 date-time) specifies five
temporal instant types — DateTime, LocalDateTime, Date, Time, LocalTime —
and a Duration type.  These plug into the value universe V through the
small duck-typed protocol the rest of the engine understands
(``cypher_type_name``, ``cypher_order_key``, ``cypher_component``,
``cypher_equals`` / ``cypher_compare``, and the arithmetic hooks).
"""

from repro.temporal.types import (
    Date,
    DateTime,
    Duration,
    LocalDateTime,
    LocalTime,
    Time,
)

__all__ = ["Date", "Time", "LocalTime", "DateTime", "LocalDateTime", "Duration"]
