"""Implementations of the six temporal types of the Cypher 10 CIP.

Instants are stored on top of :mod:`datetime` with nanosecond extensions
where the CIP requires them; Duration is the CIP's four-component
(months, days, seconds, nanoseconds) value, which deliberately does *not*
normalize months into days (a month is not a fixed number of days).

Supported arithmetic (via the engine's ``cypher_add`` etc. hooks):

* instant + duration, instant - duration (both orders for +);
* duration + duration, duration - duration, duration * number;
* comparisons within each instant type; durations compare by their
  canonical (months, days, seconds, nanoseconds) tuple.
"""

from __future__ import annotations

import datetime as _dt
import re

from repro.exceptions import CypherTypeError

_NANOS_PER_SECOND = 1_000_000_000
_SECONDS_PER_DAY = 86_400


def _pad_fraction(digits):
    return int(digits.ljust(9, "0")[:9])


class _Temporal:
    """Shared protocol glue for the temporal values."""

    cypher_type_name = "Temporal"

    def cypher_equals(self, other):
        if type(other) is not type(self):
            return False
        return self.cypher_order_key() == other.cypher_order_key()

    def cypher_compare(self, other):
        if type(other) is not type(self):
            return None
        ours, theirs = self.cypher_order_key(), other.cypher_order_key()
        return (ours > theirs) - (ours < theirs)

    def __eq__(self, other):
        return self.cypher_equals(other) is True

    def __hash__(self):
        return hash((type(self).__name__, self.cypher_order_key()))

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.cypher_to_string())

    def cypher_component(self, key):
        getter = getattr(self, "component_" + key, None)
        if getter is None:
            return None
        return getter()


class Date(_Temporal):
    """A calendar date: year, month, day."""

    cypher_type_name = "Date"
    __slots__ = ("_date",)

    def __init__(self, year, month, day):
        self._date = _dt.date(year, month, day)

    @classmethod
    def parse(cls, text):
        match = re.fullmatch(r"(\d{4})-(\d{2})-(\d{2})", text.strip())
        if not match:
            raise CypherTypeError("cannot parse Date from %r" % text)
        return cls(int(match.group(1)), int(match.group(2)), int(match.group(3)))

    @classmethod
    def from_map(cls, components):
        try:
            return cls(
                components["year"],
                components.get("month", 1),
                components.get("day", 1),
            )
        except KeyError as missing:
            raise CypherTypeError("date() map needs %s" % missing)

    def cypher_order_key(self):
        return self._date.toordinal()

    def cypher_to_string(self):
        return self._date.isoformat()

    def component_year(self):
        return self._date.year

    def component_month(self):
        return self._date.month

    def component_day(self):
        return self._date.day

    def component_dayOfWeek(self):
        return self._date.isoweekday()

    def component_epochDays(self):
        return self._date.toordinal() - _dt.date(1970, 1, 1).toordinal()

    def cypher_add(self, other):
        if isinstance(other, Duration):
            return _shift_date(self, other)
        return NotImplemented

    def cypher_radd(self, other):
        if isinstance(other, Duration):
            return _shift_date(self, other)
        return NotImplemented

    def cypher_subtract(self, other):
        if isinstance(other, Duration):
            return _shift_date(self, other.cypher_negate())
        return NotImplemented


class LocalTime(_Temporal):
    """A time of day without a timezone; nanosecond precision."""

    cypher_type_name = "LocalTime"
    __slots__ = ("nanos_of_day",)

    def __init__(self, hour=0, minute=0, second=0, nanosecond=0):
        if not (0 <= hour < 24 and 0 <= minute < 60 and 0 <= second < 60):
            raise CypherTypeError("invalid time components")
        if not 0 <= nanosecond < _NANOS_PER_SECOND:
            raise CypherTypeError("invalid nanosecond component")
        object.__setattr__(
            self,
            "nanos_of_day",
            ((hour * 60 + minute) * 60 + second) * _NANOS_PER_SECOND + nanosecond,
        )

    def __setattr__(self, name, value):
        raise AttributeError("temporal values are immutable")

    _PATTERN = re.compile(r"(\d{2}):(\d{2})(?::(\d{2})(?:\.(\d{1,9}))?)?")

    @classmethod
    def parse(cls, text):
        match = cls._PATTERN.fullmatch(text.strip())
        if not match:
            raise CypherTypeError("cannot parse LocalTime from %r" % text)
        return cls(
            int(match.group(1)),
            int(match.group(2)),
            int(match.group(3) or 0),
            _pad_fraction(match.group(4) or ""),
        )

    @classmethod
    def from_map(cls, components):
        return cls(
            components.get("hour", 0),
            components.get("minute", 0),
            components.get("second", 0),
            components.get("nanosecond", 0)
            + components.get("millisecond", 0) * 1_000_000
            + components.get("microsecond", 0) * 1_000,
        )

    @classmethod
    def _from_nanos(cls, nanos):
        nanos %= _SECONDS_PER_DAY * _NANOS_PER_SECOND
        second, nanosecond = divmod(nanos, _NANOS_PER_SECOND)
        minute, second = divmod(second, 60)
        hour, minute = divmod(minute, 60)
        return cls(hour, minute, second, nanosecond)

    def cypher_order_key(self):
        return self.nanos_of_day

    def cypher_to_string(self):
        second, nanos = divmod(self.nanos_of_day, _NANOS_PER_SECOND)
        minute, second = divmod(second, 60)
        hour, minute = divmod(minute, 60)
        text = "%02d:%02d:%02d" % (hour, minute, second)
        if nanos:
            text += (".%09d" % nanos).rstrip("0")
        return text

    def component_hour(self):
        return self.nanos_of_day // (3600 * _NANOS_PER_SECOND)

    def component_minute(self):
        return (self.nanos_of_day // (60 * _NANOS_PER_SECOND)) % 60

    def component_second(self):
        return (self.nanos_of_day // _NANOS_PER_SECOND) % 60

    def component_millisecond(self):
        return (self.nanos_of_day % _NANOS_PER_SECOND) // 1_000_000

    def component_nanosecond(self):
        return self.nanos_of_day % _NANOS_PER_SECOND

    def cypher_add(self, other):
        if isinstance(other, Duration):
            return LocalTime._from_nanos(
                self.nanos_of_day + other.as_time_nanos()
            )
        return NotImplemented

    def cypher_radd(self, other):
        return self.cypher_add(other)

    def cypher_subtract(self, other):
        if isinstance(other, Duration):
            return LocalTime._from_nanos(
                self.nanos_of_day - other.as_time_nanos()
            )
        return NotImplemented


class Time(_Temporal):
    """A time of day with a UTC offset (seconds east of Greenwich)."""

    cypher_type_name = "Time"
    __slots__ = ("local", "offset_seconds")

    def __init__(self, hour=0, minute=0, second=0, nanosecond=0, offset_seconds=0):
        object.__setattr__(self, "local", LocalTime(hour, minute, second, nanosecond))
        object.__setattr__(self, "offset_seconds", offset_seconds)

    def __setattr__(self, name, value):
        raise AttributeError("temporal values are immutable")

    @classmethod
    def parse(cls, text):
        text = text.strip()
        local_part, offset = _split_offset(text)
        local = LocalTime.parse(local_part)
        time = cls.__new__(cls)
        object.__setattr__(time, "local", local)
        object.__setattr__(time, "offset_seconds", offset)
        return time

    @classmethod
    def from_map(cls, components):
        local = LocalTime.from_map(components)
        offset = _offset_from_map(components)
        time = cls.__new__(cls)
        object.__setattr__(time, "local", local)
        object.__setattr__(time, "offset_seconds", offset)
        return time

    def cypher_order_key(self):
        return (
            self.local.nanos_of_day
            - self.offset_seconds * _NANOS_PER_SECOND
        )

    def cypher_to_string(self):
        return self.local.cypher_to_string() + _format_offset(self.offset_seconds)

    def cypher_component(self, key):
        if key == "offsetSeconds":
            return self.offset_seconds
        return self.local.cypher_component(key)

    def cypher_add(self, other):
        if isinstance(other, Duration):
            shifted = self.local.cypher_add(other)
            time = Time.__new__(Time)
            object.__setattr__(time, "local", shifted)
            object.__setattr__(time, "offset_seconds", self.offset_seconds)
            return time
        return NotImplemented

    def cypher_radd(self, other):
        return self.cypher_add(other)

    def cypher_subtract(self, other):
        if isinstance(other, Duration):
            return self.cypher_add(other.cypher_negate())
        return NotImplemented


class LocalDateTime(_Temporal):
    """A date and time of day, no timezone."""

    cypher_type_name = "LocalDateTime"
    __slots__ = ("date", "time")

    def __init__(self, year, month, day, hour=0, minute=0, second=0, nanosecond=0):
        object.__setattr__(self, "date", Date(year, month, day))
        object.__setattr__(self, "time", LocalTime(hour, minute, second, nanosecond))

    def __setattr__(self, name, value):
        raise AttributeError("temporal values are immutable")

    @classmethod
    def parse(cls, text):
        text = text.strip()
        if "T" not in text:
            raise CypherTypeError("cannot parse LocalDateTime from %r" % text)
        date_part, time_part = text.split("T", 1)
        date = Date.parse(date_part)
        time = LocalTime.parse(time_part)
        return cls._combine(date, time)

    @classmethod
    def from_map(cls, components):
        return cls._combine(Date.from_map(components), LocalTime.from_map(components))

    @classmethod
    def _combine(cls, date, time):
        value = cls.__new__(cls)
        object.__setattr__(value, "date", date)
        object.__setattr__(value, "time", time)
        return value

    def cypher_order_key(self):
        return (
            self.date.cypher_order_key() * _SECONDS_PER_DAY * _NANOS_PER_SECOND
            + self.time.nanos_of_day
        )

    def cypher_to_string(self):
        return self.date.cypher_to_string() + "T" + self.time.cypher_to_string()

    def cypher_component(self, key):
        value = self.date.cypher_component(key)
        if value is None:
            value = self.time.cypher_component(key)
        return value

    def cypher_add(self, other):
        if isinstance(other, Duration):
            return _shift_local_datetime(self, other)
        return NotImplemented

    def cypher_radd(self, other):
        return self.cypher_add(other)

    def cypher_subtract(self, other):
        if isinstance(other, Duration):
            return _shift_local_datetime(self, other.cypher_negate())
        return NotImplemented


class DateTime(_Temporal):
    """A LocalDateTime plus a UTC offset."""

    cypher_type_name = "DateTime"
    __slots__ = ("local", "offset_seconds")

    def __init__(
        self, year, month, day, hour=0, minute=0, second=0, nanosecond=0,
        offset_seconds=0,
    ):
        object.__setattr__(
            self,
            "local",
            LocalDateTime(year, month, day, hour, minute, second, nanosecond),
        )
        object.__setattr__(self, "offset_seconds", offset_seconds)

    def __setattr__(self, name, value):
        raise AttributeError("temporal values are immutable")

    @classmethod
    def parse(cls, text):
        text = text.strip()
        if "T" not in text:
            raise CypherTypeError("cannot parse DateTime from %r" % text)
        date_part, time_part = text.split("T", 1)
        time_text, offset = _split_offset(time_part)
        local = LocalDateTime._combine(
            Date.parse(date_part), LocalTime.parse(time_text)
        )
        return cls._combine(local, offset)

    @classmethod
    def from_map(cls, components):
        return cls._combine(
            LocalDateTime.from_map(components), _offset_from_map(components)
        )

    @classmethod
    def _combine(cls, local, offset_seconds):
        value = cls.__new__(cls)
        object.__setattr__(value, "local", local)
        object.__setattr__(value, "offset_seconds", offset_seconds)
        return value

    def cypher_order_key(self):
        return (
            self.local.cypher_order_key()
            - self.offset_seconds * _NANOS_PER_SECOND
        )

    def cypher_to_string(self):
        return self.local.cypher_to_string() + _format_offset(self.offset_seconds)

    def cypher_component(self, key):
        if key == "offsetSeconds":
            return self.offset_seconds
        if key == "epochSeconds":
            return self.cypher_order_key() // _NANOS_PER_SECOND - (
                _dt.date(1970, 1, 1).toordinal() * _SECONDS_PER_DAY
            )
        return self.local.cypher_component(key)

    def cypher_add(self, other):
        if isinstance(other, Duration):
            return DateTime._combine(
                self.local.cypher_add(other), self.offset_seconds
            )
        return NotImplemented

    def cypher_radd(self, other):
        return self.cypher_add(other)

    def cypher_subtract(self, other):
        if isinstance(other, Duration):
            return DateTime._combine(
                self.local.cypher_subtract(other), self.offset_seconds
            )
        return NotImplemented


class Duration(_Temporal):
    """The CIP's four-component duration.

    Months and days are kept separate from seconds because their length
    varies by calendar context — the reason the CIP rejects normalizing.
    """

    cypher_type_name = "Duration"
    __slots__ = ("months", "days", "seconds", "nanoseconds")

    def __init__(self, months=0, days=0, seconds=0, nanoseconds=0):
        extra_seconds, nanoseconds = divmod(int(nanoseconds), _NANOS_PER_SECOND)
        object.__setattr__(self, "months", int(months))
        object.__setattr__(self, "days", int(days))
        object.__setattr__(self, "seconds", int(seconds) + extra_seconds)
        object.__setattr__(self, "nanoseconds", nanoseconds)

    def __setattr__(self, name, value):
        raise AttributeError("temporal values are immutable")

    _PATTERN = re.compile(
        r"(?P<sign>-)?P"
        r"(?:(?P<years>\d+)Y)?"
        r"(?:(?P<months>\d+)M)?"
        r"(?:(?P<weeks>\d+)W)?"
        r"(?:(?P<days>\d+)D)?"
        r"(?:T"
        r"(?:(?P<hours>\d+)H)?"
        r"(?:(?P<minutes>\d+)M)?"
        r"(?:(?P<secs>\d+(?:\.\d{1,9})?)S)?"
        r")?"
    )

    @classmethod
    def parse(cls, text):
        match = cls._PATTERN.fullmatch(text.strip())
        if not match or match.group(0) in ("P", "-P"):
            raise CypherTypeError("cannot parse Duration from %r" % text)
        months = int(match.group("years") or 0) * 12 + int(match.group("months") or 0)
        days = int(match.group("weeks") or 0) * 7 + int(match.group("days") or 0)
        seconds = int(match.group("hours") or 0) * 3600
        seconds += int(match.group("minutes") or 0) * 60
        nanos = 0
        secs_text = match.group("secs")
        if secs_text:
            if "." in secs_text:
                whole, fraction = secs_text.split(".")
                seconds += int(whole)
                nanos = _pad_fraction(fraction)
            else:
                seconds += int(secs_text)
        sign = -1 if match.group("sign") else 1
        return cls(sign * months, sign * days, sign * seconds, sign * nanos)

    @classmethod
    def from_map(cls, components):
        months = (
            components.get("years", 0) * 12 + components.get("months", 0)
        )
        days = components.get("weeks", 0) * 7 + components.get("days", 0)
        seconds = (
            components.get("hours", 0) * 3600
            + components.get("minutes", 0) * 60
            + components.get("seconds", 0)
        )
        nanos = (
            components.get("nanoseconds", 0)
            + components.get("milliseconds", 0) * 1_000_000
            + components.get("microseconds", 0) * 1_000
        )
        return cls(months, days, seconds, nanos)

    def cypher_order_key(self):
        return (self.months, self.days, self.seconds, self.nanoseconds)

    def cypher_to_string(self):
        years, months = divmod(abs(self.months), 12)
        sign = "-" if (self.months, self.days, self.seconds) < (0, 0, 0) else ""
        parts = ["P"]
        if years:
            parts.append("%dY" % years)
        if months:
            parts.append("%dM" % months)
        if self.days:
            parts.append("%dD" % abs(self.days))
        total_seconds = abs(self.seconds)
        hours, rem = divmod(total_seconds, 3600)
        minutes, secs = divmod(rem, 60)
        if hours or minutes or secs or self.nanoseconds or len(parts) == 1:
            parts.append("T")
            if hours:
                parts.append("%dH" % hours)
            if minutes:
                parts.append("%dM" % minutes)
            if self.nanoseconds:
                parts.append(
                    ("%d.%09d" % (secs, self.nanoseconds)).rstrip("0") + "S"
                )
            elif secs or parts[-1] == "T":
                parts.append("%dS" % secs)
        return sign + "".join(parts)

    def cypher_component(self, key):
        simple = {
            "years": self.months // 12,
            "months": self.months,
            "monthsOfYear": self.months % 12,
            "days": self.days,
            "hours": self.seconds // 3600,
            "minutes": self.seconds // 60,
            "seconds": self.seconds,
            "nanoseconds": self.nanoseconds,
        }
        return simple.get(key)

    def as_time_nanos(self):
        """Seconds+nanos as nanoseconds (months/days have no fixed length)."""
        if self.months or self.days:
            raise CypherTypeError(
                "cannot apply a duration with calendar components to a time"
            )
        return self.seconds * _NANOS_PER_SECOND + self.nanoseconds

    def cypher_negate(self):
        return Duration(-self.months, -self.days, -self.seconds, -self.nanoseconds)

    def cypher_add(self, other):
        if isinstance(other, Duration):
            return Duration(
                self.months + other.months,
                self.days + other.days,
                self.seconds + other.seconds,
                self.nanoseconds + other.nanoseconds,
            )
        if isinstance(other, (Date, Time, LocalTime, DateTime, LocalDateTime)):
            return other.cypher_add(self)
        return NotImplemented

    def cypher_radd(self, other):
        return self.cypher_add(other)

    def cypher_subtract(self, other):
        if isinstance(other, Duration):
            return self.cypher_add(other.cypher_negate())
        return NotImplemented

    def cypher_multiply(self, factor):
        if isinstance(factor, bool) or not isinstance(factor, (int, float)):
            return NotImplemented
        total_nanos = (self.seconds * _NANOS_PER_SECOND + self.nanoseconds) * factor
        return Duration(
            int(self.months * factor),
            int(self.days * factor),
            0,
            int(total_nanos),
        )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _split_offset(text):
    if text.endswith("Z") or text.endswith("z"):
        return text[:-1], 0
    match = re.search(r"([+-])(\d{2}):?(\d{2})$", text)
    if match:
        sign = 1 if match.group(1) == "+" else -1
        offset = sign * (int(match.group(2)) * 3600 + int(match.group(3)) * 60)
        return text[: match.start()], offset
    return text, 0


def _offset_from_map(components):
    if "offsetSeconds" in components:
        return components["offsetSeconds"]
    if "timezone" in components:
        _ignored, offset = _split_offset("00:00" + components["timezone"])
        return offset
    return 0


def _format_offset(offset_seconds):
    if offset_seconds == 0:
        return "Z"
    sign = "+" if offset_seconds > 0 else "-"
    magnitude = abs(offset_seconds)
    return "%s%02d:%02d" % (sign, magnitude // 3600, (magnitude % 3600) // 60)


def _shift_date(date, duration):
    base = _dt.date(
        date.component_year(), date.component_month(), date.component_day()
    )
    shifted = _add_months(base, duration.months)
    shifted += _dt.timedelta(days=duration.days)
    extra_days, _leftover = divmod(
        duration.seconds * _NANOS_PER_SECOND + duration.nanoseconds,
        _SECONDS_PER_DAY * _NANOS_PER_SECOND,
    )
    shifted += _dt.timedelta(days=extra_days)
    return Date(shifted.year, shifted.month, shifted.day)


def _shift_local_datetime(value, duration):
    date = value.date
    base = _dt.date(
        date.component_year(), date.component_month(), date.component_day()
    )
    shifted_date = _add_months(base, duration.months) + _dt.timedelta(
        days=duration.days
    )
    nanos = (
        value.time.nanos_of_day
        + duration.seconds * _NANOS_PER_SECOND
        + duration.nanoseconds
    )
    extra_days, nanos = divmod(nanos, _SECONDS_PER_DAY * _NANOS_PER_SECOND)
    shifted_date += _dt.timedelta(days=extra_days)
    return LocalDateTime._combine(
        Date(shifted_date.year, shifted_date.month, shifted_date.day),
        LocalTime._from_nanos(nanos),
    )


def _add_months(base, months):
    if not months:
        return base
    month_index = base.year * 12 + (base.month - 1) + months
    year, month0 = divmod(month_index, 12)
    day = min(base.day, _days_in_month(year, month0 + 1))
    return _dt.date(year, month0 + 1, day)


def _days_in_month(year, month):
    if month == 12:
        return 31
    first = _dt.date(year, month, 1)
    next_first = _dt.date(year + (month == 12), month % 12 + 1, 1)
    return (next_first - first).days
