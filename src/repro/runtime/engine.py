"""The CypherEngine facade."""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import (
    ConstraintViolation,
    EngineOverloadedError,
    TransactionError,
    UnsupportedFeature,
)
from repro.graph.catalog import GraphCatalog
from repro.graph.store import MemoryGraph
from repro.parser import parse_query
from repro.runtime.cancel import Cancellation
from repro.runtime.result import QueryResult
from repro.semantics.analysis import check_query
from repro.semantics.morphism import EDGE_ISOMORPHISM
from repro.semantics.query import QueryState, run_query

_MODES = ("auto", "interpreter", "planner", "row", "batch", "parallel")

#: Modes that run (or may run) the slotted planner.
_PLANNER_MODES = ("auto", "planner", "row", "batch", "parallel")


def _is_updating(query):
    """True if any clause of the query mutates the graph."""
    from repro.ast import clauses as cl
    from repro.ast import queries as qu

    if isinstance(query, qu.UnionQuery):
        return _is_updating(query.left) or _is_updating(query.right)
    updating = (cl.Create, cl.Delete, cl.SetClause, cl.RemoveClause, cl.Merge)
    return any(isinstance(clause, updating) for clause in query.clauses)


class CypherEngine:
    """Runs Cypher queries against a property graph (or graph catalog).

    Parameters
    ----------
    graph:
        The default property graph; a fresh empty :class:`MemoryGraph`
        if omitted.
    catalog:
        Optional :class:`GraphCatalog` for Cypher 10 multi-graph queries;
        one is created around ``graph`` by default.
    mode:
        ``"auto"`` (planner with interpreter fallback), ``"interpreter"``
        or ``"planner"`` (planner required).  Two more planner modes pin
        the *execution* strategy for differential testing: ``"row"``
        forces tuple-at-a-time execution, ``"batch"`` is like
        ``"planner"`` but exists to state the intent explicitly — batch
        execution is the default wherever the batch engine claims the
        plan (reads whose operators all have batch implementations, on a
        store with bulk scan APIs); write plans and their Eager barriers
        always run row-wise.
    morphism:
        Pattern-matching semantics; Cypher 9's edge isomorphism unless
        overridden (Section 8's configurable morphisms).
    morsel_size:
        Rows per batch on the vectorised path (default
        :data:`~repro.planner.batch.DEFAULT_MORSEL_SIZE`).
    workers:
        Worker count for parallel morsel execution (default 1 —
        serial).  With more than one worker, ``auto`` mode fans
        parallel-claimed read plans out across a scheduler whenever the
        cost model estimates the source scan above
        ``parallel_threshold`` rows; ``mode="parallel"`` pins the
        exchange regardless of size (for differential testing, like
        ``"row"`` and ``"batch"``).
    scheduler:
        Scheduler backend for parallel execution: ``"thread"``,
        ``"serial"``, a :class:`~repro.runtime.scheduler.Scheduler`
        instance, or None to pick by worker count.
    parallel_threshold:
        Minimum *estimated* source-scan rows before ``auto`` mode
        parallelises (default :data:`~repro.planner.parallel.
        DEFAULT_PARALLEL_THRESHOLD`); small inputs stay serial because
        fan-out cost would dominate.
    max_sessions:
        The admission gate: at most this many sessions in flight at
        once (default 32).
    admission_timeout:
        Seconds a :meth:`session` waits (queued on the gate) for a slot
        before :class:`EngineOverloadedError`; 0 (the default) refuses
        immediately when the engine is full.
    """

    def __init__(
        self,
        graph=None,
        catalog=None,
        mode="auto",
        morphism=EDGE_ISOMORPHISM,
        functions=None,
        rewrite=True,
        schema=None,
        morsel_size=None,
        workers=None,
        scheduler=None,
        parallel_threshold=None,
        max_sessions=32,
        admission_timeout=0.0,
    ):
        if mode not in _MODES:
            raise ValueError("mode must be one of %r" % (_MODES,))
        self.graph = graph if graph is not None else MemoryGraph()
        self.catalog = catalog if catalog is not None else GraphCatalog(self.graph)
        self.mode = mode
        self.morphism = morphism
        self.functions = functions
        self.rewrite = rewrite
        self.schema = schema
        self.morsel_size = morsel_size
        self.workers = max(1, int(workers)) if workers else 1
        self.scheduler = scheduler
        self.parallel_threshold = parallel_threshold
        self.max_sessions = max_sessions
        self.admission_timeout = admission_timeout
        #: Bounded admission: sessions acquire a slot on first use and
        #: queue (up to ``admission_timeout``) when the engine is full.
        self._admission = threading.BoundedSemaphore(max_sessions)
        #: Bounded LRU of compiled plans: query text ->
        #: (graph id, version, stats_sensitive, plan, updating).  Plans
        #: embed no graph data (operators re-read the store at run
        #: time), so a stale hit would still be correct — the version
        #: key exists because plan *choices* (entry labels, chain order)
        #: come from statistics.  Plans the cost model had no real
        #: choice on (``stats_sensitive`` False) survive store
        #: mutations, so parameterised re-runs keep their plan across
        #: graph versions.  Update plans are cached too: a write
        #: statement bumps the version exactly once (at its store
        #: transaction's commit), and the engine re-stamps the
        #: statement's own cache entry afterwards, so a self-inflicted
        #: bump never evicts the plan that caused it.
        self._plan_cache = OrderedDict()
        #: Plan-cache hit/miss counters (observable via explain_info):
        #: a hit skips parsing, analysis, rewriting and planning.
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------

    def run(
        self,
        query_text,
        parameters=None,
        mode=None,
        profile=False,
        timeout=None,
        deadline=None,
        cancel=None,
        read_only=False,
    ):
        """Parse and execute ``query_text``; returns a QueryResult.

        With ``profile=True`` a planned execution additionally records
        every scan operator's access path — chosen entry (index vs label
        scan), estimated and actual rows — in
        :attr:`QueryResult.access_paths`.  Profiling adds a per-row
        counter to the scans, so it is off by default.

        ``timeout`` (seconds) / ``deadline`` (absolute
        :func:`time.monotonic` timestamp) / ``cancel`` (a
        :class:`~repro.runtime.cancel.CancelToken`) interrupt the
        statement cooperatively: the row engine checks between rows,
        the batch engine at morsel boundaries, and an interrupted
        *write* rolls back atomically before
        :class:`~repro.exceptions.QueryTimeout` /
        :class:`~repro.exceptions.QueryCancelled` propagates.  The
        reference interpreter only checks the deadline at statement
        boundaries (it has no operator loop to thread checks through).

        ``read_only=True`` refuses updating statements with
        :class:`TransactionError` — the guard snapshot readers run
        under.
        """
        mode = mode or self.mode
        access_log = [] if profile else None
        cancellation = Cancellation.build(timeout, deadline, cancel)
        if cancellation is not None:
            # Up-front check: an already-expired deadline or
            # pre-cancelled token refuses before any work — the strided
            # in-flight checks would let a short statement slip through.
            cancellation.poll()
        if mode in _PLANNER_MODES:
            cached = self._cached_plan(query_text)
            if cached is not None:
                plan, updating = cached
                self._check_read_only(updating, read_only)
                return self._execute_planned(
                    query_text, plan, parameters, updating, mode, access_log,
                    cancellation,
                )
        query = parse_query(query_text)
        check_query(query)
        if self.rewrite:
            from repro.rewriter import rewrite_query

            query = rewrite_query(query)
        updating = _is_updating(query)
        self._check_read_only(updating, read_only)
        if mode == "interpreter":
            if cancellation is not None:
                cancellation.poll()
            return self._run_interpreted(
                query, parameters, updating, reason="mode=interpreter"
            )
        from repro.planner import plan_query

        try:
            plan = plan_query(query, self.graph, morphism=self.morphism)
        except UnsupportedFeature as unsupported:
            if mode != "auto":
                raise
            if cancellation is not None:
                cancellation.poll()
            return self._run_interpreted(
                query, parameters, updating, reason=str(unsupported)
            )
        self._remember_plan(query_text, plan, updating)
        return self._execute_planned(
            query_text, plan, parameters, updating, mode, access_log,
            cancellation,
        )

    @staticmethod
    def _check_read_only(updating, read_only):
        if updating and read_only:
            raise TransactionError(
                "updating statements are not allowed on a read-only view"
            )

    # -- sessions --------------------------------------------------------

    def session(self, timeout=None):
        """A transactional :class:`~repro.runtime.session.Session`.

        Use as a context manager; ``timeout`` becomes the default
        per-statement timeout for every :meth:`Session.run`.  The
        session occupies one admission slot (see ``max_sessions``) from
        first use until close.
        """
        from repro.runtime.session import Session

        return Session(self, default_timeout=timeout)

    def _admit_session(self):
        if not self._admission.acquire(timeout=self.admission_timeout):
            raise EngineOverloadedError(
                "engine is at its %d in-flight session limit; "
                "retry later or raise max_sessions" % self.max_sessions
            )

    def _release_session(self):
        self._admission.release()

    # ------------------------------------------------------------------

    def create_index(self, label, *keys):
        """Declare a ``(label, k1, k2, …)`` property index on the graph.

        One key declares the classic single-column index; several keys
        declare a composite index over the key tuple, in order (the
        order is the index's sort order — it decides which ORDER BY
        clauses the index can provide).  Returns True when the index is
        new.  The store builds it once and maintains it incrementally
        from then on; the version bump it causes makes the next lookup
        of any statistics-sensitive cached plan re-plan against the new
        access path.
        """
        return self.graph.create_index(label, *keys)

    def drop_index(self, label, *keys):
        """Drop a property index; returns True when one existed."""
        if len(keys) == 1:
            return self.graph.drop_index(label, keys[0])
        return self.graph.drop_index(label, keys)

    def create_reachability_index(self, types=None):
        """Declare a reachability index over a relationship-type set.

        ``types`` is an iterable of type names (None = all types).
        Returns True when the index is new; unbounded var-length
        traversals into a bound endpoint compile to index probes from
        the next (re)plan on.
        """
        return self.graph.create_reachability_index(types)

    def drop_reachability_index(self, types=None):
        """Drop a reachability index; returns True when one existed."""
        return self.graph.drop_reachability_index(types)

    def ingest(self, sources, batch_size=1000, defer_indexes=True):
        """Bulk-load CSV tables into the default graph.

        ``sources`` is a directory path, file paths, or ``(name,
        lines)`` pairs — see :func:`repro.graph.ingest.ingest_csv`.
        Rows batch through the store's bulk create paths inside one
        rollback-exact transaction; with ``defer_indexes`` the declared
        property/reachability indexes are rebuilt once at ingest end
        instead of being maintained per row.  Returns the
        :class:`~repro.graph.ingest.IngestReport`.
        """
        from repro.graph.ingest import ingest_csv

        return ingest_csv(
            self.graph, sources,
            batch_size=batch_size, defer_indexes=defer_indexes,
        )

    def _plan_for_explain(self, query_text):
        """``(plan, updating)`` through :meth:`run`'s exact pipeline."""
        from repro.planner import plan_query

        query = parse_query(query_text)
        if self.rewrite:
            from repro.rewriter import rewrite_query

            query = rewrite_query(query)
        plan = plan_query(query, self.graph, morphism=self.morphism)
        return plan, _is_updating(query)

    def explain(self, query_text):
        """The physical plan the planner would run, as indented text.

        Mirrors :meth:`run`'s pipeline (including the rewriter), so the
        reported plan is the one a run would actually cache and execute.
        """
        plan, _updating = self._plan_for_explain(query_text)
        return plan.describe()

    def explain_info(self, query_text):
        """``(executed_by, fallback_reason, plan_text, cache_info, mode)``.

        ``executed_by`` is ``"planner"`` with the plan tree — update
        queries included, with their ``Eager`` barriers and write
        operators rendered — or ``"interpreter"`` with the reason the
        planner refused (only the Cypher 10 graph clauses remain).
        ``cache_info`` carries this engine's plan-cache hit/miss
        counters and hit rate, which is how the "a write invalidates
        its own plan once per execution, not once per clause" contract
        is observable.  ``mode`` is the execution strategy a run would
        pick — ``"batch"`` (vectorised morsels over slot columns) or
        ``"row"`` — and None on the interpreter path.  Nothing is
        executed.
        """
        cache_info = self.plan_cache_info()
        try:
            plan, updating = self._plan_for_explain(query_text)
        except UnsupportedFeature as unsupported:
            return ("interpreter", str(unsupported), None, cache_info, None)
        # Respect a pinned engine mode: a :mode row session must see the
        # strategy its runs will actually use (an interpreter-pinned
        # engine still reports the hypothetical planner strategy).
        mode = self._pick_execution_mode(plan, updating, self.mode)
        if mode == "parallel":
            from repro.planner.parallel import describe_parallel
            from repro.runtime.scheduler import get_scheduler

            scheduler = get_scheduler(self.scheduler, self.workers)
            shown = describe_parallel(
                plan,
                self.workers,
                scheduler_name=scheduler.name,
                graph=self.graph,
                morsel_size=self.morsel_size,
            )
            return ("planner", None, shown.describe(), cache_info, mode)
        return ("planner", None, plan.describe(), cache_info, mode)

    def plan_cache_info(self):
        """Hit/miss counters of the plan cache, with the derived rate."""
        hits = self.plan_cache_hits
        misses = self.plan_cache_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else None,
            "entries": len(self._plan_cache),
        }

    # ------------------------------------------------------------------

    def _run_interpreted(self, query, parameters, updating, reason=None):
        state = QueryState(
            self.graph,
            parameters=parameters,
            functions=self.functions,
            morphism=self.morphism,
            catalog=self.catalog,
        )
        with self._schema_guard(updating):
            table = run_query(query, state)
        return QueryResult(
            table,
            graphs=state.result_graphs,
            executed_by="interpreter",
            fallback_reason=reason,
        )

    def _pick_execution_mode(self, plan, updating, mode="auto"):
        """``"parallel"``, ``"batch"`` or ``"row"`` for one execution.

        Batch execution is the default wherever the batch engine claims
        the plan: a read-only plan whose operators all have batch
        implementations, on a store exposing the bulk column APIs.
        Write plans (and their Eager barriers) always run row-wise —
        their mutations already batch through the store transaction.
        ``mode="row"`` pins row execution for differential testing.

        Parallel execution layers on top of the batch claim: with
        ``workers > 1`` and a plan inside the
        :func:`~repro.planner.parallel.plan_supports_parallel` claim,
        ``auto`` mode fans out when the cost model estimates the source
        scan at or above ``parallel_threshold`` rows — below it the
        per-task compile cost would eat the win.  ``mode="parallel"``
        pins the exchange for any claimed plan regardless of size (the
        no-silent-serial guarantee the differential tests rely on); an
        unclaimed plan degrades to ``"batch"``/``"row"`` exactly as
        ``"batch"`` mode would.
        """
        if mode == "row" or updating:
            return "row"
        from repro.planner.batch import graph_supports_batch
        from repro.planner.batch import plan_supports_batch

        if not (plan_supports_batch(plan) and graph_supports_batch(self.graph)):
            return "row"
        from repro.planner.parallel import plan_supports_parallel

        if mode == "parallel":
            return "parallel" if plan_supports_parallel(plan) else "batch"
        if mode == "auto" and self.workers > 1 and plan_supports_parallel(plan):
            from repro.planner.cost import estimated_source_rows
            from repro.planner.parallel import DEFAULT_PARALLEL_THRESHOLD

            threshold = self.parallel_threshold
            if threshold is None:
                threshold = DEFAULT_PARALLEL_THRESHOLD
            estimate = estimated_source_rows(plan, self.graph)
            if estimate is not None and estimate >= threshold:
                return "parallel"
        return "batch"

    def _execute_planned(
        self, query_text, plan, parameters, updating, mode, access_log=None,
        cancel=None,
    ):
        execution_mode = self._pick_execution_mode(plan, updating, mode)
        if execution_mode == "parallel":
            from repro.planner.parallel import execute_plan_parallel
            from repro.runtime.scheduler import get_scheduler

            table, parallelism = execute_plan_parallel(
                plan,
                self.graph,
                parameters=parameters,
                functions=self.functions,
                morphism=self.morphism,
                morsel_size=self.morsel_size,
                access_log=access_log,
                cancel=cancel,
                scheduler=get_scheduler(self.scheduler, self.workers),
                workers=self.workers,
            )
            return QueryResult(
                table,
                plan=plan,
                executed_by="planner",
                execution_mode="parallel",
                access_paths=access_log,
                parallelism=parallelism,
            )
        if execution_mode == "batch":
            from repro.planner.batch import execute_plan_batched

            table = execute_plan_batched(
                plan,
                self.graph,
                parameters=parameters,
                functions=self.functions,
                morphism=self.morphism,
                morsel_size=self.morsel_size,
                access_log=access_log,
                cancel=cancel,
            )
            return QueryResult(
                table,
                plan=plan,
                executed_by="planner",
                execution_mode="batch",
                access_paths=access_log,
            )
        from repro.planner import execute_plan

        with self._schema_guard(updating):
            table = execute_plan(
                plan,
                self.graph,
                parameters=parameters,
                functions=self.functions,
                morphism=self.morphism,
                access_log=access_log,
                cancel=cancel,
                # Read-only statements unlock the compiler's shared,
                # memoised property readers (CSE); writes must re-read.
                read_only=not updating,
            )
            if updating:
                # The statement's own version bump must not evict the
                # plan that caused it: re-stamp the entry to the
                # post-commit version (once per execution, regardless
                # of how many clauses mutated).
                self._restamp_plan(query_text)
        return QueryResult(
            table, plan=plan, executed_by="planner", execution_mode="row",
            access_paths=access_log,
        )

    def _schema_guard(self, updating):
        """Snapshot/validate/rollback around an updating execution."""
        import contextlib

        if self.schema is None or not updating:
            return contextlib.nullcontext()

        @contextlib.contextmanager
        def guard():
            snapshot = self.graph.copy()
            yield
            violations = self.schema.validate(self.graph)
            if violations:
                self.graph.restore_from(snapshot)
                raise ConstraintViolation(
                    "update rolled back; schema violations: %s"
                    % "; ".join(str(violation) for violation in violations)
                )

        return guard()

    # -- plan cache ------------------------------------------------------

    _PLAN_CACHE_LIMIT = 256

    def _cached_plan(self, query_text):
        """``(plan, updating)`` for this exact text, or None.

        A hit skips parsing, semantic checks, rewriting and planning
        (update plans carry their ``updating`` flag so the schema
        snapshot still happens).  A version mismatch only evicts plans
        whose choices depended on statistics; the rest are simply
        re-stamped, so parameterised re-runs keep their plan across
        store mutations.
        """
        entry = self._plan_cache.get(query_text)
        if entry is None:
            self.plan_cache_misses += 1
            return None
        graph_key, version, stats_sensitive, plan, updating, counts = entry
        if graph_key != id(self.graph):
            del self._plan_cache[query_text]
            self.plan_cache_misses += 1
            return None
        current = getattr(self.graph, "version", None)
        if version != current:
            if stats_sensitive:
                del self._plan_cache[query_text]
                self.plan_cache_misses += 1
                return None
            entry = (
                graph_key, current, stats_sensitive, plan, updating, counts
            )
            self._plan_cache[query_text] = entry
        self._plan_cache.move_to_end(query_text)
        self.plan_cache_hits += 1
        return plan, updating

    def _graph_size(self):
        """Coarse statistics fingerprint for the re-plan heuristic."""
        return self.graph.node_count() + self.graph.relationship_count() + 1

    def _remember_plan(self, query_text, plan, updating):
        version = getattr(self.graph, "version", None)
        if version is None:
            return  # no mutation counter: cannot tell when to invalidate
        from repro.planner.planning import plan_depends_on_statistics

        self._plan_cache[query_text] = (
            id(self.graph),
            version,
            plan_depends_on_statistics(plan),
            plan,
            updating,
            self._graph_size(),
        )
        self._plan_cache.move_to_end(query_text)
        while len(self._plan_cache) > self._PLAN_CACHE_LIMIT:
            self._plan_cache.popitem(last=False)

    def _restamp_plan(self, query_text):
        """Pardon a statement's self-inflicted version bump.

        Called once per updating execution, after the store transaction
        committed: the entry's version moves to the post-commit value,
        so re-running the same write statement is a cache hit.  Entries
        for *other* statements are untouched — a write still invalidates
        every stats-sensitive plan exactly once, via the single commit
        bump.  A stats-sensitive statement is only pardoned while the
        graph stays within 2x of the size it was planned against; a
        write that reshapes the store past that (a bulk load doubling a
        label, a mass delete) is left stale, so the next lookup evicts
        and re-plans against the new statistics instead of freezing the
        original choice forever.
        """
        entry = self._plan_cache.get(query_text)
        if entry is None:
            return
        graph_key, _version, stats_sensitive, plan, updating, counts = entry
        if graph_key != id(self.graph):
            return
        if stats_sensitive:
            size = self._graph_size()
            if size > 2 * counts or 2 * size < counts:
                return  # statistics diverged: let the next lookup re-plan
        current = getattr(self.graph, "version", None)
        self._plan_cache[query_text] = (
            graph_key, current, stats_sensitive, plan, updating, counts
        )
