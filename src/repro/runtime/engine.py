"""The CypherEngine facade."""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import ConstraintViolation, UnsupportedFeature
from repro.graph.catalog import GraphCatalog
from repro.graph.store import MemoryGraph
from repro.parser import parse_query
from repro.runtime.result import QueryResult
from repro.semantics.analysis import check_query
from repro.semantics.morphism import EDGE_ISOMORPHISM
from repro.semantics.query import QueryState, run_query

_MODES = ("auto", "interpreter", "planner")


def _is_updating(query):
    """True if any clause of the query mutates the graph."""
    from repro.ast import clauses as cl
    from repro.ast import queries as qu

    if isinstance(query, qu.UnionQuery):
        return _is_updating(query.left) or _is_updating(query.right)
    updating = (cl.Create, cl.Delete, cl.SetClause, cl.RemoveClause, cl.Merge)
    return any(isinstance(clause, updating) for clause in query.clauses)


class CypherEngine:
    """Runs Cypher queries against a property graph (or graph catalog).

    Parameters
    ----------
    graph:
        The default property graph; a fresh empty :class:`MemoryGraph`
        if omitted.
    catalog:
        Optional :class:`GraphCatalog` for Cypher 10 multi-graph queries;
        one is created around ``graph`` by default.
    mode:
        ``"auto"`` (planner with interpreter fallback), ``"interpreter"``
        or ``"planner"``.
    morphism:
        Pattern-matching semantics; Cypher 9's edge isomorphism unless
        overridden (Section 8's configurable morphisms).
    """

    def __init__(
        self,
        graph=None,
        catalog=None,
        mode="auto",
        morphism=EDGE_ISOMORPHISM,
        functions=None,
        rewrite=True,
        schema=None,
    ):
        if mode not in _MODES:
            raise ValueError("mode must be one of %r" % (_MODES,))
        self.graph = graph if graph is not None else MemoryGraph()
        self.catalog = catalog if catalog is not None else GraphCatalog(self.graph)
        self.mode = mode
        self.morphism = morphism
        self.functions = functions
        self.rewrite = rewrite
        self.schema = schema
        #: Bounded LRU of compiled plans: query text ->
        #: (graph id, version, stats_sensitive, plan).  Plans embed no
        #: graph data (operators re-read the store at run time), so a
        #: stale hit would still be correct — the version key exists
        #: because plan *choices* (entry labels, chain order) come from
        #: statistics.  Plans the cost model had no real choice on
        #: (``stats_sensitive`` False) survive store mutations, so
        #: parameterised re-runs keep their plan across graph versions.
        self._plan_cache = OrderedDict()

    # ------------------------------------------------------------------

    def run(self, query_text, parameters=None, mode=None):
        """Parse and execute ``query_text``; returns a QueryResult."""
        mode = mode or self.mode
        if mode in ("planner", "auto"):
            plan = self._cached_plan(query_text)
            if plan is not None:
                from repro.planner import execute_plan

                table = execute_plan(
                    plan,
                    self.graph,
                    parameters=parameters,
                    functions=self.functions,
                    morphism=self.morphism,
                )
                return QueryResult(table, plan=plan, executed_by="planner")
        query = parse_query(query_text)
        check_query(query)
        if self.rewrite:
            from repro.rewriter import rewrite_query

            query = rewrite_query(query)
        snapshot = None
        if self.schema is not None and _is_updating(query):
            snapshot = self.graph.copy()
        if mode == "planner":
            result = self._run_planned(query, parameters, query_text)
        elif mode == "interpreter":
            result = self._run_interpreted(
                query, parameters, reason="mode=interpreter"
            )
        else:
            try:
                result = self._run_planned(query, parameters, query_text)
            except UnsupportedFeature as unsupported:
                result = self._run_interpreted(
                    query, parameters, reason=str(unsupported)
                )
        if snapshot is not None:
            violations = self.schema.validate(self.graph)
            if violations:
                self.graph.restore_from(snapshot)
                raise ConstraintViolation(
                    "update rolled back; schema violations: %s"
                    % "; ".join(str(violation) for violation in violations)
                )
        return result

    def explain(self, query_text):
        """The physical plan the planner would run, as indented text.

        Mirrors :meth:`run`'s pipeline (including the rewriter), so the
        reported plan is the one a run would actually cache and execute.
        """
        from repro.planner import plan_query

        query = parse_query(query_text)
        if self.rewrite:
            from repro.rewriter import rewrite_query

            query = rewrite_query(query)
        plan = plan_query(query, self.graph, morphism=self.morphism)
        return plan.describe()

    def explain_info(self, query_text):
        """``(executed_by, fallback_reason, plan_text)`` without running.

        ``executed_by`` is ``"planner"`` with the plan tree, or
        ``"interpreter"`` with the reason the planner refused — the same
        metadata :class:`QueryResult` carries after a run, surfaced for
        ``python -m repro.cli explain``.
        """
        try:
            plan_text = self.explain(query_text)
        except UnsupportedFeature as unsupported:
            return ("interpreter", str(unsupported), None)
        return ("planner", None, plan_text)

    # ------------------------------------------------------------------

    def _run_interpreted(self, query, parameters, reason=None):
        state = QueryState(
            self.graph,
            parameters=parameters,
            functions=self.functions,
            morphism=self.morphism,
            catalog=self.catalog,
        )
        table = run_query(query, state)
        return QueryResult(
            table,
            graphs=state.result_graphs,
            executed_by="interpreter",
            fallback_reason=reason,
        )

    def _run_planned(self, query, parameters, query_text=None):
        from repro.planner import execute_plan, plan_query

        plan = plan_query(query, self.graph, morphism=self.morphism)
        if query_text is not None:
            self._remember_plan(query_text, plan)
        table = execute_plan(
            plan,
            self.graph,
            parameters=parameters,
            functions=self.functions,
            morphism=self.morphism,
        )
        return QueryResult(table, plan=plan, executed_by="planner")

    # -- plan cache ------------------------------------------------------

    _PLAN_CACHE_LIMIT = 256

    def _cached_plan(self, query_text):
        """A previously compiled plan for this exact text, or None.

        Only read-only queries ever make it into the cache (the planner
        rejects updates), so a hit can skip parsing, semantic checks and
        the schema snapshot entirely.  A version mismatch only evicts
        plans whose choices depended on statistics; the rest are simply
        re-stamped, so parameterised re-runs keep their plan across
        store mutations.
        """
        entry = self._plan_cache.get(query_text)
        if entry is None:
            return None
        graph_key, version, stats_sensitive, plan = entry
        if graph_key != id(self.graph):
            del self._plan_cache[query_text]
            return None
        current = getattr(self.graph, "version", None)
        if version != current:
            if stats_sensitive:
                del self._plan_cache[query_text]
                return None
            entry = (graph_key, current, stats_sensitive, plan)
            self._plan_cache[query_text] = entry
        self._plan_cache.move_to_end(query_text)
        return plan

    def _remember_plan(self, query_text, plan):
        version = getattr(self.graph, "version", None)
        if version is None:
            return  # no mutation counter: cannot tell when to invalidate
        from repro.planner.planning import plan_depends_on_statistics

        self._plan_cache[query_text] = (
            id(self.graph),
            version,
            plan_depends_on_statistics(plan),
            plan,
        )
        self._plan_cache.move_to_end(query_text)
        while len(self._plan_cache) > self._PLAN_CACHE_LIMIT:
            self._plan_cache.popitem(last=False)
