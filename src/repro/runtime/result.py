"""Query results: an ordered table view plus any projected graphs."""

from __future__ import annotations

from repro.exceptions import CypherRuntimeError


class QueryResult:
    """What ``CypherEngine.run`` returns.

    Wraps the result :class:`~repro.semantics.table.Table` with
    convenience accessors, and carries the named graphs produced by
    Cypher 10's RETURN GRAPH (the "table-graphs" of Section 6).

    ``executed_by`` records which execution path produced the rows —
    ``"planner"`` (slotted, compiled) or ``"interpreter"`` (the
    reference tree-walker) — and ``fallback_reason`` says why the
    planner was bypassed (None on the planner path).  Coverage
    regressions show up as unexpected ``"interpreter"`` values; the
    bench harness and the no-fallback tests assert on this.

    On the planner path ``execution_mode`` additionally records *how*
    the plan ran: ``"batch"`` (vectorised morsels over slot columns) or
    ``"row"`` (tuple-at-a-time).  It is None on the interpreter path.
    The TCK runner asserts a plan the batch engine claims
    (:func:`~repro.planner.batch.plan_supports_batch`) never silently
    degrades to ``"row"``.

    ``access_paths`` (populated by ``run(..., profile=True)``) lists one
    record per scan operator — ``{"operator", "variable", "entry",
    "estimated_rows", "actual_rows"}`` — making the cost model's
    index-vs-label-scan decision, and how well its estimate matched
    reality, observable per execution.  None on unprofiled runs.  A
    parallel execution appends one ``"Exchange"`` record carrying the
    per-worker row and morsel counts.

    ``parallelism`` (set only when ``execution_mode == "parallel"``)
    records how the exchange actually ran: scheduler name, worker
    count, partition count, merge strategy, and per-partition
    row/morsel/thread lists — the observable that makes silent serial
    fallback of a parallel-claimed plan testable.
    """

    def __init__(
        self,
        table,
        graphs=None,
        plan=None,
        executed_by=None,
        fallback_reason=None,
        execution_mode=None,
        access_paths=None,
        parallelism=None,
    ):
        self._table = table
        self.graphs = dict(graphs or {})
        self.plan = plan
        self.executed_by = executed_by
        self.fallback_reason = fallback_reason
        self.execution_mode = execution_mode
        self.access_paths = access_paths
        self.parallelism = parallelism

    # -- table access -------------------------------------------------------

    @property
    def columns(self):
        """Output field names, in projection order."""
        return list(self._table.fields)

    @property
    def records(self):
        """All rows as dicts (row order preserved)."""
        return self._table.to_records()

    @property
    def table(self):
        """The underlying bag-of-records table."""
        return self._table

    def values(self, column=None):
        """One column as a list; defaults to the only column."""
        if column is None:
            if len(self._table.fields) != 1:
                raise CypherRuntimeError(
                    "values() without a column needs a single-column result"
                )
            column = self._table.fields[0]
        if column not in self._table.fields:
            raise CypherRuntimeError("no column %r in result" % (column,))
        return self._table.column(column)

    def single(self):
        """The only record; raises unless exactly one row was produced."""
        if len(self._table.rows) != 1:
            raise CypherRuntimeError(
                "expected exactly one record, got %d" % len(self._table.rows)
            )
        return dict(self._table.rows[0])

    def value(self, column=None):
        """The single value of a single-row result."""
        record = self.single()
        if column is None:
            if len(record) != 1:
                raise CypherRuntimeError(
                    "value() without a column needs a single-column result"
                )
            return next(iter(record.values()))
        return record[column]

    def graph(self, name=None):
        """A graph projected by RETURN GRAPH (Cypher 10)."""
        if name is None:
            if len(self.graphs) != 1:
                raise CypherRuntimeError(
                    "result carries %d graphs; name one" % len(self.graphs)
                )
            return next(iter(self.graphs.values()))
        if name not in self.graphs:
            raise CypherRuntimeError("no graph %r in result" % (name,))
        return self.graphs[name]

    # -- protocol ----------------------------------------------------------

    def __len__(self):
        return len(self._table)

    def __iter__(self):
        return iter(self._table.to_records())

    def __repr__(self):
        return "QueryResult(columns={}, rows={})".format(
            self.columns, len(self._table)
        )

    def pretty(self, limit=20):
        return self._table.pretty(limit)
