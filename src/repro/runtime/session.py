"""Transactional sessions and snapshot readers.

A :class:`Session` groups statements into one store transaction: writes
from successive :meth:`Session.run` calls accumulate in a single
always-recording :class:`~repro.graph.store.StoreTransaction` and become
visible atomically — one version bump — at :meth:`Session.commit`, or
vanish exactly at :meth:`Session.rollback` (the undo log restores the
store, its statistics, scan caches and every property index to the
rebuild-identical pre-``begin()`` state).

Isolation is *read committed* for the session's own reads — statements
inside the transaction see their own uncommitted writes (the store is
mutated in place; the undo log is what makes rollback exact) — while
:meth:`Session.snapshot` hands out a *snapshot isolation* reader: a
pinned :class:`~repro.graph.snapshot.VersionPin` preserves pre-images
copy-on-write, so the snapshot keeps answering from the version current
when it was taken even while this or another session commits on top.

Sessions hold one admission slot on the engine from first use until
:meth:`Session.close`; the engine's bounded gate turns overload into
:class:`~repro.exceptions.EngineOverloadedError` instead of unbounded
queueing.
"""

from __future__ import annotations

from repro.exceptions import TransactionError, UnsupportedFeature


class Session:
    """One client's transactional conversation with a CypherEngine.

    Usable as a context manager::

        with engine.session() as session:
            session.begin()
            session.run("CREATE (:Person {name: 'Ada'})")
            session.run("MATCH (p:Person) SET p.seen = true")
            session.commit()

    Leaving the ``with`` block with the transaction still open rolls it
    back — commits are always explicit.  Statements run outside
    ``begin()``/``commit()`` auto-commit individually, exactly like
    ``engine.run``.
    """

    def __init__(self, engine, default_timeout=None):
        self.engine = engine
        self.graph = engine.graph
        self.default_timeout = default_timeout
        self._admitted = False
        self._closed = False
        self._snapshot = None
        self._in_transaction = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self):
        self._admit()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()

    def _admit(self):
        if self._closed:
            raise TransactionError("session is closed")
        if not self._admitted:
            self.engine._admit_session()
            self._admitted = True

    def close(self):
        """Roll back any open transaction and release the admission slot."""
        if self._closed:
            return
        try:
            if self._in_transaction:
                self.rollback()
            self._release_snapshot()
        finally:
            self._closed = True
            if self._admitted:
                self._admitted = False
                self.engine._release_session()

    # -- transaction control ---------------------------------------------

    @property
    def in_transaction(self):
        return self._in_transaction

    def begin(self):
        """Open an explicit transaction spanning subsequent statements."""
        self._admit()
        if self._in_transaction:
            raise TransactionError("transaction already begun on this session")
        if self.engine.schema is not None:
            raise UnsupportedFeature(
                "schema-validated engines do not support explicit "
                "transactions: the schema guard snapshots around each "
                "auto-committed statement"
            )
        self._in_transaction = True
        return self

    def commit(self):
        """Flush the transaction's changes; one version bump, atomically.

        A commit-time failure (for example an injected fault in the
        flush) rolls the whole transaction back before re-raising: the
        engine stays usable and the store unchanged.
        """
        transaction = self._require_transaction()
        if transaction is None:  # no statement ever wrote: nothing to flush
            self._end_transaction()
            return
        try:
            transaction.commit()
        except BaseException:
            if not transaction.closed:
                transaction.rollback()
            self._end_transaction()
            raise
        self._end_transaction()

    def rollback(self):
        """Undo every statement since :meth:`begin`, exactly."""
        transaction = self._require_transaction()
        if transaction is None:  # no statement ever wrote: nothing to undo
            self._end_transaction()
            return
        try:
            transaction.rollback()
        finally:
            self._end_transaction()

    def _require_transaction(self):
        if not self._in_transaction:
            raise TransactionError("no transaction begun on this session")
        return self.graph.active_session_transaction(self)

    def _end_transaction(self):
        if self._snapshot is not None and self._snapshot.transactional:
            self._release_snapshot()
        self._in_transaction = False

    # -- statements ------------------------------------------------------

    def run(self, query_text, parameters=None, **options):
        """Run one statement; inside a transaction, joins it.

        Accepts the same keyword options as ``engine.run``
        (``timeout``, ``deadline``, ``cancel``, ``mode``, ``profile``);
        ``timeout`` defaults to the session's ``default_timeout``.  A
        statement that fails — including one interrupted by its timeout
        — unwinds its own changes only; earlier statements of the
        transaction survive for the eventual commit or rollback.
        """
        self._admit()
        if options.get("timeout") is None:
            options["timeout"] = self.default_timeout
        if not self._in_transaction:
            return self.engine.run(query_text, parameters, **options)
        self.graph.enter_session_scope(self)
        try:
            return self.engine.run(query_text, parameters, **options)
        finally:
            self.graph.exit_session_scope()

    # -- snapshot readers -------------------------------------------------

    def snapshot(self):
        """A read-only view pinned to the current committed version.

        The view stays stable while this or other sessions commit —
        later mutations preserve their pre-images into the pin
        copy-on-write, so pinning costs nothing up front and writers
        only pay while a snapshot is actually live.  Inside a
        transaction, take the snapshot *before* the first write: it
        then observes the version current at :meth:`begin` (our own
        uncommitted writes are invisible to it by construction), and
        pinning after uncommitted changes exist is refused by the store
        — a snapshot must correspond to a committed version.  A
        transactional snapshot is released when its transaction ends;
        one taken outside lives until the session closes.
        """
        self._admit()
        if self._snapshot is None:
            pin = self.graph.pin_version()
            self._snapshot = Snapshot(self, pin, self._in_transaction)
        return self._snapshot

    def _release_snapshot(self):
        if self._snapshot is not None:
            self.graph.release_pin(self._snapshot.pin)
            self._snapshot = None


class Snapshot:
    """A read-only engine view over one pinned store version.

    While the pin is clean (nothing mutated since it was taken) queries
    run on the parent engine directly — full index and batch
    acceleration, zero overlay cost.  The first time the live store
    diverges, queries transparently switch to an overlay engine reading
    through :class:`~repro.graph.snapshot.SnapshotGraph`.
    """

    def __init__(self, session, pin, transactional=False):
        self.session = session
        self.pin = pin
        #: Taken inside a transaction: released when that transaction
        #: ends (commit or rollback), not at session close.
        self.transactional = transactional
        self._overlay_engine = None

    @property
    def version(self):
        return self.pin.version

    @property
    def graph(self):
        """The graph this snapshot currently reads from."""
        if self.pin.clean and self.pin.base is self.session.graph:
            return self.session.graph
        return self._overlay().graph

    def run(self, query_text, parameters=None, **options):
        """Run a read-only statement against the pinned version."""
        options["read_only"] = True
        parent = self.session.engine
        if self.pin.clean and self.pin.base is self.session.graph:
            return parent.run(query_text, parameters, **options)
        return self._overlay().run(query_text, parameters, **options)

    def _overlay(self):
        if self._overlay_engine is None:
            from repro.graph.snapshot import SnapshotGraph
            from repro.runtime.engine import CypherEngine

            parent = self.session.engine
            self._overlay_engine = CypherEngine(
                SnapshotGraph(self.pin),
                mode=parent.mode,
                morphism=parent.morphism,
                functions=parent.functions,
                morsel_size=parent.morsel_size,
                workers=parent.workers,
                scheduler=parent.scheduler,
                parallel_threshold=parent.parallel_threshold,
            )
        return self._overlay_engine
