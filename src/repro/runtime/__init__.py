"""The user-facing engine: parse → (plan | interpret) → results.

:class:`~repro.runtime.engine.CypherEngine` is the facade a downstream
application uses.  It offers three execution modes:

* ``"interpreter"`` — the formal-semantics reference path (Section 4);
* ``"planner"`` — the Volcano-style operator pipeline (Section 2's
  description of the Neo4j implementation);
* ``"auto"`` (default) — the planner where it applies, with transparent
  fallback to the interpreter for updates and Cypher 10 features.

The two paths are cross-checked in the test suite; the paper argues this
agreement is exactly what a formal semantics buys you.
"""

from repro.runtime.engine import CypherEngine
from repro.runtime.result import QueryResult

__all__ = ["CypherEngine", "QueryResult"]
