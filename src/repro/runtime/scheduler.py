"""Worker scheduling for parallel morsel execution.

The parallel layer (:mod:`repro.planner.parallel`) splits a claimed
read plan into per-partition tasks — each one executes the plan's
worker segment over one contiguous slice of the source scan's candidate
list — and hands the task list to a :class:`Scheduler`.  The scheduler
contract is deliberately tiny:

* :meth:`Scheduler.run_tasks` executes zero-argument callables and
  returns their results **in task order** — whatever interleaving the
  backend chose, the gather side always sees partition 0's result
  first.  Determinism lives here: the merge step never depends on
  completion order.
* Errors propagate in task order too: the first task (by index, not by
  wall clock) that raised is the one whose exception the caller sees,
  exactly as the serial backend would surface it.  Once a failure is
  observed, ``abort`` (usually an
  :meth:`~repro.runtime.cancel.AbortToken.abort` bound method) is
  invoked so sibling workers polling the shared cancellation token
  stop at their next morsel boundary instead of running to completion.

Two backends ship:

* :class:`SerialScheduler` — runs tasks inline on the calling thread;
  the degenerate case that keeps single-worker behaviour (and cost)
  identical to the plain batch engine.
* :class:`ThreadScheduler` — a :class:`concurrent.futures.
  ThreadPoolExecutor` per call.  Pure-Python execution only scales on
  free-threaded builds (under the GIL the pool still interleaves, which
  the differential tests exploit to prove merge determinism); store
  reads are safe to share because executions either pin a snapshot
  version or run outside any write transaction, and the store's lazy
  scan caches tolerate concurrent builds.

A process-pool backend (pickled morsels, one store clone per worker) is
the designed extension point — ``run_tasks`` takes closures today, so a
process backend needs a picklable task representation first; it stays
future work rather than landing half-tested.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

#: Registered backend names, in preference order.
SCHEDULER_NAMES = ("thread", "serial")


class Scheduler:
    """Executes partition tasks; subclasses pick the how."""

    name = "abstract"

    def run_tasks(self, tasks, abort=None):
        """Run zero-arg callables; results (and errors) in task order."""
        raise NotImplementedError

    def __repr__(self):
        return "%s()" % type(self).__name__


class SerialScheduler(Scheduler):
    """Inline execution on the calling thread — the degenerate backend.

    ``run_tasks`` is a plain loop, so a one-worker "parallel" run costs
    exactly one extra function call over the serial batch engine; the
    overhead benchmark pins this.
    """

    name = "serial"

    def run_tasks(self, tasks, abort=None):
        results = []
        try:
            for task in tasks:
                results.append(task())
        except BaseException:
            if abort is not None:
                abort()
            raise
        return results


class ThreadScheduler(Scheduler):
    """An in-process pool of ``workers`` threads per task batch.

    The pool is created per :meth:`run_tasks` call and torn down with
    it: engines are created freely (tests build thousands), so a
    persistent pool per engine would leak threads.  Spawning W threads
    costs tens of microseconds — noise against any workload worth
    parallelising.  Single-task batches run inline, skipping the pool
    entirely.
    """

    name = "thread"

    def __init__(self, workers=2):
        self.workers = max(1, int(workers))

    def run_tasks(self, tasks, abort=None):
        tasks = list(tasks)
        if len(tasks) <= 1 or self.workers <= 1:
            return SerialScheduler.run_tasks(self, tasks, abort)
        results = []
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(tasks)),
            thread_name_prefix="repro-morsel",
        ) as pool:
            futures = [pool.submit(task) for task in tasks]
            try:
                for future in futures:
                    results.append(future.result())
            except BaseException:
                # Task-order error determinism: the exception re-raised
                # is the lowest-index failure.  Flip the abort token so
                # still-running siblings stop at their next poll, then
                # let the executor's __exit__ join them.
                if abort is not None:
                    abort()
                for future in futures:
                    future.cancel()
                raise
        return results

    def __repr__(self):
        return "ThreadScheduler(workers=%d)" % self.workers


def get_scheduler(name, workers):
    """Build a scheduler backend by name.

    ``None`` picks ``"thread"`` when more than one worker is asked for,
    ``"serial"`` otherwise — the cost-free default.
    """
    if isinstance(name, Scheduler):
        return name
    if name is None:
        name = "thread" if workers and workers > 1 else "serial"
    if name == "serial":
        return SerialScheduler()
    if name == "thread":
        return ThreadScheduler(workers or 1)
    raise ValueError(
        "unknown scheduler %r (one of %r)" % (name, SCHEDULER_NAMES)
    )
