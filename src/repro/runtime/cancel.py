"""Cooperative cancellation: deadlines and cancel tokens.

A statement cannot be interrupted pre-emptively — execution is ordinary
Python — so the executors *poll*: the row engine wraps every compiled
operator and checks between rows (strided, so the steady-state cost is
one integer decrement per row), the batch engine checks at every morsel
boundary, and the variable-length expand checks per walk step (its
frontier can grow combinatorially before the operator yields a single
row).  When a check fires, :class:`~repro.exceptions.QueryTimeout` or
:class:`~repro.exceptions.QueryCancelled` propagates; the executors
catch the interruption, roll the statement's write transaction back
atomically, and re-raise — an interrupted write is as if it never ran.
"""

from __future__ import annotations

from time import monotonic

from repro.exceptions import QueryCancelled, QueryTimeout

#: Rows between two deadline reads on the row engine's strided checks.
#: 64 keeps worst-case overshoot small (sub-millisecond for any operator
#: that isn't itself stuck) while making the per-row cost negligible.
CHECK_STRIDE = 64


class CancelToken:
    """A caller-held handle that cancels a running statement."""

    __slots__ = ("_cancelled",)

    def __init__(self):
        self._cancelled = False

    def cancel(self):
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled


class AbortToken:
    """A scheduler-side token: relays a caller token, adds an abort.

    Parallel workers share one deadline but each poll their own
    :class:`Cancellation` (the strided countdown is per-thread state);
    what they *share* is this token, which fires when either the
    caller's original token is cancelled or a sibling worker failed and
    the scheduler called :meth:`abort`.  Duck-typed against
    :class:`CancelToken` — :meth:`Cancellation.poll` only reads
    ``_cancelled``.
    """

    __slots__ = ("_inner", "_aborted")

    def __init__(self, inner=None):
        self._inner = inner
        self._aborted = False

    def abort(self):
        self._aborted = True

    @property
    def _cancelled(self):
        inner = self._inner
        return self._aborted or (inner is not None and inner._cancelled)


class Cancellation:
    """One statement's interruption state: deadline and/or token."""

    __slots__ = ("deadline", "token", "_countdown")

    def __init__(self, deadline=None, token=None):
        self.deadline = deadline  # monotonic() timestamp or None
        self.token = token
        self._countdown = CHECK_STRIDE

    @classmethod
    def build(cls, timeout=None, deadline=None, token=None):
        """Combine run() arguments; None when nothing can interrupt.

        ``timeout`` is seconds from now; ``deadline`` an absolute
        :func:`time.monotonic` timestamp.  Both given: the earlier wins.
        """
        if timeout is not None:
            timed = monotonic() + timeout
            deadline = timed if deadline is None else min(deadline, timed)
        if deadline is None and token is None:
            return None
        return cls(deadline, token)

    def poll(self):
        """Raise if the deadline passed or the token fired (direct check)."""
        token = self.token
        if token is not None and token._cancelled:
            raise QueryCancelled("query cancelled")
        deadline = self.deadline
        if deadline is not None and monotonic() > deadline:
            raise QueryTimeout("query exceeded its time limit")

    def check(self):
        """Strided :meth:`poll` — amortised for per-row call sites."""
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = CHECK_STRIDE
            self.poll()
