"""Abstract syntax for Cypher (paper Figures 3 and 5).

The grammar is defined "by mutual recursion of expressions, patterns,
clauses, and queries" (Section 4.2); each of those levels gets a module
here.  All nodes are plain dataclasses: the parser builds them, the
reference interpreter and the planner consume them, and
:mod:`repro.ast.printer` turns them back into Cypher text (used by the
round-trip property tests).
"""

from repro.ast import clauses, expressions, patterns, queries
from repro.ast.printer import print_expression, print_pattern, print_query
from repro.ast.visitor import children, walk

__all__ = [
    "expressions",
    "patterns",
    "clauses",
    "queries",
    "walk",
    "children",
    "print_query",
    "print_expression",
    "print_pattern",
]
