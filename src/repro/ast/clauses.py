"""Clause AST nodes (paper Figure 5, "clauses", plus the update clauses).

Read clauses — MATCH / OPTIONAL MATCH / WITH / UNWIND — each denote a
function from tables to tables (Figure 7).  Update clauses — CREATE /
DELETE / SET / REMOVE / MERGE — are described in Section 2 and re-use the
visual pattern language.  Cypher 10 graph clauses (FROM GRAPH / RETURN
GRAPH, Section 6) also live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Clause:
    """Base class of all clause nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Projection machinery shared by WITH and RETURN
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReturnItem:
    """``expr [AS a]``; alias None means the implicit name α(expr)."""

    expression: object  # Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class SortItem:
    """One ORDER BY key with its direction."""

    expression: object
    ascending: bool = True


@dataclass(frozen=True)
class Projection:
    """The body shared by WITH and RETURN.

    ``star`` models the ``*`` return list; ``items`` may extend it
    (``RETURN *, expr AS x``).  ORDER BY / SKIP / LIMIT are part of the
    projection in openCypher's grammar, and the paper's industry examples
    use them (``ORDER BY dependents DESC LIMIT 1``).
    """

    star: bool = False
    items: Tuple[ReturnItem, ...] = ()
    distinct: bool = False
    order_by: Tuple[SortItem, ...] = ()
    skip: Optional[object] = None   # Expression
    limit: Optional[object] = None  # Expression


# ---------------------------------------------------------------------------
# Read clauses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Match(Clause):
    """``[OPTIONAL] MATCH pattern_tuple [WHERE expr]``."""

    pattern: Tuple[object, ...]  # tuple of patterns.PathPattern
    optional: bool = False
    where: Optional[object] = None  # Expression


@dataclass(frozen=True)
class With(Clause):
    """``WITH ret [WHERE expr]``."""

    projection: Projection
    where: Optional[object] = None


@dataclass(frozen=True)
class Return(Clause):
    """``RETURN ret`` — always the last clause of a single query."""

    projection: Projection


@dataclass(frozen=True)
class Unwind(Clause):
    """``UNWIND expr AS a``."""

    expression: object
    alias: str


# ---------------------------------------------------------------------------
# Update clauses (Section 2, "Data modification")
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Create(Clause):
    """``CREATE pattern_tuple`` — patterns must be rigid with length-1 rels."""

    pattern: Tuple[object, ...]


@dataclass(frozen=True)
class Delete(Clause):
    """``[DETACH] DELETE expr, ...``."""

    expressions: Tuple[object, ...]
    detach: bool = False


@dataclass(frozen=True)
class SetProperty:
    """``SET expr.key = value``."""

    subject: object  # Expression evaluating to a node/relationship
    key: str
    value: object    # Expression


@dataclass(frozen=True)
class SetVariable:
    """``SET a = expr`` (replace) or ``SET a += expr`` (merge)."""

    name: str
    value: object
    merge: bool = False


@dataclass(frozen=True)
class SetLabels:
    """``SET a:Label1:Label2``."""

    name: str
    labels: Tuple[str, ...]


@dataclass(frozen=True)
class SetClause(Clause):
    """``SET item, item, ...``."""

    items: Tuple[object, ...]  # SetProperty | SetVariable | SetLabels


@dataclass(frozen=True)
class RemoveProperty:
    """``REMOVE expr.key``."""

    subject: object
    key: str


@dataclass(frozen=True)
class RemoveLabels:
    """``REMOVE a:Label1:Label2``."""

    name: str
    labels: Tuple[str, ...]


@dataclass(frozen=True)
class RemoveClause(Clause):
    """``REMOVE item, item, ...``."""

    items: Tuple[object, ...]


@dataclass(frozen=True)
class Merge(Clause):
    """``MERGE pattern [ON CREATE SET ...] [ON MATCH SET ...]``.

    MERGE "tries to match the given pattern, and creates the pattern if no
    match was found" (Section 2).
    """

    pattern: object  # a single patterns.PathPattern
    on_create: Tuple[object, ...] = ()  # set items
    on_match: Tuple[object, ...] = ()


# ---------------------------------------------------------------------------
# Cypher 10 graph clauses (Section 6)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FromGraph(Clause):
    """``FROM GRAPH name [AT "uri"]`` — switch the source graph."""

    name: str
    uri: Optional[str] = None


@dataclass(frozen=True)
class ReturnGraph(Clause):
    """``RETURN GRAPH name OF pattern`` — project a new named graph.

    Every driving row instantiates the (rigid) pattern into the new graph;
    bound node variables are copied with their labels and properties, and
    the pattern's relationships are created between them (Example 6.1).
    """

    graph_name: str
    pattern: Optional[object] = None  # patterns.PathPattern
