"""Query AST nodes (paper Figure 5, "queries").

A query° is a sequence of clauses ending with RETURN (update queries may
end with an update clause instead); a query is a query° or a UNION
[ALL] of queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Query:
    """Base class of query nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class SingleQuery(Query):
    """``clause clause ... [RETURN ret]``."""

    clauses: Tuple[object, ...]

    def __post_init__(self):
        if not self.clauses:
            raise ValueError("a query must contain at least one clause")

    @property
    def returns_rows(self):
        from repro.ast.clauses import Return

        return bool(self.clauses) and isinstance(self.clauses[-1], Return)


@dataclass(frozen=True)
class UnionQuery(Query):
    """``query UNION [ALL] query``.

    UNION applies duplicate elimination ε to the combined bag; UNION ALL
    keeps the bag union (Figure 6).
    """

    left: Query
    right: Query
    all: bool = False
