"""Expression AST nodes (paper Figure 5, "expressions").

The paper's expression grammar covers values and variables, function
application, maps, lists, string predicates, ternary logic and
inequalities.  We additionally model the constructs the paper's examples
rely on: label predicates (``pInfo:SSN`` in the fraud query), ``count(*)``,
CASE, list comprehensions, quantified predicates and existential pattern
predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Expression:
    """Base class of all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant from the value universe V (null, bool, number, string)."""

    value: object


@dataclass(frozen=True)
class Variable(Expression):
    """A name ``a`` from A, resolved against the current record u."""

    name: str


@dataclass(frozen=True)
class Parameter(Expression):
    """A query parameter ``$name`` (Section 2, "Pragmatic")."""

    name: str


@dataclass(frozen=True)
class PropertyAccess(Expression):
    """``expr.k`` — the value associated with key k (null if undefined)."""

    subject: Expression
    key: str


@dataclass(frozen=True)
class MapLiteral(Expression):
    """``{k1: e1, ..., km: em}``; keys are distinct property keys."""

    items: Tuple[Tuple[str, Expression], ...]


@dataclass(frozen=True)
class ListLiteral(Expression):
    """``[e1, ..., em]``."""

    items: Tuple[Expression, ...]


@dataclass(frozen=True)
class ListIndex(Expression):
    """``expr[expr]`` — element lookup on lists (by position) or maps (by key)."""

    subject: Expression
    index: Expression


@dataclass(frozen=True)
class ListSlice(Expression):
    """``expr[from..to]`` with either bound optional."""

    subject: Expression
    start: Optional[Expression]
    end: Optional[Expression]


@dataclass(frozen=True)
class In(Expression):
    """``expr IN expr`` — list membership with null semantics."""

    item: Expression
    container: Expression


@dataclass(frozen=True)
class StringPredicate(Expression):
    """``STARTS WITH`` / ``ENDS WITH`` / ``CONTAINS``."""

    operator: str  # "STARTS WITH" | "ENDS WITH" | "CONTAINS"
    left: Expression
    right: Expression


@dataclass(frozen=True)
class RegexMatch(Expression):
    """``expr =~ expr`` — regular-expression match (Neo4j pragmatics)."""

    subject: Expression
    pattern: Expression


@dataclass(frozen=True)
class BinaryLogic(Expression):
    """``AND`` / ``OR`` / ``XOR`` with SQL-style three-valued tables."""

    operator: str  # "AND" | "OR" | "XOR"
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression


@dataclass(frozen=True)
class IsNotNull(Expression):
    operand: Expression


@dataclass(frozen=True)
class Comparison(Expression):
    """A (possibly chained) comparison ``e1 op e2 op e3 ...``.

    Cypher treats ``a < b < c`` as ``a < b AND b < c``; we keep the whole
    chain in one node so the evaluator can apply that rule.
    """

    operators: Tuple[str, ...]       # each of = <> < <= > >=
    operands: Tuple[Expression, ...]  # len(operands) == len(operators) + 1


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic: ``+ - * / % ^`` (also list and string ``+``)."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryMinus(Expression):
    operand: Expression


@dataclass(frozen=True)
class UnaryPlus(Expression):
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """``f(e1, ..., en)`` for f in the base function set F.

    ``distinct`` marks aggregate calls of the form ``count(DISTINCT x)``.
    The function name is stored lower-cased; lookup is case-insensitive.
    """

    name: str
    args: Tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class CountStar(Expression):
    """``count(*)`` — counts rows, including rows of all-null values."""


@dataclass(frozen=True)
class LabelPredicate(Expression):
    """``expr:Label1:Label2`` — true if the node carries all the labels.

    Used by the paper's fraud-detection query (``pInfo:SSN OR ...``).
    """

    subject: Expression
    labels: Tuple[str, ...]


@dataclass(frozen=True)
class ListComprehension(Expression):
    """``[x IN list WHERE pred | proj]``; WHERE and projection optional."""

    variable: str
    source: Expression
    where: Optional[Expression] = None
    projection: Optional[Expression] = None


@dataclass(frozen=True)
class PatternComprehension(Expression):
    """``[(a)-->(b) WHERE pred | proj]`` — collects ``proj`` per match."""

    pattern: object  # patterns.PathPattern
    where: Optional[Expression]
    projection: Expression


@dataclass(frozen=True)
class PatternPredicate(Expression):
    """A path pattern used as a boolean: true iff at least one match exists."""

    pattern: object  # patterns.PathPattern


@dataclass(frozen=True)
class QuantifiedPredicate(Expression):
    """``all/any/none/single(x IN list WHERE pred)``."""

    quantifier: str  # "all" | "any" | "none" | "single"
    variable: str
    source: Expression
    predicate: Expression


@dataclass(frozen=True)
class Reduce(Expression):
    """``reduce(acc = init, x IN list | expr)`` — a fold over a list.

    The accumulator starts at ``init``; for each element the body is
    evaluated with both the accumulator and the element in scope, and
    its value becomes the next accumulator.
    """

    accumulator: str
    init: Expression
    variable: str
    source: Expression
    expression: Expression


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Simple (with operand) or searched (without) CASE expression."""

    operand: Optional[Expression]
    alternatives: Tuple[Tuple[Expression, Expression], ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class ExistsSubquery(Expression):
    """``EXISTS { MATCH ... }``-style existential over a pattern tuple."""

    pattern: object  # patterns tuple
    where: Optional[Expression] = None


#: Names of built-in aggregating functions; used to split RETURN/WITH items
#: into grouping keys and aggregates (Section 3's "implicit grouping key").
AGGREGATE_FUNCTION_NAMES = frozenset(
    {
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "collect",
        "stdev",
        "stdevp",
        "percentilecont",
        "percentiledisc",
    }
)


def contains_aggregate(expression):
    """True if the expression tree contains an aggregate function call.

    Aggregates nested inside list-comprehension bodies still count (they
    are evaluated per group); this mirrors openCypher's classification of
    "aggregating expressions".
    """
    from repro.ast.visitor import walk

    for node in walk(expression):
        if isinstance(node, CountStar):
            return True
        if (
            isinstance(node, FunctionCall)
            and node.name in AGGREGATE_FUNCTION_NAMES
        ):
            return True
    return False
