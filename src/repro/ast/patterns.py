"""Pattern AST nodes (paper Figure 3 and Section 4.2).

A node pattern χ is a triple (a, L, P); a relationship pattern ρ is a
tuple (d, a, T, P, I); a path pattern π is an alternating sequence
χ1 ρ1 χ2 ... ρ_{n-1} χn, optionally named (π/a).  MATCH takes a *tuple*
of path patterns.

The range component I follows the paper exactly:

* ``length is None``      ⇔ I = nil (a plain ``-[]-``; treated as (1,1)
  but binding the relationship itself, not a singleton list);
* ``length = (m, n)``     ⇔ I = (m, n) with ``None`` inside standing for
  the paper's nil bound (replaced by 1 below and ∞ above).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

LEFT_TO_RIGHT = "->"
RIGHT_TO_LEFT = "<-"
UNDIRECTED = "--"

DIRECTIONS = (LEFT_TO_RIGHT, RIGHT_TO_LEFT, UNDIRECTED)


@dataclass(frozen=True)
class NodePattern:
    """χ = (a, L, P): optional name, label set, property map (to exprs)."""

    name: Optional[str] = None
    labels: Tuple[str, ...] = ()
    properties: Tuple[Tuple[str, object], ...] = ()  # (key, Expression)


@dataclass(frozen=True)
class RelationshipPattern:
    """ρ = (d, a, T, P, I)."""

    direction: str = UNDIRECTED
    name: Optional[str] = None
    types: Tuple[str, ...] = ()
    properties: Tuple[Tuple[str, object], ...] = ()
    length: Optional[Tuple[Optional[int], Optional[int]]] = None

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ValueError("bad direction %r" % (self.direction,))

    @property
    def is_variable_length(self):
        """True iff I ≠ nil (a ``*`` appears in the source)."""
        return self.length is not None

    @cached_property
    def resolved_types(self):
        """T as a frozenset (or None for "any type"), built exactly once.

        Traversal kernels pass this to the store's typed adjacency
        accessors; computing it per expansion step was a measurable cost.
        """
        return frozenset(self.types) if self.types else None

    def resolved_range(self):
        """The paper's range [m, n]: nil bounds become 1 and ∞ (None)."""
        if self.length is None:
            return (1, 1)
        low, high = self.length
        return (1 if low is None else low, high)

    @property
    def is_rigid(self):
        """Rigid ⇔ the range is a single point m = n ∈ N."""
        low, high = self.resolved_range()
        return high is not None and low == high


@dataclass(frozen=True)
class PathPattern:
    """π (optionally named π/a): alternating node/relationship patterns."""

    elements: Tuple[object, ...]  # NodePattern, RelationshipPattern, ...
    name: Optional[str] = None

    def __post_init__(self):
        elements = self.elements
        if not elements or len(elements) % 2 == 0:
            raise ValueError(
                "a path pattern alternates χ ρ χ ... ρ χ (odd length ≥ 1)"
            )
        for index, element in enumerate(elements):
            expected = NodePattern if index % 2 == 0 else RelationshipPattern
            if not isinstance(element, expected):
                raise ValueError(
                    "element %d must be a %s" % (index, expected.__name__)
                )

    @property
    def node_patterns(self):
        return self.elements[0::2]

    @property
    def relationship_patterns(self):
        return self.elements[1::2]

    @property
    def is_rigid(self):
        """Rigid ⇔ every relationship pattern in it is rigid."""
        return all(rel.is_rigid for rel in self.relationship_patterns)

    @property
    def is_single_node(self):
        return len(self.elements) == 1


def free_variables(pattern):
    """free(π) — all names in node/relationship patterns, plus the path name.

    Accepts a NodePattern, RelationshipPattern, PathPattern or a tuple of
    PathPatterns (the pattern_tuple of a MATCH clause).
    """
    names = []

    def add(name):
        if name is not None and name not in names:
            names.append(name)

    if isinstance(pattern, (list, tuple)):
        for sub_pattern in pattern:
            for name in free_variables(sub_pattern):
                add(name)
        return names
    if isinstance(pattern, PathPattern):
        for element in pattern.elements:
            add(element.name)
        add(pattern.name)
        return names
    if isinstance(pattern, (NodePattern, RelationshipPattern)):
        add(pattern.name)
        return names
    raise TypeError("not a pattern: %r" % (pattern,))
