"""Generic traversal over AST dataclasses.

Every AST node is a frozen dataclass whose fields are either child nodes,
tuples of child nodes, tuples of (key, child) pairs, or plain values.
:func:`children` discovers child nodes structurally, so new node types
need no registration; :func:`walk` yields a node and all descendants in
pre-order.
"""

from __future__ import annotations

import dataclasses


def _is_ast_node(value):
    from repro.ast.clauses import Clause
    from repro.ast.expressions import Expression
    from repro.ast.patterns import NodePattern, PathPattern, RelationshipPattern
    from repro.ast.queries import Query
    from repro.ast.clauses import (
        Projection,
        RemoveLabels,
        RemoveProperty,
        ReturnItem,
        SetLabels,
        SetProperty,
        SetVariable,
        SortItem,
    )

    return isinstance(
        value,
        (
            Expression,
            Clause,
            Query,
            NodePattern,
            RelationshipPattern,
            PathPattern,
            Projection,
            ReturnItem,
            SortItem,
            SetProperty,
            SetVariable,
            SetLabels,
            RemoveProperty,
            RemoveLabels,
        ),
    )


def children(node):
    """Yield the direct AST children of ``node``."""
    if not dataclasses.is_dataclass(node):
        return
    for field_info in dataclasses.fields(node):
        value = getattr(node, field_info.name)
        if _is_ast_node(value):
            yield value
        elif isinstance(value, (tuple, list)):
            for item in value:
                if _is_ast_node(item):
                    yield item
                elif (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and _is_ast_node(item[1])
                ):
                    # (key, expression) pairs in maps, and
                    # (when, then) pairs in CASE alternatives.
                    if _is_ast_node(item[0]):
                        yield item[0]
                    yield item[1]


def walk(node):
    """Yield ``node`` and all descendants, pre-order, depth-first."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(children(current))))
