"""Pretty-printer: AST back to Cypher text.

Used by EXPLAIN output, error messages, and the parser round-trip
property tests (``parse(print(ast))`` must reproduce ``ast``).  The
printer parenthesizes compound sub-expressions conservatively; parentheses
do not appear in the AST, so this is round-trip safe.
"""

from __future__ import annotations

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.ast import queries as qu
from repro.values.base import NodeId, RelId
from repro.values.path import Path

_SIMPLE_IDENTIFIER = None  # compiled lazily


def _identifier(name):
    import re

    global _SIMPLE_IDENTIFIER
    if _SIMPLE_IDENTIFIER is None:
        _SIMPLE_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
    if _SIMPLE_IDENTIFIER.match(name):
        return name
    return "`" + name.replace("`", "``") + "`"


def _string_literal(text):
    escaped = (
        text.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )
    return "'" + escaped + "'"


def print_literal(value):
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return _string_literal(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, list):
        return "[" + ", ".join(print_literal(item) for item in value) + "]"
    if isinstance(value, dict):
        return (
            "{"
            + ", ".join(
                "{}: {}".format(_identifier(key), print_literal(item))
                for key, item in value.items()
            )
            + "}"
        )
    if isinstance(value, (NodeId, RelId, Path)):
        raise ValueError("graph entities have no literal syntax: %r" % (value,))
    return str(value)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

_ATOMIC = (
    ex.Literal,
    ex.Variable,
    ex.Parameter,
    ex.CountStar,
    ex.MapLiteral,
    ex.ListLiteral,
    ex.FunctionCall,
    ex.PropertyAccess,
    ex.ListIndex,
    ex.ListSlice,
    ex.ListComprehension,
    ex.PatternComprehension,
    ex.CaseExpression,
    ex.QuantifiedPredicate,
    ex.Reduce,
)


def _wrap(expression):
    text = print_expression(expression)
    if isinstance(expression, _ATOMIC):
        return text
    return "(" + text + ")"


def print_expression(node):
    """Render an expression node as Cypher text."""
    if isinstance(node, ex.Literal):
        return print_literal(node.value)
    if isinstance(node, ex.Variable):
        return _identifier(node.name)
    if isinstance(node, ex.Parameter):
        return "$" + _identifier(node.name)
    if isinstance(node, ex.PropertyAccess):
        return "{}.{}".format(_wrap(node.subject), _identifier(node.key))
    if isinstance(node, ex.MapLiteral):
        return (
            "{"
            + ", ".join(
                "{}: {}".format(_identifier(key), print_expression(value))
                for key, value in node.items
            )
            + "}"
        )
    if isinstance(node, ex.ListLiteral):
        return "[" + ", ".join(print_expression(item) for item in node.items) + "]"
    if isinstance(node, ex.ListIndex):
        return "{}[{}]".format(_wrap(node.subject), print_expression(node.index))
    if isinstance(node, ex.ListSlice):
        start = print_expression(node.start) if node.start is not None else ""
        end = print_expression(node.end) if node.end is not None else ""
        return "{}[{}..{}]".format(_wrap(node.subject), start, end)
    if isinstance(node, ex.In):
        return "{} IN {}".format(_wrap(node.item), _wrap(node.container))
    if isinstance(node, ex.StringPredicate):
        return "{} {} {}".format(_wrap(node.left), node.operator, _wrap(node.right))
    if isinstance(node, ex.RegexMatch):
        return "{} =~ {}".format(_wrap(node.subject), _wrap(node.pattern))
    if isinstance(node, ex.BinaryLogic):
        return "{} {} {}".format(_wrap(node.left), node.operator, _wrap(node.right))
    if isinstance(node, ex.Not):
        return "NOT {}".format(_wrap(node.operand))
    if isinstance(node, ex.IsNull):
        return "{} IS NULL".format(_wrap(node.operand))
    if isinstance(node, ex.IsNotNull):
        return "{} IS NOT NULL".format(_wrap(node.operand))
    if isinstance(node, ex.Comparison):
        parts = [_wrap(node.operands[0])]
        for operator, operand in zip(node.operators, node.operands[1:]):
            parts.append(operator)
            parts.append(_wrap(operand))
        return " ".join(parts)
    if isinstance(node, ex.Arithmetic):
        return "{} {} {}".format(_wrap(node.left), node.operator, _wrap(node.right))
    if isinstance(node, ex.UnaryMinus):
        return "-{}".format(_wrap(node.operand))
    if isinstance(node, ex.UnaryPlus):
        return "+{}".format(_wrap(node.operand))
    if isinstance(node, ex.FunctionCall):
        distinct = "DISTINCT " if node.distinct else ""
        return "{}({}{})".format(
            node.name,
            distinct,
            ", ".join(print_expression(argument) for argument in node.args),
        )
    if isinstance(node, ex.CountStar):
        return "count(*)"
    if isinstance(node, ex.LabelPredicate):
        return _wrap(node.subject) + "".join(
            ":" + _identifier(label) for label in node.labels
        )
    if isinstance(node, ex.ListComprehension):
        text = "[{} IN {}".format(_identifier(node.variable), print_expression(node.source))
        if node.where is not None:
            text += " WHERE " + print_expression(node.where)
        if node.projection is not None:
            text += " | " + print_expression(node.projection)
        return text + "]"
    if isinstance(node, ex.PatternComprehension):
        text = "[" + print_pattern(node.pattern)
        if node.where is not None:
            text += " WHERE " + print_expression(node.where)
        return text + " | " + print_expression(node.projection) + "]"
    if isinstance(node, ex.PatternPredicate):
        return print_pattern(node.pattern)
    if isinstance(node, ex.QuantifiedPredicate):
        return "{}({} IN {} WHERE {})".format(
            node.quantifier,
            _identifier(node.variable),
            print_expression(node.source),
            print_expression(node.predicate),
        )
    if isinstance(node, ex.Reduce):
        return "reduce({} = {}, {} IN {} | {})".format(
            _identifier(node.accumulator),
            print_expression(node.init),
            _identifier(node.variable),
            print_expression(node.source),
            print_expression(node.expression),
        )
    if isinstance(node, ex.CaseExpression):
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(print_expression(node.operand))
        for when, then in node.alternatives:
            parts.append("WHEN " + print_expression(when))
            parts.append("THEN " + print_expression(then))
        if node.default is not None:
            parts.append("ELSE " + print_expression(node.default))
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, ex.ExistsSubquery):
        inner = ", ".join(print_pattern(p) for p in node.pattern)
        if node.where is not None:
            inner += " WHERE " + print_expression(node.where)
        return "exists(" + inner + ")"
    raise TypeError("cannot print expression %r" % (node,))


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

def _print_property_map(properties):
    if not properties:
        return ""
    return " {" + ", ".join(
        "{}: {}".format(_identifier(key), print_expression(value))
        for key, value in properties
    ) + "}"


def print_node_pattern(node):
    text = "("
    if node.name is not None:
        text += _identifier(node.name)
    text += "".join(":" + _identifier(label) for label in node.labels)
    text += _print_property_map(node.properties)
    return text + ")"


def _print_length(length):
    if length is None:
        return ""
    low, high = length
    if low is None and high is None:
        return "*"
    if low is not None and high is not None and low == high:
        return "*{}".format(low)
    text = "*"
    if low is not None:
        text += str(low)
    text += ".."
    if high is not None:
        text += str(high)
    return text


def print_relationship_pattern(rel):
    body = ""
    if rel.name is not None:
        body += _identifier(rel.name)
    if rel.types:
        body += ":" + "|".join(_identifier(t) for t in rel.types)
    body += _print_length(rel.length)
    body += _print_property_map(rel.properties)
    brackets = "[" + body + "]" if body else ""
    if rel.direction == pt.LEFT_TO_RIGHT:
        return "-{}->".format(brackets)
    if rel.direction == pt.RIGHT_TO_LEFT:
        return "<-{}-".format(brackets)
    return "-{}-".format(brackets)


def print_pattern(pattern):
    """Render a PathPattern (or a tuple of them) as Cypher text."""
    if isinstance(pattern, (tuple, list)):
        return ", ".join(print_pattern(item) for item in pattern)
    parts = []
    for index, element in enumerate(pattern.elements):
        if index % 2 == 0:
            parts.append(print_node_pattern(element))
        else:
            parts.append(print_relationship_pattern(element))
    text = "".join(parts)
    if pattern.name is not None:
        text = "{} = {}".format(_identifier(pattern.name), text)
    return text


# ---------------------------------------------------------------------------
# Clauses and queries
# ---------------------------------------------------------------------------

def _print_projection(projection):
    parts = []
    if projection.distinct:
        parts.append("DISTINCT")
    item_texts = []
    if projection.star:
        item_texts.append("*")
    for item in projection.items:
        text = print_expression(item.expression)
        if item.alias is not None:
            text += " AS " + _identifier(item.alias)
        item_texts.append(text)
    parts.append(", ".join(item_texts))
    if projection.order_by:
        keys = ", ".join(
            print_expression(sort.expression) + ("" if sort.ascending else " DESC")
            for sort in projection.order_by
        )
        parts.append("ORDER BY " + keys)
    if projection.skip is not None:
        parts.append("SKIP " + print_expression(projection.skip))
    if projection.limit is not None:
        parts.append("LIMIT " + print_expression(projection.limit))
    return " ".join(parts)


def _print_set_item(item):
    if isinstance(item, cl.SetProperty):
        return "{}.{} = {}".format(
            _wrap(item.subject), _identifier(item.key), print_expression(item.value)
        )
    if isinstance(item, cl.SetVariable):
        operator = "+=" if item.merge else "="
        return "{} {} {}".format(
            _identifier(item.name), operator, print_expression(item.value)
        )
    if isinstance(item, cl.SetLabels):
        return _identifier(item.name) + "".join(
            ":" + _identifier(label) for label in item.labels
        )
    raise TypeError("cannot print set item %r" % (item,))


def print_clause(clause):
    if isinstance(clause, cl.Match):
        text = "OPTIONAL MATCH " if clause.optional else "MATCH "
        text += print_pattern(clause.pattern)
        if clause.where is not None:
            text += " WHERE " + print_expression(clause.where)
        return text
    if isinstance(clause, cl.With):
        text = "WITH " + _print_projection(clause.projection)
        if clause.where is not None:
            text += " WHERE " + print_expression(clause.where)
        return text
    if isinstance(clause, cl.Return):
        return "RETURN " + _print_projection(clause.projection)
    if isinstance(clause, cl.Unwind):
        return "UNWIND {} AS {}".format(
            print_expression(clause.expression), _identifier(clause.alias)
        )
    if isinstance(clause, cl.Create):
        return "CREATE " + print_pattern(clause.pattern)
    if isinstance(clause, cl.Delete):
        keyword = "DETACH DELETE" if clause.detach else "DELETE"
        return "{} {}".format(
            keyword,
            ", ".join(print_expression(item) for item in clause.expressions),
        )
    if isinstance(clause, cl.SetClause):
        return "SET " + ", ".join(_print_set_item(item) for item in clause.items)
    if isinstance(clause, cl.RemoveClause):
        parts = []
        for item in clause.items:
            if isinstance(item, cl.RemoveProperty):
                parts.append(
                    "{}.{}".format(_wrap(item.subject), _identifier(item.key))
                )
            else:
                parts.append(
                    _identifier(item.name)
                    + "".join(":" + _identifier(label) for label in item.labels)
                )
        return "REMOVE " + ", ".join(parts)
    if isinstance(clause, cl.Merge):
        text = "MERGE " + print_pattern(clause.pattern)
        if clause.on_create:
            text += " ON CREATE SET " + ", ".join(
                _print_set_item(item) for item in clause.on_create
            )
        if clause.on_match:
            text += " ON MATCH SET " + ", ".join(
                _print_set_item(item) for item in clause.on_match
            )
        return text
    if isinstance(clause, cl.FromGraph):
        text = "FROM GRAPH " + _identifier(clause.name)
        if clause.uri is not None:
            text += ' AT "{}"'.format(clause.uri)
        return text
    if isinstance(clause, cl.ReturnGraph):
        text = "RETURN GRAPH " + _identifier(clause.graph_name)
        if clause.pattern is not None:
            text += " OF " + print_pattern(clause.pattern)
        return text
    raise TypeError("cannot print clause %r" % (clause,))


def print_query(query):
    """Render a query node as a single-line Cypher string."""
    if isinstance(query, qu.SingleQuery):
        return " ".join(print_clause(clause) for clause in query.clauses)
    if isinstance(query, qu.UnionQuery):
        keyword = " UNION ALL " if query.all else " UNION "
        return print_query(query.left) + keyword + print_query(query.right)
    raise TypeError("cannot print query %r" % (query,))
