"""Error hierarchy for the repro Cypher engine.

All errors raised by the library derive from :class:`CypherError`, so callers
can catch a single exception type at the public API boundary.  The hierarchy
mirrors the stages of query processing: lexing/parsing (syntax), semantic
analysis (unknown variables, bad aggregation placement), type errors during
evaluation, and runtime/consistency errors from the graph store.
"""

from __future__ import annotations


class CypherError(Exception):
    """Base class for every error raised by the repro engine."""


class CypherSyntaxError(CypherError):
    """Raised by the lexer or parser on malformed query text.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    available, so error messages can point into the query string.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line {}, column {}: {}".format(line, column, message)
        super().__init__(message)


class CypherSemanticError(CypherError):
    """Raised when a syntactically valid query is ill-formed semantically.

    Examples: referencing a variable that is not in scope, re-declaring a
    bound variable with conflicting kind (node vs relationship), nesting
    aggregations, or using an aggregate outside WITH/RETURN.
    """


class CypherTypeError(CypherError):
    """Raised when an expression is applied to a value of the wrong type.

    Cypher is forgiving (many type mismatches yield ``null`` instead), so
    this error only fires where openCypher mandates a hard failure, e.g.
    adding a number to a node or indexing a map with a non-string.
    """


class CypherRuntimeError(CypherError):
    """Raised for runtime failures not tied to a type, e.g. negative LIMIT."""


class ConstraintViolation(CypherRuntimeError):
    """Raised when an update would corrupt the graph.

    The canonical case is deleting a node that still has relationships
    without DETACH DELETE, which would leave dangling edges.
    """


class EntityNotFound(CypherRuntimeError):
    """Raised when a node or relationship id is not present in the graph."""


class GraphNotFound(CypherRuntimeError):
    """Raised when a named graph reference cannot be resolved (Cypher 10)."""


class ParameterNotBound(CypherRuntimeError):
    """Raised when a query references ``$param`` but no value was supplied."""


class TransactionError(CypherRuntimeError):
    """Raised on transaction misuse: double begin, commit without begin,
    writing outside an open multi-statement transaction, or pinning a
    snapshot while uncommitted changes exist."""


class QueryInterrupted(CypherRuntimeError):
    """Base for cooperative interruption of a running statement.

    A write interrupted mid-statement is rolled back atomically before
    this propagates; the store is as if the statement never ran.
    """


class QueryTimeout(QueryInterrupted):
    """Raised when a statement exceeds its ``timeout=``/``deadline=``."""


class QueryCancelled(QueryInterrupted):
    """Raised when a :class:`CancelToken` is triggered mid-statement."""


class EngineOverloadedError(CypherRuntimeError):
    """Raised by the admission gate when no session slot frees up in time."""


class UnsupportedFeature(CypherError):
    """Raised by the planner when a query needs the reference interpreter.

    The production-style planner covers the read-query core; anything it
    cannot plan is executed by the formal-semantics interpreter instead.
    The engine catches this internally in ``auto`` mode.
    """
