"""Tuple-at-a-time execution of logical plans (the Volcano model).

Each operator is interpreted as a Python generator over rows (dicts);
"the final query compilation uses ... a simple tuple-at-a-time
iterator-based execution model" is exactly this.  Expand steps read
adjacency lists directly — no index indirection — matching the paper's
description of why Expand is cheap.

The physical semantics of every operator matches the reference
interpreter; the cross-check tests in ``tests/integration`` assert bag
equality between the two paths for every query class the planner accepts.
"""

from __future__ import annotations

import functools

from repro.exceptions import CypherRuntimeError
from repro.planner import logical as lg
from repro.semantics.expressions import Evaluator
from repro.semantics.matching import _steps_from  # shared traversal kernel
from repro.semantics.morphism import EDGE_ISOMORPHISM
from repro.semantics.table import Table
from repro.values.base import RelId
from repro.values.comparison import equals
from repro.values.ordering import canonical_key, sort_key


class ExecutionContext:
    """Runtime services shared by all operators of one execution."""

    def __init__(self, graph, parameters=None, functions=None, morphism=None):
        self.graph = graph
        self.evaluator = Evaluator(
            graph, parameters, functions, morphism or EDGE_ISOMORPHISM
        )

    def evaluate(self, expression, row):
        return self.evaluator.evaluate(expression, row)

    def predicate(self, expression, row):
        return self.evaluator.evaluate_predicate(expression, row)


def execute_plan(plan, graph, parameters=None, functions=None, morphism=None):
    """Run a logical plan to completion; returns a Table over its fields."""
    context = ExecutionContext(graph, parameters, functions, morphism)
    fields = plan.fields
    rows = [
        {field: row.get(field) for field in fields}
        for row in _run(plan, context, {})
    ]
    return Table(fields, rows)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def _run(op, ctx, argument):
    return _HANDLERS[type(op)](op, ctx, argument)


def _run_init(op, ctx, argument):
    yield {}


def _run_argument(op, ctx, argument):
    yield dict(argument)


# -- node sources -----------------------------------------------------------

def _node_ok(ctx, node_pattern, node, row):
    labels = ctx.graph.labels(node)
    for label in node_pattern.labels:
        if label not in labels:
            return False
    for key, expression in node_pattern.properties:
        expected = ctx.evaluate(expression, row)
        if equals(ctx.graph.property_value(node, key), expected) is not True:
            return False
    return True


def _run_all_nodes_scan(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        for node in ctx.graph.nodes():
            if _node_ok(ctx, op.node_pattern, node, row):
                out = dict(row)
                out[op.variable] = node
                yield out


def _run_label_scan(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        for node in ctx.graph.nodes_with_label(op.label):
            if _node_ok(ctx, op.node_pattern, node, row):
                out = dict(row)
                out[op.variable] = node
                yield out


def _run_node_check(op, ctx, argument):
    from repro.values.base import NodeId

    for row in _run(op.child, ctx, argument):
        node = row.get(op.variable)
        if isinstance(node, NodeId) and _node_ok(
            ctx, op.node_pattern, node, row
        ):
            yield row


# -- Expand -------------------------------------------------------------------

def _rel_ok(ctx, rel_pattern, rel, row):
    for key, expression in rel_pattern.properties:
        expected = ctx.evaluate(expression, row)
        if equals(ctx.graph.property_value(rel, key), expected) is not True:
            return False
    return True


def _rel_conflicts(rel, row, unique_with):
    for name in unique_with:
        bound = row.get(name)
        if isinstance(bound, RelId):
            if bound == rel:
                return True
        elif isinstance(bound, list):
            if rel in bound:
                return True
    return False


def _run_expand(op, ctx, argument):
    from repro.values.base import NodeId

    for row in _run(op.child, ctx, argument):
        source = row.get(op.from_variable)
        if not isinstance(source, NodeId):
            continue
        for rel, target in _steps_from(ctx.graph, op.rel_pattern, source):
            if _rel_conflicts(rel, row, op.unique_with):
                continue
            if not _rel_ok(ctx, op.rel_pattern, rel, row):
                continue
            if op.into:
                if row.get(op.to_variable) != target:
                    continue
            if not _node_ok(ctx, op.node_pattern, target, row):
                continue
            out = dict(row)
            if op.rel_variable is not None:
                out[op.rel_variable] = rel
            if not op.into and op.to_variable is not None:
                out[op.to_variable] = target
            yield out


def _run_var_length_expand(op, ctx, argument):
    from repro.values.base import NodeId

    graph = ctx.graph
    check_unique = bool(ctx.evaluator.morphism.forbids_repeated_relationships)
    cap = op.high
    if cap is None and not check_unique:
        cap = ctx.evaluator.morphism.max_length
        if cap is None:
            raise CypherRuntimeError(
                "unbounded variable-length pattern under homomorphism "
                "needs Morphism.max_length"
            )

    for row in _run(op.child, ctx, argument):
        source = row.get(op.from_variable)
        if not isinstance(source, NodeId):
            continue
        results = []

        def emit(node, rels):
            if op.into:
                if row.get(op.to_variable) != node:
                    return
            if not _node_ok(ctx, op.node_pattern, node, row):
                return
            out = dict(row)
            if op.rel_variable is not None:
                out[op.rel_variable] = list(rels)
            if not op.into and op.to_variable is not None:
                out[op.to_variable] = node
            results.append(out)

        def walk(node, steps, rels, used):
            if steps >= op.low:
                emit(node, rels)
            if cap is not None and steps >= cap:
                return
            for rel, target in _steps_from(graph, op.rel_pattern, node):
                if check_unique and (
                    rel in used or _rel_conflicts(rel, row, op.unique_with)
                ):
                    continue
                if not _rel_ok(ctx, op.rel_pattern, rel, row):
                    continue
                used.add(rel)
                rels.append(rel)
                walk(target, steps + 1, rels, used)
                rels.pop()
                used.discard(rel)

        walk(source, 0, [], set())
        for out in results:
            yield out


# -- tuple operators --------------------------------------------------------------

def _run_filter(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        if ctx.predicate(op.predicate, row):
            yield row


def _run_project(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        out = dict(row)
        for name, expression in op.items:
            out[name] = ctx.evaluate(expression, row)
        yield out


def _run_strip(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        yield {field: row.get(field) for field in op.fields}


def _run_distinct(op, ctx, argument):
    seen = set()
    for row in _run(op.child, ctx, argument):
        key = tuple(canonical_key(row.get(field)) for field in op.fields)
        if key not in seen:
            seen.add(key)
            yield row


def _run_aggregate(op, ctx, argument):
    from repro.semantics.clauses import evaluate_aggregate_item

    groups = {}
    order = []
    for row in _run(op.child, ctx, argument):
        key_values = [
            ctx.evaluate(expression, row) for _name, expression in op.grouping
        ]
        key = tuple(canonical_key(value) for value in key_values)
        if key not in groups:
            groups[key] = (key_values, [])
            order.append(key)
        groups[key][1].append(row)
    if not groups and not op.grouping:
        groups[()] = ([], [])
        order.append(())
    for key in order:
        key_values, rows = groups[key]
        out = {}
        for (name, _expression), value in zip(op.grouping, key_values):
            out[name] = value
        for name, expression in op.aggregates:
            out[name] = evaluate_aggregate_item(
                expression, rows, ctx.evaluator
            )
        yield out


def _run_sort(op, ctx, argument):
    rows = list(_run(op.child, ctx, argument))

    def compare_rows(left, right):
        for item in op.sort_items:
            left_key = sort_key(ctx.evaluate(item.expression, left))
            right_key = sort_key(ctx.evaluate(item.expression, right))
            if left_key < right_key:
                return -1 if item.ascending else 1
            if left_key > right_key:
                return 1 if item.ascending else -1
        return 0

    for row in sorted(rows, key=functools.cmp_to_key(compare_rows)):
        yield row


def _bound_value(expression, ctx, keyword):
    value = ctx.evaluate(expression, {})
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise CypherRuntimeError(
            "%s requires a non-negative integer, got %r" % (keyword, value)
        )
    return value


def _run_skip(op, ctx, argument):
    remaining = _bound_value(op.count, ctx, "SKIP")
    for row in _run(op.child, ctx, argument):
        if remaining > 0:
            remaining -= 1
            continue
        yield row


def _run_limit(op, ctx, argument):
    budget = _bound_value(op.count, ctx, "LIMIT")
    if budget == 0:
        return
    for row in _run(op.child, ctx, argument):
        yield row
        budget -= 1
        if budget == 0:
            return


def _run_unwind(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        value = ctx.evaluate(op.expression, row)
        elements = value if isinstance(value, list) else [value]
        for element in elements:
            out = dict(row)
            out[op.alias] = element
            yield out


def _run_optional(op, ctx, argument):
    for row in _run(op.child, ctx, argument):
        produced = False
        for inner_row in _run(op.inner, ctx, row):
            produced = True
            yield inner_row
        if not produced:
            out = dict(row)
            for name in op.pad_names:
                out[name] = None
            yield out


def _run_union(op, ctx, argument):
    if op.all:
        for row in _run(op.left, ctx, argument):
            yield row
        for row in _run(op.right, ctx, argument):
            yield row
        return
    seen = set()
    for side in (op.left, op.right):
        for row in _run(side, ctx, argument):
            key = tuple(canonical_key(row.get(field)) for field in op.fields)
            if key not in seen:
                seen.add(key)
                yield {field: row.get(field) for field in op.fields}


_HANDLERS = {
    lg.Init: _run_init,
    lg.Argument: _run_argument,
    lg.AllNodesScan: _run_all_nodes_scan,
    lg.NodeByLabelScan: _run_label_scan,
    lg.NodeCheck: _run_node_check,
    lg.Expand: _run_expand,
    lg.VarLengthExpand: _run_var_length_expand,
    lg.Filter: _run_filter,
    lg.ExtendedProject: _run_project,
    lg.Strip: _run_strip,
    lg.Distinct: _run_distinct,
    lg.Aggregate: _run_aggregate,
    lg.Sort: _run_sort,
    lg.Skip: _run_skip,
    lg.Limit: _run_limit,
    lg.Unwind: _run_unwind,
    lg.OptionalApply: _run_optional,
    lg.Union: _run_union,
}
