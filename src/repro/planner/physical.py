"""Slotted, compiled execution of logical plans (the Volcano model).

"The final query compilation uses ... a simple tuple-at-a-time
iterator-based execution model" — each operator is still a Python
generator over rows, but the plan is *compiled* before the first row
flows:

* every operator becomes a closure specialised at plan time — operator
  dispatch, slot lookups, label tuples, adjacency direction and
  relationship-type sets are all resolved once, not per row;
* rows are flat lists indexed by the plan's :class:`SlotMap` (see
  :mod:`repro.planner.slots`); binding a variable copies a list
  (``row[:]``) instead of rebuilding a dict, and unbound slots hold the
  ``MISSING`` sentinel;
* expressions are compiled to nested closures over slot indexes by
  :class:`~repro.semantics.compile.ExpressionCompiler`; constructs that
  bind inner variables (comprehensions, quantifiers, ``reduce``) write
  through pre-allocated scratch slots instead of per-row dicts;
* Expand steps read the store's type-segmented adjacency lists directly —
  no index indirection — matching the paper's description of why Expand
  is cheap.

Rows convert to dict records only at the Table boundary.  The physical
semantics of every operator matches the reference interpreter; the
cross-check tests assert bag equality between the two paths for every
query class the planner accepts.
"""

from __future__ import annotations

import heapq

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.exceptions import (
    CypherRuntimeError,
    CypherSemanticError,
    CypherTypeError,
    QueryInterrupted,
)
from repro.planner import logical as lg
from repro.planner.slots import SlotMap
from repro.semantics.compile import MISSING, ExpressionCompiler
from repro.semantics.expressions import Evaluator
from repro.semantics.morphism import EDGE_ISOMORPHISM, UniquenessKernel
from repro.semantics.table import Table
from repro.values.base import NodeId, RelId
from repro.values.comparison import equals
from repro.values.ordering import canonical_key, sort_key
from repro.values.path import Path


class ExecutionContext:
    """Runtime services shared by all operators of one execution."""

    def __init__(
        self, graph, parameters=None, functions=None, morphism=None,
        slots=None, access_log=None, cancel=None, read_only=False,
    ):
        self.graph = graph
        #: A :class:`~repro.runtime.cancel.Cancellation` or None.  When
        #: set, :func:`_compile` wraps every operator with a strided
        #: check — compile-time specialisation, so the cancel-free hot
        #: path pays nothing — and the write transaction records undo so
        #: an interrupted statement can roll back atomically.
        self.cancel = cancel
        self.evaluator = Evaluator(
            graph, parameters, functions, morphism or EDGE_ISOMORPHISM
        )
        self.kernel = UniquenessKernel(self.evaluator.morphism)
        self.slots = slots if slots is not None else SlotMap()
        #: ``read_only`` unlocks the compiler's property-read CSE: safe
        #: exactly when no operator of this execution mutates the store.
        self.compiler = ExpressionCompiler(
            self.evaluator, self.slots, read_only=read_only
        )
        #: When profiling, a caller-owned list each scan operator appends
        #: its access-path record to: ``{"operator", "variable", "entry",
        #: "estimated_rows", "actual_rows"}``.  None (the default) keeps
        #: the hot path completely free of counting.
        self.access_log = access_log
        self._transaction = None

    def compile(self, expression):
        """Compile an expression to a ``slot_row -> value`` closure."""
        return self.compiler.compile(expression)

    def compile_predicate(self, expression):
        """Compile a WHERE predicate to a strict ``slot_row -> bool``."""
        return self.compiler.compile_predicate(expression)

    def transaction(self):
        """The execution's store transaction (opened on first write op).

        All write operators of one execution share it, so the version
        bump and cache invalidation happen exactly once per statement,
        at :func:`execute_plan`'s commit.
        """
        if self._transaction is None:
            self._transaction = self.graph.write_transaction(
                record_undo=self.cancel is not None
            )
        return self._transaction


def execute_plan(
    plan, graph, parameters=None, functions=None, morphism=None,
    access_log=None, cancel=None, read_only=False,
):
    """Run a logical plan to completion; returns a Table over its fields.

    If the plan contains write operators, their shared store transaction
    commits after the last row (single version bump); an error mid-way
    finalises the transaction instead, so already-applied changes are
    still accounted for — matching the reference executor's
    partial-failure behaviour (real rollback is the engine's schema
    snapshot).  ``access_log`` (a caller-owned list) turns on access-path
    profiling: every scan operator records its entry choice, estimated
    and actual row counts.
    """
    slots = SlotMap.from_plan(plan)
    context = ExecutionContext(
        graph, parameters, functions, morphism, slots, access_log, cancel,
        read_only,
    )
    source = _compile(plan, context)
    fields = plan.fields
    field_slots = [slots[field] for field in fields]
    rows = []
    try:
        for row in source(None):
            record = {}
            for field, slot in zip(fields, field_slots):
                value = row[slot]
                record[field] = None if value is MISSING else value
            rows.append(record)
    except QueryInterrupted:
        # Cancellation/timeout rolls the statement back *atomically* —
        # the transaction recorded undo (see ExecutionContext.transaction)
        # precisely for this path.
        if context._transaction is not None:
            context._transaction.rollback()
        raise
    except BaseException:
        if context._transaction is not None:
            context._transaction.abandon()
        raise
    if context._transaction is not None:
        context._transaction.commit()
    return Table(fields, rows)


# ---------------------------------------------------------------------------
# Dispatch: logical operator -> compiled generator function
# ---------------------------------------------------------------------------

def _compile(op, ctx):
    """Compile an operator subtree to ``argument_row -> iterator of rows``.

    With a cancellation active, every operator's iterator is wrapped
    with a strided deadline/token check between rows, so a statement
    stuck in *any* operator notices within ``CHECK_STRIDE`` rows of
    that operator producing output.  (Operators that can run long
    before yielding — the variable-length expand — check internally
    too.)
    """
    run = _COMPILERS[type(op)](op, ctx)
    cancel = ctx.cancel
    if cancel is None:
        return run
    check = cancel.check

    def guarded(argument):
        for row in run(argument):
            check()
            yield row

    return guarded


def _compile_init(op, ctx):
    slots = ctx.slots

    def run(argument):
        yield slots.new_row()

    return run


def _compile_argument(op, ctx):
    def run(argument):
        yield argument[:]

    return run


# -- shared pattern-element checks ------------------------------------------

def _compile_node_ok(ctx, node_pattern, granted_label=None):
    """Label-and-property check for a node pattern; None when trivial.

    ``granted_label`` names a label the caller already guarantees (a
    NodeByLabelScan's entry label) so it is not re-checked per
    candidate.  Equality against int/str/bool pattern values skips the
    generic three-valued ``equals`` — those types compare natively and
    this predicate runs once per scanned candidate.
    """
    labels = tuple(
        label for label in node_pattern.labels if label != granted_label
    )
    properties = tuple(
        (key, ctx.compile(expression))
        for key, expression in node_pattern.properties
    )
    if not labels and not properties:
        return None
    has_label = ctx.graph.has_label
    node_property = ctx.graph.node_property

    def ok(node, row):
        for label in labels:
            if not has_label(node, label):
                return False
        for key, compiled in properties:
            actual = node_property(node, key)
            expected = compiled(row)
            actual_type = type(actual)
            if actual_type is type(expected) and (
                actual_type is int
                or actual_type is str
                or actual_type is bool
            ):
                if actual != expected:
                    return False
            elif equals(actual, expected) is not True:
                return False
        return True

    return ok


def _compile_rel_ok(ctx, rel_pattern):
    """Property check for a relationship pattern; None when trivial."""
    if not rel_pattern.properties:
        return None
    properties = tuple(
        (key, ctx.compile(expression))
        for key, expression in rel_pattern.properties
    )
    property_value = ctx.graph.property_value

    def ok(rel, row):
        for key, compiled in properties:
            if equals(property_value(rel, key), compiled(row)) is not True:
                return False
        return True

    return ok


def _compile_steps(graph, rel_pattern):
    """Direction-specialised (relationship, next node) step source."""
    types = rel_pattern.resolved_types
    if rel_pattern.direction == pt.LEFT_TO_RIGHT:
        outgoing, tgt = graph.outgoing, graph.tgt

        def steps(node):
            for rel in outgoing(node, types):
                yield rel, tgt(rel)

        return steps
    if rel_pattern.direction == pt.RIGHT_TO_LEFT:
        incoming, src = graph.incoming, graph.src

        def steps(node):
            for rel in incoming(node, types):
                yield rel, src(rel)

        return steps
    touching, other_end = graph.touching, graph.other_end

    def steps(node):
        for rel in touching(node, types):
            yield rel, other_end(rel, node)

    return steps


def _compile_conflicts(ctx, unique_with):
    """Relationship clash check against earlier bindings; None if moot.

    Delegates to the morphism's uniqueness kernel: edge and node
    isomorphism forbid rebinding a relationship, homomorphism enforces
    nothing (the planner already passes empty ``unique_with`` then).
    """
    return ctx.kernel.relationship_clash(
        tuple(ctx.slots[name] for name in unique_with)
    )


def _compile_node_conflicts(ctx, unique_nodes, unique_segments):
    """Node-isomorphism clash check against the chain's earlier nodes.

    With no variable-length segments before this step the check compares
    the candidate against a few slots directly; otherwise it seeds a
    visited set — built once per row (memoised on the row's identity,
    since one Expand probes many relationships of the same row) — that
    includes the segments' reconstructed intermediate nodes.  Returns
    ``(node, row) -> bool`` or None when moot.
    """
    if not unique_segments:
        return ctx.kernel.node_clash(
            tuple(ctx.slots[name] for name in unique_nodes)
        )
    if not ctx.kernel.morphism.forbids_repeated_nodes:
        return None
    kernel = ctx.kernel
    node_slots = tuple(ctx.slots[name] for name in unique_nodes)
    segment_slots = tuple(
        (ctx.slots[from_name], ctx.slots[rel_name])
        for from_name, rel_name in unique_segments
    )
    other_end = ctx.graph.other_end
    cache = {"row": None, "visited": None}

    def clashes(node, row):
        if cache["row"] is not row:
            cache["row"] = row
            cache["visited"] = kernel.visited_nodes(
                node_slots, segment_slots, row, other_end
            )
        return node in cache["visited"]

    return clashes


# -- node sources -----------------------------------------------------------

def _profiled_scan(ctx, op, entry, run):
    """Wrap a scan in an emitted-row counter when profiling is on.

    ``entry`` names the chosen access path (index vs label scan — the
    cost model's observable decision).  Without an access log the run
    closure is returned untouched, so normal executions pay nothing.
    """
    log = ctx.access_log
    if log is None:
        return run
    record = {
        "operator": type(op).__name__,
        "variable": op.variable,
        "entry": entry,
        "estimated_rows": getattr(op, "estimated_rows", None),
        "actual_rows": 0,
    }
    log.append(record)

    def counted(argument):
        for row in run(argument):
            record["actual_rows"] += 1
            yield row

    return counted


def _compile_all_nodes_scan(op, ctx):
    child = _compile(op.child, ctx)
    nodes = ctx.graph.nodes
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern)

    def run(argument):
        for row in child(argument):
            for node in nodes():
                if ok is None or ok(node, row):
                    out = row[:]
                    out[slot] = node
                    yield out

    return _profiled_scan(ctx, op, "all nodes", run)


def _compile_label_scan(op, ctx):
    child = _compile(op.child, ctx)
    nodes_with_label = ctx.graph.nodes_with_label
    label = op.label
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern, granted_label=label)

    def run(argument):
        for row in child(argument):
            for node in nodes_with_label(label):
                if ok is None or ok(node, row):
                    out = row[:]
                    out[slot] = node
                    yield out

    return _profiled_scan(ctx, op, "label scan :%s" % label, run)


def _index_probe(ctx, op):
    """``(row -> candidate ids, entry label)`` for an IndexScan.

    The single home of the probe semantics, shared verbatim by the row
    and batch engines: a null probe (or null ``IN`` list) matches
    nothing, a non-list ``IN`` container raises exactly the compiled
    ``IN``'s type error, and candidate lists come back id-ordered from
    the store.
    """
    graph = ctx.graph
    label, key = op.label, op.key
    if op.probes:
        # Composite equality-prefix probe: evaluate every consumed
        # column's expression per driving row; the store treats a null
        # or NaN anywhere in the prefix as never-true (no candidates).
        keys = op.index_keys
        probes = tuple(ctx.compile(probe) for probe in op.probes)
        index_probe = graph.index_probe

        def candidates(row):
            return index_probe(
                label, keys, tuple(probe(row) for probe in probes)
            )

        keys_text = ",".join(keys)
        if len(probes) < len(keys):
            entry = "index seek :%s(%s) prefix(%d)" % (
                label, keys_text, len(probes),
            )
        else:
            entry = "index seek :%s(%s)" % (label, keys_text)
        return candidates, entry
    probe = ctx.compile(op.probe)
    if op.many:
        lookup_many = graph.index_lookup_many

        def candidates(row):
            values = probe(row)
            if values is None:
                return ()
            if not isinstance(values, list):
                raise CypherTypeError(
                    "IN requires a list, got %r" % (values,)
                )
            return lookup_many(label, key, values)

        return candidates, "index IN :%s(%s)" % (label, key)
    lookup = graph.index_lookup

    def candidates(row):
        return lookup(label, key, probe(row))

    return candidates, "index seek :%s(%s)" % (label, key)


def _index_range_probe(ctx, op):
    """``(row -> candidate ids, entry label)`` for an IndexRangeScan.

    A null bound means the comparison can never be true, so the row
    contributes nothing; a bound outside the sorted segments (list,
    temporal) degrades to the cached label scan list for that row — the
    residual predicate still decides, so the degradation is invisible
    except in speed.  Shared by both engines, like :func:`_index_probe`.
    """
    graph = ctx.graph
    label, key = op.label, op.key
    if op.index_keys:
        return _composite_range_probe(ctx, op)
    if op.prefix is not None:
        prefix = ctx.compile(op.prefix)
        index_prefix = graph.index_prefix

        def candidates(row):
            return index_prefix(label, key, prefix(row))

        return candidates, "index prefix :%s(%s)" % (label, key)
    low = ctx.compile(op.low) if op.low is not None else None
    high = ctx.compile(op.high) if op.high is not None else None
    low_inclusive = op.low_inclusive
    high_inclusive = op.high_inclusive
    index_range = graph.index_range
    label_ids = graph.label_scan_ids

    def candidates(row):
        low_value = high_value = None
        if low is not None:
            low_value = low(row)
            if low_value is None:
                return ()
        if high is not None:
            high_value = high(row)
            if high_value is None:
                return ()
        ids = index_range(
            label, key, low_value, low_inclusive,
            high_value, high_inclusive,
        )
        return ids if ids is not None else label_ids(label)

    return candidates, "index range :%s(%s)" % (label, key)


def _composite_range_probe(ctx, op):
    """Equality-prefix + bounded-column probe over a composite index.

    Null anywhere in the equality prefix, or a null bound, is never
    true — the row contributes nothing.  A bound outside the sorted
    segments degrades to the label scan list exactly like the
    single-key form (the residual still decides).
    """
    graph = ctx.graph
    label, keys = op.label, op.index_keys
    probes = tuple(ctx.compile(probe) for probe in op.prefix_probes)
    seek = graph.index_seek_range
    label_ids = graph.label_scan_ids
    keys_text = ",".join(keys)
    consumed = len(probes)
    if op.prefix is not None:
        starts = ctx.compile(op.prefix)

        def candidates(row):
            return seek(
                label, keys, tuple(probe(row) for probe in probes),
                None, True, None, True, starts(row),
            )

        return candidates, "index prefix :%s(%s) eq(%d)" % (
            label, keys_text, consumed,
        )
    low = ctx.compile(op.low) if op.low is not None else None
    high = ctx.compile(op.high) if op.high is not None else None
    low_inclusive = op.low_inclusive
    high_inclusive = op.high_inclusive

    def candidates(row):
        low_value = high_value = None
        if low is not None:
            low_value = low(row)
            if low_value is None:
                return ()
        if high is not None:
            high_value = high(row)
            if high_value is None:
                return ()
        ids = seek(
            label, keys, tuple(probe(row) for probe in probes),
            low_value, low_inclusive, high_value, high_inclusive,
        )
        return ids if ids is not None else label_ids(label)

    return candidates, "index range :%s(%s) eq(%d)" % (
        label, keys_text, consumed,
    )


def _index_ordered_probe(ctx, op):
    """``(row -> ordered candidate ids, entry label)`` for ordered scans.

    Enumeration is lazy (a generator per driving row): a downstream
    Limit's budget cuts the index walk off early.  Bounds are plan-time
    literal values by construction — the order rewrite only fires for
    bounds that cannot degrade at runtime — so no fallback path exists
    here.
    """
    graph = ctx.graph
    label, keys = op.label, op.index_keys
    probes = tuple(ctx.compile(probe) for probe in op.prefix_probes)
    directions = op.directions
    index_ordered = graph.index_ordered
    low_value = op.low_value
    high_value = op.high_value
    low_inclusive = op.low_inclusive
    high_inclusive = op.high_inclusive
    prefix_value = op.prefix_value

    def candidates(row):
        return index_ordered(
            label, keys, tuple(probe(row) for probe in probes), directions,
            low_value, low_inclusive, high_value, high_inclusive,
            prefix_value,
        )

    order = ",".join(
        "ASC" if ascending else "DESC" for ascending in directions
    )
    return candidates, "index ordered :%s(%s) %s" % (
        label, ",".join(keys), order,
    )


def _compile_probe_scan(op, ctx, candidates, entry):
    """Row-engine scan over per-driving-row index candidate lists.

    Per driving row: evaluate the probe, collect the candidates, then
    apply the pattern's residual node check — the same check the
    label-scan path runs, so over-approximated buckets (unknown-equality
    values) resolve identically.  The probe is only evaluated while the
    label has rows at all, mirroring when the reference path would first
    touch the predicate.
    """
    child = _compile(op.child, ctx)
    label = op.label
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern, granted_label=label)
    label_ids = ctx.graph.label_scan_ids
    fill = _compile_cover_fill(op, ctx)

    def run(argument):
        for row in child(argument):
            if not label_ids(label):
                continue
            for node in candidates(row):
                if ok is None or ok(node, row):
                    out = row[:]
                    out[slot] = node
                    if fill is not None:
                        fill(out, node)
                    yield out

    return _profiled_scan(ctx, op, entry, run)


def _compile_cover_fill(op, ctx):
    """``(row, node) -> None`` writing covered columns, or None.

    A covering scan serves projections straight from the index entry —
    the downstream ExtendedProject reads the synthetic slots instead of
    dereferencing the property map.  Entries only exist for nodes with
    every key column non-null, but the residual node check can admit a
    node through an *over-approximated* bucket whose entry has since
    been recomputed, so a missing entry falls back to the live property
    map — same values, just not served from the index.
    """
    covered = getattr(op, "covered", ())
    if not covered:
        return None
    keys = op.all_keys
    getter = ctx.graph.index_cover_getter(op.label, keys)
    properties = ctx.graph.properties
    targets = tuple(
        (keys.index(key), key, ctx.slots[name]) for key, name in covered
    )

    def fill(row, node):
        values = getter(node)
        if values is not None:
            for position, _key, cover_slot in targets:
                row[cover_slot] = values[position]
        else:
            node_properties = properties(node)
            for _position, key, cover_slot in targets:
                row[cover_slot] = node_properties.get(key)

    return fill


def _compile_index_scan(op, ctx):
    return _compile_probe_scan(op, ctx, *_index_probe(ctx, op))


def _compile_index_range_scan(op, ctx):
    return _compile_probe_scan(op, ctx, *_index_range_probe(ctx, op))


def _compile_index_ordered_scan(op, ctx):
    return _compile_probe_scan(op, ctx, *_index_ordered_probe(ctx, op))


def _compile_node_check(op, ctx):
    child = _compile(op.child, ctx)
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern)

    def run(argument):
        for row in child(argument):
            node = row[slot]
            if isinstance(node, NodeId) and (ok is None or ok(node, row)):
                yield row

    return run


# -- Expand ------------------------------------------------------------------

def _compile_expand(op, ctx):
    child = _compile(op.child, ctx)
    slots = ctx.slots
    from_slot = slots[op.from_variable]
    rel_slot = slots[op.rel_variable] if op.rel_variable is not None else None
    to_slot = slots[op.to_variable] if op.to_variable is not None else None
    steps = _compile_steps(ctx.graph, op.rel_pattern)
    conflicts = _compile_conflicts(ctx, op.unique_with)
    node_conflicts = _compile_node_conflicts(
        ctx, op.unique_nodes, op.unique_segments
    )
    rel_ok = _compile_rel_ok(ctx, op.rel_pattern)
    node_ok = _compile_node_ok(ctx, op.node_pattern)
    into = op.into

    def run(argument):
        for row in child(argument):
            source = row[from_slot]
            if not isinstance(source, NodeId):
                continue
            for rel, target in steps(source):
                if conflicts is not None and conflicts(rel, row):
                    continue
                if rel_ok is not None and not rel_ok(rel, row):
                    continue
                if node_conflicts is not None and node_conflicts(target, row):
                    continue
                if into and row[to_slot] != target:
                    continue
                if node_ok is not None and not node_ok(target, row):
                    continue
                out = row[:]
                if rel_slot is not None:
                    out[rel_slot] = rel
                if not into and to_slot is not None:
                    out[to_slot] = target
                yield out

    return run


def _compile_var_length_expand(op, ctx):
    child = _compile(op.child, ctx)
    slots = ctx.slots
    from_slot = slots[op.from_variable]
    rel_slot = slots[op.rel_variable] if op.rel_variable is not None else None
    to_slot = slots[op.to_variable] if op.to_variable is not None else None
    steps = _compile_steps(ctx.graph, op.rel_pattern)
    conflicts = _compile_conflicts(ctx, op.unique_with)
    rel_ok = _compile_rel_ok(ctx, op.rel_pattern)
    node_ok = _compile_node_ok(ctx, op.node_pattern)
    into = op.into
    low = op.low
    kernel = ctx.kernel
    morphism = kernel.morphism
    check_unique = bool(morphism.forbids_repeated_relationships)
    check_nodes = bool(morphism.forbids_repeated_nodes)
    unique_node_slots = tuple(ctx.slots[name] for name in op.unique_nodes)
    unique_segment_slots = tuple(
        (ctx.slots[from_name], ctx.slots[rel_name])
        for from_name, rel_name in op.unique_segments
    )
    other_end = ctx.graph.other_end
    cap = kernel.traversal_cap(op.high)
    cancel = ctx.cancel

    def run(argument):
        for row in child(argument):
            source = row[from_slot]
            if not isinstance(source, NodeId):
                continue
            results = []
            visited = (
                kernel.visited_nodes(
                    unique_node_slots, unique_segment_slots, row, other_end
                )
                if check_nodes
                else None
            )

            def emit(node, rels, row=row, results=results):
                if into:
                    if row[to_slot] != node:
                        return
                if node_ok is not None and not node_ok(node, row):
                    return
                out = row[:]
                if rel_slot is not None:
                    out[rel_slot] = list(rels)
                if not into and to_slot is not None:
                    out[to_slot] = node
                results.append(out)

            def walk(node, taken, rels, used, row=row, visited=visited):
                if cancel is not None:
                    # Per-step: the frontier can explode combinatorially
                    # before this operator yields its first row.
                    cancel.check()
                if taken >= low:
                    emit(node, rels)
                if cap is not None and taken >= cap:
                    return
                for rel, target in steps(node):
                    if check_unique and (
                        rel in used
                        or (conflicts is not None and conflicts(rel, row))
                    ):
                        continue
                    if rel_ok is not None and not rel_ok(rel, row):
                        continue
                    if check_nodes and target in visited:
                        continue
                    used.add(rel)
                    rels.append(rel)
                    if check_nodes:
                        visited.add(target)
                    walk(target, taken + 1, rels, used)
                    if check_nodes:
                        visited.discard(target)
                    rels.pop()
                    used.discard(rel)

            walk(source, 0, [], set())
            for out in results:
                yield out

    return run


def _compile_reachability_probe(op, ctx):
    """Var-length expand pruned by a reachability index.

    Identical DFS and emission order as
    :func:`_compile_var_length_expand` — the index only removes
    continuations that provably cannot end at the bound target (emission
    requires ``node == row[to_slot]``, and pattern edges are a subset of
    the index's edges, so a pruned subtree contributes zero rows).  When
    the executing graph does not expose the index (snapshot views, plain
    stores) this degrades to the plain walk.
    """
    getter = getattr(ctx.graph, "reachability_index_for", None)
    index = (
        getter(op.rel_pattern.resolved_types) if getter is not None else None
    )
    if index is None:
        return _compile_var_length_expand(op, ctx)
    child = _compile(op.child, ctx)
    slots = ctx.slots
    from_slot = slots[op.from_variable]
    rel_slot = slots[op.rel_variable] if op.rel_variable is not None else None
    to_slot = slots[op.to_variable]
    steps = _compile_steps(ctx.graph, op.rel_pattern)
    conflicts = _compile_conflicts(ctx, op.unique_with)
    rel_ok = _compile_rel_ok(ctx, op.rel_pattern)
    node_ok = _compile_node_ok(ctx, op.node_pattern)
    low = op.low
    kernel = ctx.kernel
    morphism = kernel.morphism
    check_unique = bool(morphism.forbids_repeated_relationships)
    check_nodes = bool(morphism.forbids_repeated_nodes)
    unique_node_slots = tuple(ctx.slots[name] for name in op.unique_nodes)
    unique_segment_slots = tuple(
        (ctx.slots[from_name], ctx.slots[rel_name])
        for from_name, rel_name in op.unique_segments
    )
    other_end = ctx.graph.other_end
    cap = kernel.traversal_cap(op.high)
    cancel = ctx.cancel
    reachable = index.reachable
    forward = op.forward

    def run(argument):
        for row in child(argument):
            source = row[from_slot]
            if not isinstance(source, NodeId):
                continue
            target = row[to_slot]
            if not isinstance(target, NodeId):
                continue  # emission compares against a node; nothing can match
            if forward:
                if not reachable(source, target):
                    continue
            elif not reachable(target, source):
                continue
            results = []
            visited = (
                kernel.visited_nodes(
                    unique_node_slots, unique_segment_slots, row, other_end
                )
                if check_nodes
                else None
            )

            def emit(node, rels, row=row, results=results):
                if row[to_slot] != node:
                    return
                if node_ok is not None and not node_ok(node, row):
                    return
                out = row[:]
                if rel_slot is not None:
                    out[rel_slot] = list(rels)
                results.append(out)

            def walk(node, taken, rels, used, row=row, visited=visited,
                     target=target):
                if cancel is not None:
                    cancel.check()
                if taken >= low:
                    emit(node, rels)
                if cap is not None and taken >= cap:
                    return
                for rel, nxt in steps(node):
                    if check_unique and (
                        rel in used
                        or (conflicts is not None and conflicts(rel, row))
                    ):
                        continue
                    if rel_ok is not None and not rel_ok(rel, row):
                        continue
                    if check_nodes and nxt in visited:
                        continue
                    # The probe: skip continuations the index certifies
                    # can never reach (or be reached by) the target.
                    if forward:
                        if not reachable(nxt, target):
                            continue
                    elif not reachable(target, nxt):
                        continue
                    used.add(rel)
                    rels.append(rel)
                    if check_nodes:
                        visited.add(nxt)
                    walk(nxt, taken + 1, rels, used)
                    if check_nodes:
                        visited.discard(nxt)
                    rels.pop()
                    used.discard(rel)

            walk(source, 0, [], set())
            for out in results:
                yield out

    log = ctx.access_log
    if log is None:
        return run
    record = {
        "operator": type(op).__name__,
        "variable": op.to_variable,
        "entry": "reachability probe %s (%s)" % (
            "<any>" if op.index_types is None
            else ":" + "|".join(op.index_types),
            "forward" if op.forward else "reverse",
        ),
        "estimated_rows": op.estimated_rows,
        "actual_rows": 0,
    }
    log.append(record)

    def counted(argument):
        for row in run(argument):
            record["actual_rows"] += 1
            yield row

    return counted


def _compile_project_path(op, ctx):
    """Assemble the named path of one matched chain (paper Section 4.1).

    Rigid steps read their relationship and target node straight from
    the row; variable-length steps carry a relationship list whose
    intermediate nodes are reconstructed by walking from the previous
    node (each traversed relationship determines its far endpoint).
    Flipped chains — planned from the cheaper end — are reversed back
    into pattern order, which is what the reference matcher produces.
    """
    child = _compile(op.child, ctx)
    slots = ctx.slots
    out_slot = slots[op.variable]
    start_slot = slots[op.start_variable]
    steps = tuple(
        (slots[rel_name], slots[node_name], bool(var_length))
        for rel_name, node_name, var_length in op.steps
    )
    other_end = ctx.graph.other_end
    flip = op.flip

    def run(argument):
        for row in child(argument):
            nodes = [row[start_slot]]
            rels = []
            for rel_slot, node_slot, var_length in steps:
                bound = row[rel_slot]
                if var_length:
                    current = nodes[-1]
                    for rel in bound:
                        current = other_end(rel, current)
                        rels.append(rel)
                        nodes.append(current)
                else:
                    rels.append(bound)
                    nodes.append(row[node_slot])
            path = Path(tuple(nodes), tuple(rels))
            if flip:
                path = path.reverse()
            out = row[:]
            out[out_slot] = path
            yield out

    return run


# -- tuple operators ---------------------------------------------------------

def _compile_filter(op, ctx):
    child = _compile(op.child, ctx)
    predicate = ctx.compile_predicate(op.predicate)

    def run(argument):
        for row in child(argument):
            if predicate(row):
                yield row

    return run


def _compile_project(op, ctx):
    child = _compile(op.child, ctx)
    items = tuple(
        (ctx.slots[name], ctx.compile(expression))
        for name, expression in op.items
    )

    def run(argument):
        for row in child(argument):
            # Closures read the original row while writes land in the
            # copy, so aliases may shadow inputs without corruption.
            out = row[:]
            for slot, compiled in items:
                out[slot] = compiled(row)
            yield out

    return run


def _compile_strip(op, ctx):
    child = _compile(op.child, ctx)
    keep = tuple(ctx.slots[field] for field in op.fields)
    width = len(ctx.slots)

    def run(argument):
        for row in child(argument):
            out = [MISSING] * width
            for slot in keep:
                value = row[slot]
                out[slot] = None if value is MISSING else value
            yield out

    return run


def _compile_distinct(op, ctx):
    child = _compile(op.child, ctx)
    field_slots = tuple(ctx.slots[field] for field in op.fields)

    def run(argument):
        seen = set()
        for row in child(argument):
            key = tuple(
                canonical_key(None if row[slot] is MISSING else row[slot])
                for slot in field_slots
            )
            if key not in seen:
                seen.add(key)
                yield row

    return run


def _compile_aggregate_output(ctx, expression):
    """Fast accumulator loop when the item is exactly one aggregate call.

    Covers the overwhelmingly common ``count(*)``/``sum(x)``-style items;
    anything with surrounding arithmetic or unusual arity drops to the
    record-based ``evaluate_aggregate_item`` fallback.
    """
    from repro.functions.aggregates import _Percentile
    from repro.semantics.clauses import _make_accumulator

    if isinstance(expression, ex.CountStar):

        def count_star(rows):
            accumulator = _make_accumulator(expression)
            include = accumulator.include
            for _row in rows:
                include(True)
            return accumulator.result()

        return count_star
    if (
        isinstance(expression, ex.FunctionCall)
        and expression.name in ex.AGGREGATE_FUNCTION_NAMES
    ):
        if isinstance(_make_accumulator(expression), _Percentile):
            if len(expression.args) != 2:
                return None
            value_of = ctx.compile(expression.args[0])
            percentile_of = ctx.compile(expression.args[1])

            def percentile(rows):
                accumulator = _make_accumulator(expression)
                include_pair = accumulator.include_pair
                for row in rows:
                    include_pair(value_of(row), percentile_of(row))
                return accumulator.result()

            return percentile
        if len(expression.args) != 1:
            return None
        argument_of = ctx.compile(expression.args[0])

        def accumulate(rows):
            accumulator = _make_accumulator(expression)
            include = accumulator.include
            for row in rows:
                include(argument_of(row))
            return accumulator.result()

        return accumulate
    return None


def _compile_aggregate(op, ctx):
    from repro.semantics.clauses import evaluate_aggregate_item

    child = _compile(op.child, ctx)
    slots = ctx.slots
    width = len(slots)
    grouping = tuple(
        (slots[name], ctx.compile(expression))
        for name, expression in op.grouping
    )
    outputs = []
    needs_records = False
    for name, expression in op.aggregates:
        fast = _compile_aggregate_output(ctx, expression)
        if fast is None:
            needs_records = True
        outputs.append((slots[name], expression, fast))
    to_record = slots.to_record
    evaluator = ctx.evaluator

    def run(argument):
        groups = {}
        order = []
        for row in child(argument):
            key_values = [compiled(row) for _slot, compiled in grouping]
            key = tuple(canonical_key(value) for value in key_values)
            entry = groups.get(key)
            if entry is None:
                entry = (key_values, [])
                groups[key] = entry
                order.append(key)
            entry[1].append(row)
        if not groups and not grouping:
            groups[()] = ([], [])
            order.append(())
        for key in order:
            key_values, rows = groups[key]
            out = [MISSING] * width
            for (slot, _compiled), value in zip(grouping, key_values):
                out[slot] = value
            records = (
                [to_record(row) for row in rows] if needs_records else None
            )
            for slot, expression, fast in outputs:
                if fast is not None:
                    out[slot] = fast(rows)
                else:
                    out[slot] = evaluate_aggregate_item(
                        expression, records, evaluator
                    )
            yield out

    return run


def _compile_sort(op, ctx):
    child = _compile(op.child, ctx)
    keys = tuple(
        (ctx.compile(item.expression), bool(item.ascending))
        for item in op.sort_items
    )

    def run(argument):
        rows = list(child(argument))
        # Stable multi-pass sort, least-significant key first, is
        # equivalent to the lexicographic comparator over sort_key()s.
        for compiled, ascending in reversed(keys):
            rows.sort(
                key=lambda row, _compiled=compiled: sort_key(_compiled(row)),
                reverse=not ascending,
            )
        for row in rows:
            yield row

    return run


#: Observable top-k counters: ``pushed`` counts rows ever materialised
#: into a Top heap, ``heap_max`` the largest heap size reached.  The
#: regression tests reset and read these to pin that ``ORDER BY … LIMIT
#: k`` no longer materialises the full sorted table.
TOPK_STATS = {"pushed": 0, "heap_max": 0}


def _heap_item_class(ascending_flags):
    """A heap element class whose ``<`` means *sorts after* (is worse).

    ``heapq`` is a min-heap, so with this ordering the root is always the
    worst retained row: a full heap admits a new row via ``heappushpop``
    exactly when the root is worse than it.  Ties break by sequence
    number (a later row is worse), which reproduces the stable
    Sort + Limit semantics bit for bit.
    """

    class HeapItem:
        __slots__ = ("keys", "seq", "row")

        def __init__(self, keys, seq, row):
            self.keys = keys
            self.seq = seq
            self.row = row

        def __lt__(self, other):
            for mine, theirs, ascending in zip(
                self.keys, other.keys, ascending_flags
            ):
                if mine < theirs:
                    return not ascending
                if theirs < mine:
                    return ascending
            return self.seq > other.seq

    return HeapItem


def _compile_top(op, ctx):
    child = _compile(op.child, ctx)
    keys = tuple(ctx.compile(item.expression) for item in op.sort_items)
    flags = tuple(bool(item.ascending) for item in op.sort_items)
    limit_count = ctx.compile(op.limit)
    skip_count = ctx.compile(op.skip) if op.skip is not None else None
    slots = ctx.slots
    heap_item = _heap_item_class(flags)
    stats = TOPK_STATS

    def run(argument):
        k = _bound_value(limit_count, slots, "LIMIT")
        if skip_count is not None:
            k += _bound_value(skip_count, slots, "SKIP")
        if k == 0:
            return  # LIMIT 0 never pulls the child, like Limit itself
        heap = []
        seq = 0
        for row in child(argument):
            row_keys = tuple(sort_key(compiled(row)) for compiled in keys)
            if len(heap) < k:
                heapq.heappush(heap, heap_item(row_keys, seq, row))
                stats["pushed"] += 1
                if len(heap) > stats["heap_max"]:
                    stats["heap_max"] = len(heap)
            else:
                candidate = heap_item(row_keys, seq, None)
                if heap[0] < candidate:
                    candidate.row = row
                    heapq.heappushpop(heap, candidate)
                    stats["pushed"] += 1
            seq += 1
        for item in sorted(heap, reverse=True):
            yield item.row

    return run


def _bound_value(compiled_count, slots, keyword):
    value = compiled_count(slots.new_row())
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise CypherRuntimeError(
            "%s requires a non-negative integer, got %r" % (keyword, value)
        )
    return value


def _compile_skip(op, ctx):
    child = _compile(op.child, ctx)
    count = ctx.compile(op.count)
    slots = ctx.slots

    def run(argument):
        remaining = _bound_value(count, slots, "SKIP")
        for row in child(argument):
            if remaining > 0:
                remaining -= 1
                continue
            yield row

    return run


def _compile_limit(op, ctx):
    child = _compile(op.child, ctx)
    count = ctx.compile(op.count)
    slots = ctx.slots

    def run(argument):
        budget = _bound_value(count, slots, "LIMIT")
        if budget == 0:
            return
        for row in child(argument):
            yield row
            budget -= 1
            if budget == 0:
                return

    return run


def _compile_unwind(op, ctx):
    child = _compile(op.child, ctx)
    expression = ctx.compile(op.expression)
    slot = ctx.slots[op.alias]

    def run(argument):
        for row in child(argument):
            value = expression(row)
            elements = value if isinstance(value, list) else [value]
            for element in elements:
                out = row[:]
                out[slot] = element
                yield out

    return run


def _compile_optional(op, ctx):
    child = _compile(op.child, ctx)
    inner = _compile(op.inner, ctx)
    pad_slots = tuple(ctx.slots[name] for name in op.pad_names)

    def run(argument):
        for row in child(argument):
            produced = False
            for inner_row in inner(row):
                produced = True
                yield inner_row
            if not produced:
                out = row[:]
                for slot in pad_slots:
                    out[slot] = None
                yield out

    return run


def _compile_union(op, ctx):
    left = _compile(op.left, ctx)
    right = _compile(op.right, ctx)
    if op.all:

        def run_all(argument):
            for row in left(argument):
                yield row
            for row in right(argument):
                yield row

        return run_all
    field_slots = tuple(ctx.slots[field] for field in op.fields)
    width = len(ctx.slots)

    def run(argument):
        seen = set()
        for side in (left, right):
            for row in side(argument):
                key = tuple(
                    canonical_key(None if row[slot] is MISSING else row[slot])
                    for slot in field_slots
                )
                if key not in seen:
                    seen.add(key)
                    out = [MISSING] * width
                    for slot in field_slots:
                        value = row[slot]
                        out[slot] = None if value is MISSING else value
                    yield out

    return run


# -- write operators ---------------------------------------------------------
#
# All mutation flows through the execution's shared StoreTransaction
# (the same kernel the reference executor drives).  Every write operator
# consumes its whole input and settles its writes before emitting the
# first output row: together with the Eager barrier the planner puts in
# front of it, that gives Cypher's snapshot semantics — the clause's
# reads never observe the clause's own writes, while *later* clauses
# (and later rows of the same MERGE) do.


def _compile_eager(op, ctx):
    child = _compile(op.child, ctx)

    def run(argument):
        for row in list(child(argument)):
            yield row

    return run


def _compile_node_spec(ctx, chi, merge):
    """``row -> NodeId`` for one CREATE/MERGE node pattern.

    A bound variable is reused: CREATE insists it carries no extra
    labels or properties, MERGE takes it as-is (the match subplan
    already vetted it).  Unbound patterns create and bind.
    """
    transaction = ctx.transaction()
    slot = ctx.slots[chi.name] if chi.name is not None else None
    name = chi.name
    labels = tuple(chi.labels)
    build_properties = ctx.compiler.compile_property_map(chi.properties)
    constrained = not merge and bool(chi.labels or chi.properties)
    verb = "MERGE through %r" if merge else "cannot CREATE through %r"

    def ensure(row):
        if slot is not None:
            value = row[slot]
            if value is not MISSING:
                if not isinstance(value, NodeId):
                    raise CypherTypeError(
                        (verb + ": bound to %r") % (name, value)
                    )
                if constrained:
                    raise CypherSemanticError(
                        "cannot add labels or properties to the bound "
                        "variable %r inside CREATE" % name
                    )
                return value
        node = transaction.create_node(labels, build_properties(row))
        if slot is not None:
            row[slot] = node
        return node

    return ensure


def _compile_create_path(ctx, path_pattern, merge=False):
    """``row -> None``: instantiate one rigid path, binding new names.

    With ``merge`` the node reuse rule is MERGE's (a bound endpoint is
    taken as-is, labels and all) and an undirected relationship creates
    left-to-right; otherwise CREATE's stricter rules apply.  The row is
    mutated in place (callers pass a fresh copy).
    """
    transaction = ctx.transaction()
    slots = ctx.slots
    elements = path_pattern.elements
    node_specs = [
        _compile_node_spec(ctx, chi, merge) for chi in elements[0::2]
    ]
    rel_specs = []
    for index in range(1, len(elements), 2):
        rho = elements[index]
        rel_specs.append(
            (
                slots[rho.name] if rho.name is not None else None,
                rho.name,
                rho.types[0],
                rho.direction == pt.RIGHT_TO_LEFT,
                ctx.compiler.compile_property_map(rho.properties),
            )
        )
    path_slot = (
        slots[path_pattern.name] if path_pattern.name is not None else None
    )

    def create(row):
        nodes = [node_specs[0](row)]
        rels = []
        current = nodes[0]
        for ensure_node, (rel_slot, rel_name, rel_type, reversed_, props) in zip(
            node_specs[1:], rel_specs
        ):
            next_node = ensure_node(row)
            if reversed_:
                rel = transaction.create_relationship(
                    next_node, current, rel_type, props(row)
                )
            else:
                rel = transaction.create_relationship(
                    current, next_node, rel_type, props(row)
                )
            if rel_slot is not None:
                if merge:
                    if row[rel_slot] is MISSING:
                        row[rel_slot] = rel
                elif row[rel_slot] is not MISSING:
                    raise CypherSemanticError(
                        "relationship variable %r already bound" % rel_name
                    )
                else:
                    row[rel_slot] = rel
            rels.append(rel)
            nodes.append(next_node)
            current = next_node
        if path_slot is not None:
            row[path_slot] = Path(tuple(nodes), tuple(rels))

    return create


#: Expression nodes that can never read the graph: their value depends
#: only on the row, parameters and literals.  Property maps built from
#: these are safe to evaluate *before* the clause's creations land, so
#: CREATE can defer the whole batch into one bulk store call.
_GRAPH_FREE_EXPRESSIONS = (
    ex.Literal,
    ex.Variable,
    ex.Parameter,
    ex.MapLiteral,
    ex.ListLiteral,
    ex.Arithmetic,
    ex.UnaryMinus,
    ex.UnaryPlus,
    ex.Comparison,
    ex.BinaryLogic,
    ex.Not,
    ex.IsNull,
    ex.IsNotNull,
    ex.In,
    ex.StringPredicate,
)


def _graph_free(expression):
    from repro.ast.visitor import walk

    return all(
        isinstance(node, _GRAPH_FREE_EXPRESSIONS) for node in walk(expression)
    )


def _compile_bulk_create(op, ctx):
    """Deferred batch path for ``CREATE (:L {...})``-shaped clauses.

    Applicable when the clause creates exactly one fresh node per row —
    no relationships, no endpoint reuse, no named path — and its
    property expressions cannot read the graph.  Then nothing in the
    clause can observe its own writes, so all property maps evaluate
    first and the nodes land in one bulk store call (single label-index
    and scan-cache touch).  Anything fancier returns None and takes the
    general per-row path.
    """
    if len(op.patterns) != 1:
        return None
    path = op.patterns[0]
    if len(path.elements) != 1 or path.name is not None:
        return None
    chi = path.elements[0]
    if chi.name is not None and chi.name in op.child.fields:
        return None  # possibly bound upstream: reuse semantics applies
    if not all(_graph_free(value) for _key, value in chi.properties):
        return None
    child = _compile(op.child, ctx)
    transaction = ctx.transaction()
    labels = tuple(chi.labels)
    build_properties = ctx.compiler.compile_property_map(chi.properties)
    slot = ctx.slots[chi.name] if chi.name is not None else None

    def run(argument):
        rows = [row[:] for row in child(argument)]
        # Evaluate row-wise so a failing expression still creates the
        # earlier rows' nodes — the same partial state the per-row
        # reference executor leaves behind.
        property_maps = []
        try:
            for row in rows:
                property_maps.append(build_properties(row))
        except BaseException:
            transaction.create_nodes(labels, property_maps)
            raise
        created = transaction.create_nodes(labels, property_maps)
        if slot is not None:
            for row, node in zip(rows, created):
                row[slot] = node
        for row in rows:
            yield row

    return run


def _compile_create(op, ctx):
    bulk = _compile_bulk_create(op, ctx)
    if bulk is not None:
        return bulk
    child = _compile(op.child, ctx)
    create_paths = tuple(
        _compile_create_path(ctx, path) for path in op.patterns
    )

    def run(argument):
        out_rows = []
        for row in child(argument):
            out = row[:]
            for create_path in create_paths:
                create_path(out)
            out_rows.append(out)
        for out in out_rows:
            yield out

    return run


def _compile_set_items(ctx, items):
    """``row -> None`` applying SET/REMOVE items through the transaction."""
    transaction = ctx.transaction()
    graph = ctx.graph
    compiled = []
    for item in items:
        if isinstance(item, cl.SetProperty):
            subject = ctx.compile(item.subject)
            value = ctx.compile(item.value)

            def set_property(row, subject=subject, value=value, key=item.key):
                entity = subject(row)
                if entity is None:
                    return
                if not isinstance(entity, (NodeId, RelId)):
                    raise CypherTypeError("SET expects a node or relationship")
                transaction.set_property(entity, key, value(row))

            compiled.append(set_property)
        elif isinstance(item, cl.SetVariable):
            slot = ctx.slots[item.name]
            value = ctx.compile(item.value)

            def set_variable(
                row, slot=slot, value=value, merge=item.merge, name=item.name
            ):
                entity = row[slot]
                if entity is MISSING or entity is None:
                    return
                if not isinstance(entity, (NodeId, RelId)):
                    raise CypherTypeError("SET expects a node or relationship")
                new_value = value(row)
                if isinstance(new_value, (NodeId, RelId)):
                    new_value = graph.properties(new_value)
                if not isinstance(new_value, dict):
                    raise CypherTypeError(
                        "SET %s = ... expects a map or entity" % name
                    )
                if merge:
                    transaction.merge_properties(entity, new_value)
                else:
                    transaction.replace_properties(entity, new_value)

            compiled.append(set_variable)
        elif isinstance(item, cl.SetLabels):
            slot = ctx.slots[item.name]
            labels = tuple(item.labels)

            def set_labels(row, slot=slot, labels=labels):
                entity = row[slot]
                if entity is MISSING or entity is None:
                    return
                if not isinstance(entity, NodeId):
                    raise CypherTypeError("labels can only be set on nodes")
                for label in labels:
                    transaction.add_label(entity, label)

            compiled.append(set_labels)
        elif isinstance(item, cl.RemoveProperty):
            subject = ctx.compile(item.subject)

            def remove_property(row, subject=subject, key=item.key):
                entity = subject(row)
                if entity is None:
                    return
                if not isinstance(entity, (NodeId, RelId)):
                    raise CypherTypeError(
                        "REMOVE expects a node or relationship"
                    )
                transaction.remove_property(entity, key)

            compiled.append(remove_property)
        elif isinstance(item, cl.RemoveLabels):
            slot = ctx.slots[item.name]
            labels = tuple(item.labels)

            def remove_labels(row, slot=slot, labels=labels):
                entity = row[slot]
                if entity is MISSING or entity is None:
                    return
                if not isinstance(entity, NodeId):
                    raise CypherTypeError(
                        "labels can only be removed from nodes"
                    )
                for label in labels:
                    transaction.remove_label(entity, label)

            compiled.append(remove_labels)
        else:
            raise CypherSemanticError("unknown SET/REMOVE item %r" % (item,))
    applies = tuple(compiled)

    def apply(row):
        for one in applies:
            one(row)

    return apply


def _compile_set(op, ctx):
    child = _compile(op.child, ctx)
    apply = _compile_set_items(ctx, op.items)

    def run(argument):
        rows = list(child(argument))
        for row in rows:
            apply(row)
        for row in rows:
            yield row

    return run


def _compile_remove(op, ctx):
    return _compile_set(op, ctx)


def _compile_delete(op, ctx):
    child = _compile(op.child, ctx)
    transaction = ctx.transaction()
    expressions = tuple(ctx.compile(e) for e in op.expressions)
    detach = op.detach

    def run(argument):
        rows = list(child(argument))
        for row in rows:
            for compiled in expressions:
                transaction.delete_value(compiled(row), detach)
        transaction.flush()
        for row in rows:
            yield row

    return run


def _compile_merge(op, ctx):
    child = _compile(op.child, ctx)
    inner = _compile(op.inner, ctx)
    create_path = _compile_create_path(ctx, op.pattern, merge=True)
    on_create = _compile_set_items(ctx, op.on_create) if op.on_create else None
    on_match = _compile_set_items(ctx, op.on_match) if op.on_match else None

    def run(argument):
        out_rows = []
        for row in child(argument):
            matched = list(inner(row))
            if matched:
                for match_row in matched:
                    out_rows.append(match_row)
                    if on_match is not None:
                        on_match(match_row)
            else:
                out = row[:]
                create_path(out)
                out_rows.append(out)
                if on_create is not None:
                    on_create(out)
        for out in out_rows:
            yield out

    return run


_COMPILERS = {
    lg.Init: _compile_init,
    lg.Argument: _compile_argument,
    lg.AllNodesScan: _compile_all_nodes_scan,
    lg.NodeByLabelScan: _compile_label_scan,
    lg.IndexScan: _compile_index_scan,
    lg.IndexRangeScan: _compile_index_range_scan,
    lg.IndexOrderedScan: _compile_index_ordered_scan,
    lg.NodeCheck: _compile_node_check,
    lg.Expand: _compile_expand,
    lg.VarLengthExpand: _compile_var_length_expand,
    lg.ReachabilityProbe: _compile_reachability_probe,
    lg.ProjectPath: _compile_project_path,
    lg.Filter: _compile_filter,
    lg.ExtendedProject: _compile_project,
    lg.Strip: _compile_strip,
    lg.Distinct: _compile_distinct,
    lg.Aggregate: _compile_aggregate,
    lg.Sort: _compile_sort,
    lg.Top: _compile_top,
    lg.Skip: _compile_skip,
    lg.Limit: _compile_limit,
    lg.Unwind: _compile_unwind,
    lg.OptionalApply: _compile_optional,
    lg.Union: _compile_union,
    lg.Eager: _compile_eager,
    lg.CreatePattern: _compile_create,
    lg.MergePattern: _compile_merge,
    lg.SetProperties: _compile_set,
    lg.RemoveItems: _compile_remove,
    lg.DeleteEntities: _compile_delete,
}
