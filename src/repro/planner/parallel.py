"""Parallel morsel execution: partitioned scans, worker segments, and
deterministic partial-state merge.

The batch engine (:mod:`repro.planner.batch`) already executes read
plans as morsel streams; this module runs several of those streams at
once.  A claimed plan splits into three pieces:

* the **source scan** — the plan's bottom-most operator above ``Init``.
  Its candidate list (all nodes, a label's scan list, or an index
  probe's result, evaluated once on the gather side) is cut into
  contiguous chunks; each chunk becomes a :class:`PartitionScan`, so
  every worker enumerates its slice with the scan's own residual checks
  applied per node, in list order.
* the **worker segment** — the maximal run of morsel-local operators
  above the source (``Filter`` / ``ExtendedProject`` / ``Expand`` /
  ``VarLengthExpand`` / mid-chain scans / ``Unwind`` / ``Strip`` /
  ``NodeCheck``).  These are embarrassingly parallel: each preserves
  per-input order, so the concatenation of the partition streams *in
  partition order* is bitwise the serial stream.
* the **gather** — everything above.  If the first non-pipelined
  operator is ``Aggregate`` / ``Sort`` / ``Top`` / ``Distinct``, the
  workers compute *partial states* for it and the gather merges them
  deterministically (see the ``_*_partial`` / ``_*_merge`` pairs below
  for the exact replay argument); otherwise the gather simply
  concatenates.  The remaining tail operators — including ``Skip`` /
  ``Limit``, further aggregates, anything batch-claimed — compile with
  the ordinary batch compilers over the merged stream, which by the
  order argument above is the serial stream.

**Determinism is load-bearing, not best-effort**: every merge consumes
worker results in partition order (the scheduler contract), so two runs
— and a run against the serial batch engine — produce identical tables,
row order included.  The differential harness holds parallel execution
to row-engine bags at several worker counts and morsel sizes.

:func:`plan_supports_parallel` is a published claim with the same
discipline as :func:`~repro.planner.batch.plan_supports_batch`: an
engine configured for parallelism *must* run a claimed plan through the
exchange when its mode pins it, and the execution's
``QueryResult.parallelism`` records partitions and worker threads, so
silent serial fallback is testable.

The cost gate lives in :func:`repro.planner.cost.estimated_source_rows`:
in ``auto`` mode a plan only fans out when the source scan's estimated
candidate count clears the engine's ``parallel_threshold`` — a fan-out
over a handful of rows pays repartition cost for nothing (the
functional-dependency output bounds of PAPERS.md are the planner-side
rationale: parallelism pays in proportion to the rows the segment, not
the tail, must touch).

Snapshot pins make the consistency contract trivial to honour (the
F-snapshot problem of PAPERS.md): workers share one graph object that
is either the live store outside any write transaction or a
:class:`~repro.graph.snapshot.SnapshotGraph` pinned to one committed
version; no worker can observe a mid-transaction version because
executions never run concurrently with the owning session's writes.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.planner import logical as lg
from repro.planner import batch as bt
from repro.planner.batch import (
    BatchContext,
    DEFAULT_MORSEL_SIZE,
    _aggregate_outputs,
    _bound_columns,
    _canonical_column,
    _compile,
    _compile_scan,
    _concat,
    _materialize,
    _profiled_batch_scan,
    _select,
    plan_supports_batch,
)
from repro.planner.physical import (
    _bound_value,
    _heap_item_class,
    _index_ordered_probe,
    _index_probe,
    _index_range_probe,
)
from repro.planner.slots import SlotMap
from repro.runtime.cancel import AbortToken, Cancellation
from repro.semantics.compile import MISSING
from repro.semantics.table import Table
from repro.values.ordering import canonical_key, sort_key

#: Minimum candidate rows per partition (clamped down to the morsel
#: size, so tiny test graphs still fan out when asked to): below this,
#: extra partitions only buy per-task compile overhead.
PARALLEL_MIN_CHUNK = 512

#: Default ``parallel_threshold``: source scans estimated under this
#: stay serial in ``auto`` mode.  Two minimum-size partitions' worth.
DEFAULT_PARALLEL_THRESHOLD = 2 * PARALLEL_MIN_CHUNK

_SOURCES = (
    lg.AllNodesScan, lg.NodeByLabelScan, lg.IndexScan, lg.IndexRangeScan,
    lg.IndexOrderedScan,
)
#: Morsel-local operators: per-input-order preserving, no cross-morsel
#: state — safe inside a worker segment (mid-chain scans re-enumerate
#: per driving row, which partitions trivially).
_PIPELINED = (
    lg.Filter, lg.ExtendedProject, lg.Strip, lg.NodeCheck, lg.Expand,
    lg.VarLengthExpand, lg.Unwind,
) + _SOURCES
#: Stateful operators the workers compute partial states for.
_PARTIAL = (lg.Aggregate, lg.Sort, lg.Top, lg.Distinct)

_MERGE_NAMES = {
    lg.Aggregate: "aggregate",
    lg.Sort: "sort",
    lg.Top: "top",
    lg.Distinct: "distinct",
}


# ---------------------------------------------------------------------------
# The claim
# ---------------------------------------------------------------------------

def _linearize(plan):
    """Root→leaf operator list of a single-child chain, or None."""
    chain = []
    op = plan
    while True:
        chain.append(op)
        children = op._children()
        if not children:
            return chain
        if len(children) != 1:
            return None
        op = children[0]


def plan_supports_parallel(plan):
    """True when this plan can run through the exchange.

    Published-claim discipline, memoised on the plan object exactly
    like ``plan_supports_batch`` (which it implies): the chain must be
    linear, bottom out in a partitionable source scan over ``Init``,
    and consist solely of batch-claimed operators — which, given the
    batch claim, it then does.  An engine whose mode pins parallelism
    must run a claimed plan multi-worker; the differential tests assert
    the recorded partition counts.
    """
    cached = getattr(plan, "_parallel_supported", None)
    if cached is None:
        cached = False
        if plan_supports_batch(plan):
            chain = _linearize(plan)
            cached = (
                chain is not None
                and len(chain) >= 2
                and isinstance(chain[-1], lg.Init)
                and isinstance(chain[-2], _SOURCES)
            )
        object.__setattr__(plan, "_parallel_supported", cached)
    return cached


def _split(plan):
    """``(worker_ops, partial, tail_ops, source)`` for a claimed plan.

    ``worker_ops`` (root→leaf order) run inside every worker above its
    partition; ``partial`` is the operator whose state the workers
    compute partially (None → plain ordered gather); ``tail_ops``
    (root→leaf) run serially over the merged stream.
    """
    chain = _linearize(plan)
    source = chain[-2]
    index = len(chain) - 3  # operator just above the source scan
    while index >= 0 and isinstance(chain[index], _PIPELINED):
        index -= 1
    partial = None
    if index >= 0 and isinstance(chain[index], _PARTIAL):
        partial = chain[index]
        tail_ops = chain[:index]
    else:
        # Skip/Limit (order-sensitive but stream-order deterministic)
        # or nothing: the cut sits right below, they join the tail.
        tail_ops = chain[:index + 1]
    worker_ops = chain[index + 1:len(chain) - 2]
    return worker_ops, partial, tail_ops, source


# ---------------------------------------------------------------------------
# Partitioned source
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PartitionScan(lg.Operator):
    """One worker's contiguous slice of the source scan's candidates.

    Compiled by the ordinary batch machinery (it registers in the batch
    ``_COMPILERS`` table), reusing the shared chunked-scan kernel — the
    node pattern's residual checks apply per node exactly as the
    original scan would have applied them, in list order.
    """

    child: lg.Operator
    variable: str
    node_pattern: object
    label: Optional[str] = None
    nodes: tuple = ()
    entry: str = "partition"
    estimated_rows: Optional[float] = None
    fields: Tuple[str, ...] = ()
    #: Covering projection carried over from the source index scan:
    #: ``(key, synthetic name)`` pairs plus the index's full key tuple,
    #: so the batch kernel's cover fill works per partition too.
    covered: tuple = ()
    all_keys: tuple = ()

    def _describe_line(self):
        return "PartitionScan({}, {} candidates)".format(
            self.variable, len(self.nodes)
        )

    def _children(self):
        return (self.child,)


def _compile_partition_scan(op, ctx):
    nodes = list(op.nodes)
    return _profiled_batch_scan(
        ctx, op, op.entry,
        _compile_scan(op, ctx, lambda: nodes, granted_label=op.label),
    )


bt._COMPILERS[PartitionScan] = _compile_partition_scan


@dataclass(frozen=True)
class _GatherFeed(lg.Operator):
    """Synthetic tail source replaying the gathered morsel stream."""

    holder: object = None
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "GatherFeed"

    def _children(self):
        return ()


def _compile_gather_feed(op, ctx):
    holder = op.holder

    def run(argument):
        for batch in holder["batches"]:
            yield batch

    return run


bt._COMPILERS[_GatherFeed] = _compile_gather_feed


def _source_candidates(source, ctx):
    """``(candidates, entry, granted_label)`` for the plan's source scan.

    Index probes evaluate once, against the empty driving row — above
    ``Init`` they can only reference parameters — with the row engine's
    "probe only while the label has rows" guard replicated.
    """
    graph = ctx.graph
    if isinstance(source, lg.AllNodesScan):
        return list(graph.all_node_ids()), "all nodes", None
    if isinstance(source, lg.NodeByLabelScan):
        label = source.label
        return (
            list(graph.label_scan_ids(label)),
            "label scan :%s" % label,
            label,
        )
    if isinstance(source, lg.IndexScan):
        candidates_of, entry = _index_probe(ctx, source)
    elif isinstance(source, lg.IndexOrderedScan):
        candidates_of, entry = _index_ordered_probe(ctx, source)
    else:
        candidates_of, entry = _index_range_probe(ctx, source)
    if not graph.label_scan_ids(source.label):
        return [], entry, source.label
    row = [MISSING] * len(ctx.slots)
    return list(candidates_of(row)), entry, source.label


def _partition(candidates, workers, morsel_size):
    """Deterministic contiguous chunks — a pure function of the inputs.

    Chunk count scales with the candidate total (so small inputs stay
    one chunk even when pinned parallel) and caps at twice the worker
    count (enough slack that an uneven chunk cannot idle the pool for
    half the run, few enough that per-task compile cost stays noise).
    """
    total = len(candidates)
    if total == 0 or workers <= 1:
        return [candidates]
    min_chunk = max(1, min(PARALLEL_MIN_CHUNK, morsel_size))
    count = max(1, min(2 * workers, -(-total // min_chunk)))
    base, extra = divmod(total, count)
    chunks = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(candidates[start:start + size])
        start += size
    return chunks


# ---------------------------------------------------------------------------
# Worker-side partial states
# ---------------------------------------------------------------------------
#
# Each _X_partial consumes one worker's segment stream and returns a
# partial state; the matching _X_merge combines the states in partition
# order and yields ordinary batches for the tail.  The invariant behind
# every pair: the concatenation of the partition streams in partition
# order IS the serial stream, so a merge that replays contributions in
# that order reproduces the serial operator bit for bit.

def _aggregate_partial(op, ctx):
    """Per-worker grouping with *replayable* partials.

    ``count`` partials are plain integers (addition is exact); every
    other accumulator keeps its **included-value list** instead of a
    running state, because floating-point accumulation is only
    bit-reproducible in one fixed order — the gather concatenates the
    lists in partition order and replays them through a single fresh
    accumulator, which is exactly the value order the serial engine
    fed it.  Group *order* is first-appearance order, per worker; the
    merge interleaves the per-worker orders the same way.
    """
    slots = ctx.slots
    width = len(slots)
    grouping = tuple(
        (slots[name], ctx.columns.compile(expression))
        for name, expression in op.grouping
    )
    outputs, needs_records = _aggregate_outputs(ctx, op.aggregates)
    to_record = slots.to_record

    def new_states():
        return [
            0 if kind == "count" else []
            for _slot, _expression, kind, _fns in outputs
        ]

    def include(states, outputs_meta, n, cols):
        for position, (_s, _e, kind, arg_fns) in enumerate(outputs_meta):
            if kind == "count":
                states[position] += n
            elif kind == "simple":
                states[position].extend(arg_fns[0](n, cols))
            elif kind == "pair":
                states[position].extend(
                    zip(arg_fns[0](n, cols), arg_fns[1](n, cols))
                )

    def consume(stream):
        if not grouping:
            states = new_states()
            records = [] if needs_records else None
            for n, cols in stream:
                include(states, outputs, n, cols)
                if needs_records:
                    bound = _bound_columns(cols)
                    for index in range(n):
                        records.append(
                            to_record(_materialize(cols, bound, index, width))
                        )
            return [()], {(): ([], states, records)}
        groups = {}
        order = []
        append_key = order.append
        single_key = len(grouping) == 1
        for n, cols in stream:
            key_cols = [compiled(n, cols) for _slot, compiled in grouping]
            keyed = [_canonical_column(column) for column in key_cols]
            keys = keyed[0] if single_key else list(zip(*keyed))
            arg_cols = [
                tuple(fn(n, cols) for fn in arg_fns) if arg_fns else ()
                for _slot, _expression, _kind, arg_fns in outputs
            ]
            bound = _bound_columns(cols) if needs_records else None
            for index, key in enumerate(keys):
                entry = groups.get(key)
                if entry is None:
                    entry = (
                        [column[index] for column in key_cols],
                        new_states(),
                        [] if needs_records else None,
                    )
                    groups[key] = entry
                    append_key(key)
                states = entry[1]
                for position, (_s, _e, kind, _fns) in enumerate(outputs):
                    if kind == "count":
                        states[position] += 1
                    elif kind == "simple":
                        states[position].append(arg_cols[position][0][index])
                    elif kind == "pair":
                        states[position].append((
                            arg_cols[position][0][index],
                            arg_cols[position][1][index],
                        ))
                if needs_records:
                    entry[2].append(
                        to_record(_materialize(cols, bound, index, width))
                    )
        return order, groups

    return consume


def _aggregate_merge(op, ctx, results):
    """Replay the per-worker partials in partition order; one batch out."""
    from repro.semantics.clauses import _make_accumulator
    from repro.semantics.clauses import evaluate_aggregate_item

    slots = ctx.slots
    width = len(slots)
    outputs, _needs_records = _aggregate_outputs(ctx, op.aggregates)
    grouping_slots = tuple(slots[name] for name, _e in op.grouping)

    merged = {}
    order = []
    for chunk_order, chunk_groups in results:
        for key in chunk_order:
            values, states, records = chunk_groups[key]
            entry = merged.get(key)
            if entry is None:
                merged[key] = (values, states, records)
                order.append(key)
                continue
            merged_states = entry[1]
            for position, (_s, _e, kind, _fns) in enumerate(outputs):
                if kind == "count":
                    merged_states[position] += states[position]
                else:
                    merged_states[position].extend(states[position])
            if records:
                entry[2].extend(records)
    if not order:
        return  # grouped aggregation over zero rows yields nothing
    out = [None] * width
    for position, slot in enumerate(grouping_slots):
        out[slot] = [merged[key][0][position] for key in order]
    for position, (slot, expression, kind, _fns) in enumerate(outputs):
        column = []
        for key in order:
            _values, states, records = merged[key]
            if kind == "count":
                column.append(states[position])
            elif kind == "simple":
                accumulator = _make_accumulator(expression)
                include = accumulator.include
                for value in states[position]:
                    include(value)
                column.append(accumulator.result())
            elif kind == "pair":
                accumulator = _make_accumulator(expression)
                include_pair = accumulator.include_pair
                for value, percentile in states[position]:
                    include_pair(value, percentile)
                column.append(accumulator.result())
            else:
                column.append(
                    evaluate_aggregate_item(
                        expression, records, ctx.evaluator
                    )
                )
        out[slot] = column
    yield len(order), out


def _sort_partial(op, ctx):
    """Each worker returns its partition fully sorted, keys attached."""
    keys = tuple(
        (ctx.columns.compile(item.expression), bool(item.ascending))
        for item in op.sort_items
    )
    width = len(ctx.slots)

    def consume(stream):
        batches = list(stream)
        if not batches:
            return None
        n, cols = _concat(batches, width)
        keyed_cols = [
            [sort_key(value) for value in compiled(n, cols)]
            for compiled, _ascending in keys
        ]
        order = list(range(n))
        for keyed, (_compiled, ascending) in zip(
            reversed(keyed_cols), reversed(keys)
        ):
            order.sort(key=keyed.__getitem__, reverse=not ascending)
        return (
            n,
            _select(cols, order),
            [[keyed[index] for index in order] for keyed in keyed_cols],
        )

    return consume


def _sort_merge(op, ctx, results):
    """Merge sorted runs: concat in partition order, re-run the passes.

    The expensive work — expression evaluation and ``sort_key``
    canonicalisation — happened in the workers; the gather re-sorts the
    *precomputed* keys.  Correctness: the multi-pass stable sort is the
    serial algorithm, and rows equal on every key keep their gather
    order, which is (partition, in-partition stream) order — the serial
    stream order.  Speed: timsort galloping-merges the pre-sorted runs
    in near-linear time.
    """
    flags = tuple(bool(item.ascending) for item in op.sort_items)
    width = len(ctx.slots)
    results = [result for result in results if result is not None]
    if not results:
        return
    n, cols = _concat([(r[0], r[1]) for r in results], width)
    keyed_cols = [
        [value for result in results for value in result[2][position]]
        for position in range(len(flags))
    ]
    order = list(range(n))
    for keyed, ascending in zip(reversed(keyed_cols), reversed(flags)):
        order.sort(key=keyed.__getitem__, reverse=not ascending)
    yield n, _select(cols, order)


def _top_partial(op, ctx, k):
    """Local top-k per worker — a superset of the global top-k.

    Any row a worker evicts is beaten by k rows of its own partition,
    all of which precede it in the serial stream or outrank it, so it
    cannot be in the global answer.  Candidates come back as heap items
    carrying their local arrival sequence.
    """
    key_fns = tuple(
        ctx.columns.compile(item.expression) for item in op.sort_items
    )
    flags = tuple(bool(item.ascending) for item in op.sort_items)
    heap_item = _heap_item_class(flags)
    width = len(ctx.slots)

    def consume(stream):
        if k == 0:
            return []
        heap = []
        seq = 0
        for n, cols in stream:
            key_cols = [fn(n, cols) for fn in key_fns]
            bound = _bound_columns(cols)
            for index in range(n):
                row_keys = tuple(sort_key(kc[index]) for kc in key_cols)
                if len(heap) < k:
                    heapq.heappush(
                        heap,
                        heap_item(
                            row_keys, seq,
                            _materialize(cols, bound, index, width),
                        ),
                    )
                else:
                    candidate = heap_item(row_keys, seq, None)
                    if heap[0] < candidate:
                        candidate.row = _materialize(
                            cols, bound, index, width
                        )
                        heapq.heappushpop(heap, candidate)
                seq += 1
        return heap

    return consume


def _top_merge(op, ctx, results, k):
    """Re-admit all candidates in (partition, local seq) order.

    Replaying through a fresh heap with composite sequence numbers is
    the serial admission restricted to rows that can still win — same
    keys, same tie-breaks, same final sorted batch.
    """
    if k == 0:
        return
    flags = tuple(bool(item.ascending) for item in op.sort_items)
    heap_item = _heap_item_class(flags)
    width = len(ctx.slots)
    heap = []
    for chunk_index, items in enumerate(results):
        for item in sorted(items, key=lambda entry: entry.seq):
            candidate = heap_item(
                item.keys, (chunk_index, item.seq), item.row
            )
            if len(heap) < k:
                heapq.heappush(heap, candidate)
            elif heap[0] < candidate:
                heapq.heappushpop(heap, candidate)
    if not heap:
        return
    rows = [item.row for item in sorted(heap, reverse=True)]
    out = []
    first = rows[0]
    for slot in range(width):
        if first[slot] is MISSING:
            out.append(None)  # binding is uniform across the stream
        else:
            out.append([row[slot] for row in rows])
    yield len(rows), out


def _distinct_partial(op, ctx):
    """Locally deduplicated batches, canonical keys attached."""
    field_slots = tuple(ctx.slots[field] for field in op.fields)

    def consume(stream):
        seen = set()
        add = seen.add
        null_key = canonical_key(None)
        out = []
        for n, cols in stream:
            key_cols = [
                _canonical_column(cols[slot])
                if cols[slot] is not None
                else None
                for slot in field_slots
            ]
            keep = []
            kept_keys = []
            for index in range(n):
                key = tuple(
                    keyed[index] if keyed is not None else null_key
                    for keyed in key_cols
                )
                if key not in seen:
                    add(key)
                    keep.append(index)
                    kept_keys.append(key)
            if keep:
                out.append((len(keep), _select(cols, keep), kept_keys))
        return out

    return consume


def _distinct_merge(op, ctx, results):
    """Global first-occurrence filter, walked in partition order."""
    seen = set()
    add = seen.add
    for batches in results:
        for n, cols, keys in batches:
            keep = [
                index for index, key in enumerate(keys) if key not in seen
            ]
            for index in keep:
                add(keys[index])
            if not keep:
                continue
            if len(keep) == n:
                yield n, cols
            else:
                yield len(keep), _select(cols, keep)


# ---------------------------------------------------------------------------
# The exchange itself
# ---------------------------------------------------------------------------

def _segment_plan(source, worker_ops, granted, entry, chunk):
    op = PartitionScan(
        child=lg.Init(),
        variable=source.variable,
        node_pattern=source.node_pattern,
        label=granted,
        nodes=tuple(chunk),
        entry=entry,
        estimated_rows=getattr(source, "estimated_rows", None),
        fields=source.fields,
        covered=getattr(source, "covered", ()),
        all_keys=getattr(source, "all_keys", ()),
    )
    for above in reversed(worker_ops):
        op = replace(above, child=op)
    return op


def execute_plan_parallel(
    plan, graph, parameters=None, functions=None, morphism=None,
    morsel_size=None, access_log=None, cancel=None, scheduler=None,
    workers=None,
):
    """Run a parallel-claimed plan through the exchange.

    Returns ``(table, info)`` — the result table (identical to the
    serial batch engine's, row order included) and the parallelism
    record published on ``QueryResult.parallelism``: scheduler name,
    worker count, partition count, per-worker row/morsel counts and the
    thread that ran each partition (the no-silent-serial proof).

    Cancellation: workers poll their own :class:`Cancellation` sharing
    the statement's deadline and an :class:`AbortToken` that relays the
    caller's token and fires when any sibling fails, so one timeout or
    error stops the whole fan-out at the next morsel boundary.
    """
    from repro.runtime.scheduler import SerialScheduler

    if not plan_supports_parallel(plan):
        raise AssertionError(
            "plan is outside the parallel claim; "
            "plan_supports_parallel should have been consulted"
        )
    if scheduler is None:
        scheduler = SerialScheduler()
    workers = workers or getattr(scheduler, "workers", 1)
    slots = SlotMap.from_plan(plan)
    gather_ctx = BatchContext(
        graph, parameters, functions, morphism, slots, morsel_size,
        access_log, cancel,
    )
    worker_ops, partial, tail_ops, source = _split(plan)
    candidates, entry, granted = _source_candidates(source, gather_ctx)
    chunks = _partition(candidates, workers, gather_ctx.morsel_size)
    merge_name = (
        "ordered" if partial is None else _MERGE_NAMES[type(partial)]
    )

    # Top's budget is row-independent above Init; evaluating it here
    # (it can raise, e.g. a negative LIMIT) matches the serial engine's
    # first-pull timing as observed by the caller.
    top_k = None
    if partial is not None and isinstance(partial, lg.Top):
        top_k = _bound_value(
            gather_ctx.compile(partial.limit), slots, "LIMIT"
        )
        if partial.skip is not None:
            top_k += _bound_value(
                gather_ctx.compile(partial.skip), slots, "SKIP"
            )

    # Shared interruption state: needed whenever the caller can cancel
    # or siblings genuinely run concurrently; the one-worker degenerate
    # case stays poll-free, like the plain batch engine without cancel.
    abort = None
    deadline = None
    if cancel is not None or (
        getattr(scheduler, "workers", 1) > 1 and len(chunks) > 1
    ):
        abort = AbortToken(cancel.token if cancel is not None else None)
        deadline = cancel.deadline if cancel is not None else None

    profiling = access_log is not None

    def make_task(chunk):
        def task():
            worker_log = [] if profiling else None
            worker_cancel = (
                Cancellation(deadline, abort) if abort is not None else None
            )
            ctx = BatchContext(
                graph, parameters, functions, morphism, slots,
                gather_ctx.morsel_size, worker_log, worker_cancel,
            )
            segment = _compile(
                _segment_plan(source, worker_ops, granted, entry, chunk),
                ctx,
            )
            stats = {
                "rows": 0, "morsels": 0,
                "thread": threading.get_ident(),
            }

            def counted():
                for n, cols in segment(None):
                    stats["morsels"] += 1
                    stats["rows"] += n
                    yield n, cols

            if partial is None:
                payload = list(counted())
            elif isinstance(partial, lg.Aggregate):
                payload = _aggregate_partial(partial, ctx)(counted())
            elif isinstance(partial, lg.Sort):
                payload = _sort_partial(partial, ctx)(counted())
            elif isinstance(partial, lg.Top):
                payload = _top_partial(partial, ctx, top_k)(counted())
            else:
                payload = _distinct_partial(partial, ctx)(counted())
            return payload, worker_log, stats

        return task

    outcomes = scheduler.run_tasks(
        [make_task(chunk) for chunk in chunks],
        abort=abort.abort if abort is not None else None,
    )
    payloads = [outcome[0] for outcome in outcomes]
    worker_logs = [outcome[1] for outcome in outcomes]
    worker_stats = [outcome[2] for outcome in outcomes]

    if partial is None:
        merged = (batch for batches in payloads for batch in batches)
    elif isinstance(partial, lg.Aggregate):
        merged = _aggregate_merge(partial, gather_ctx, payloads)
    elif isinstance(partial, lg.Sort):
        merged = _sort_merge(partial, gather_ctx, payloads)
    elif isinstance(partial, lg.Top):
        merged = _top_merge(partial, gather_ctx, payloads, top_k)
    else:
        merged = _distinct_merge(partial, gather_ctx, payloads)

    holder = {"batches": merged}
    tail = _GatherFeed(holder=holder, fields=plan.fields)
    for above in reversed(tail_ops):
        tail = replace(above, child=tail)
    tail_source = _compile(tail, gather_ctx)

    fields = plan.fields
    field_slots = [slots[field] for field in fields]
    rows = []
    append = rows.append
    for n, cols in tail_source(None):
        field_cols = [cols[slot] for slot in field_slots]
        for index in range(n):
            record = {}
            for field, col in zip(fields, field_cols):
                value = col[index] if col is not None else None
                record[field] = None if value is MISSING else value
            append(record)

    if profiling:
        _merge_access_logs(
            access_log, source, entry, worker_logs, worker_stats,
            scheduler, workers,
        )

    info = {
        "workers": workers,
        "scheduler": getattr(scheduler, "name", "serial"),
        "partitions": len(chunks),
        "merge": merge_name,
        "source_rows": len(candidates),
        "worker_rows": [stats["rows"] for stats in worker_stats],
        "worker_morsels": [stats["morsels"] for stats in worker_stats],
        "worker_threads": [stats["thread"] for stats in worker_stats],
    }
    return Table(fields, rows), info


def _merge_access_logs(
    access_log, source, entry, worker_logs, worker_stats, scheduler,
    workers,
):
    """Fold per-worker scan records into one serial-shaped profile.

    Workers compile identical segments, so their logs align by
    position; actual row counts sum.  An extra ``Exchange`` record
    carries the per-worker morsel/row counts ``explain --profile``
    prints — the observable that makes silent serial fallback (one
    partition where many were expected) detectable.
    """
    positions = max((len(log) for log in worker_logs), default=0)
    for position in range(positions):
        records = [
            log[position] for log in worker_logs if len(log) > position
        ]
        template = dict(records[0])
        if position == 0:
            # The partition scans stand in for the original source scan.
            template["operator"] = type(source).__name__
            template["entry"] = entry
            template["estimated_rows"] = getattr(
                source, "estimated_rows", None
            )
        template["actual_rows"] = sum(
            record["actual_rows"] for record in records
        )
        access_log.append(template)
    access_log.append({
        "operator": "Exchange",
        "variable": source.variable,
        "entry": "gather(%s, workers=%d)" % (
            getattr(scheduler, "name", "serial"), workers
        ),
        "estimated_rows": None,
        "actual_rows": sum(stats["rows"] for stats in worker_stats),
        "partitions": len(worker_stats),
        "worker_rows": [stats["rows"] for stats in worker_stats],
        "worker_morsels": [stats["morsels"] for stats in worker_stats],
    })


# ---------------------------------------------------------------------------
# Explain surface
# ---------------------------------------------------------------------------

def describe_parallel(
    plan, workers, scheduler_name="thread", graph=None, morsel_size=None,
):
    """The plan as it would run through the exchange, for ``explain``.

    Rebuilds the operator tree with :class:`~repro.planner.logical.
    Exchange` and :class:`~repro.planner.logical.Gather` nodes at the
    split — a partial operator renders *inside* the exchange (its state
    is computed per worker) with the gather naming the merge it
    performs.  Partition count is the cost model's estimate when a
    graph is supplied, since nothing executes here.
    """
    worker_ops, partial, tail_ops, source = _split(plan)
    partitions = None
    if graph is not None:
        from repro.planner.cost import estimated_source_rows

        estimate = estimated_source_rows(plan, graph)
        if estimate is not None:
            morsel = morsel_size or DEFAULT_MORSEL_SIZE
            min_chunk = max(1, min(PARALLEL_MIN_CHUNK, morsel))
            partitions = max(
                1,
                min(2 * max(1, workers), int(-(-estimate // min_chunk))),
            )
    segment = source
    for above in reversed(worker_ops):
        segment = replace(above, child=segment)
    merge_name = (
        "ordered" if partial is None else _MERGE_NAMES[type(partial)]
    )
    if partial is not None:
        segment = replace(partial, child=segment)
    node = lg.Gather(
        child=lg.Exchange(
            child=segment,
            workers=workers,
            partitions=partitions,
            scheduler=scheduler_name,
        ),
        merge=merge_name,
        fields=plan.fields,
    )
    for above in reversed(tail_ops):
        node = replace(above, child=node)
    return node
