"""Cardinality estimation for plan choices (paper Section 2).

Neo4j plans with "the IDP algorithm, using a cost model" over store
statistics; here the choices that matter are (a) which end of a pattern
chain to start from, (b) which label index to enter through, and (c) the
order in which chains of one MATCH are planned.  The estimates below are
the standard textbook ones over :class:`GraphStatistics`.
"""

from __future__ import annotations

import weakref

from repro.graph.statistics import GraphStatistics

#: *Fallback* selectivity of one property-equality predicate, used only
#: when no property index tracks the (label, key) pair — with an index,
#: equality selectivity is ``1/NDV`` from live distinct-value counters.
PROPERTY_SELECTIVITY = 0.1

#: Textbook fallback selectivity of one half-open range (or prefix)
#: predicate; a closed range (both bounds) compounds two of them.
RANGE_SELECTIVITY = 1.0 / 3.0

#: Assumed element count of an ``IN`` list whose length is not a plan
#: -time constant (e.g. a parameter).
IN_LIST_DEFAULT_SIZE = 3

#: Statistics snapshots per store, keyed on the store's mutation version.
#: Like a production engine, we do not rescan the store on every query —
#: the counters are maintained incrementally (here: recomputed only when
#: the version moved).
_statistics_cache = weakref.WeakKeyDictionary()


def statistics_for(graph):
    """A (possibly cached) GraphStatistics snapshot for ``graph``."""
    version = getattr(graph, "version", None)
    if version is not None:
        try:
            cached_version, cached = _statistics_cache[graph]
            if cached_version == version:
                return cached
        except (KeyError, TypeError):
            pass
    statistics = GraphStatistics(graph)
    if version is not None:
        try:
            _statistics_cache[graph] = (version, statistics)
        except TypeError:
            pass  # unhashable / non-weakrefable graphs just skip the cache
    return statistics


def estimated_source_rows(plan, graph):
    """Estimated candidate rows of a plan's bottom-most source scan.

    The parallelism gate: fan-out only pays when the *source* — not the
    final output — is large, because the workers' cost is proportional
    to the rows the segment touches (the functional-dependency output
    bounds of PAPERS.md make the same argument planner-side).  Walks the
    chain down to the operator above ``Init`` and prices it: the
    planner's own ``estimated_rows`` annotation when present (index
    scans carry their NDV-backed estimate), else label/node counts from
    statistics.  None when the plan has no recognisable source (such a
    plan is outside the parallel claim anyway).
    """
    from repro.planner import logical as lg

    source = None
    op = plan
    while True:
        children = op._children()
        if not children or len(children) != 1:
            break
        if isinstance(children[0], lg.Init):
            source = op
            break
        op = children[0]
    if source is None:
        return None
    annotated = getattr(source, "estimated_rows", None)
    if annotated is not None:
        return float(annotated)
    stats = statistics_for(graph)
    if isinstance(source, lg.AllNodesScan):
        return float(stats.node_count)
    if isinstance(source, lg.NodeByLabelScan):
        return float(stats.nodes_with_label(source.label))
    if isinstance(
        source, (lg.IndexScan, lg.IndexRangeScan, lg.IndexOrderedScan)
    ):
        return float(stats.nodes_with_label(source.label))
    return None


def _literal_value(expression):
    """The plan-time value of a literal bound expression, or ``_MISSING``."""
    from repro.ast import expressions as ex

    if isinstance(expression, ex.Literal):
        return expression.value
    return _MISSING


_MISSING = object()


class CostModel:
    """Cardinality estimates over a statistics snapshot."""

    def __init__(self, graph):
        self.statistics = statistics_for(graph)

    # -- entry points -------------------------------------------------------

    def node_pattern_cardinality(self, node_pattern, bound, sargables=()):
        """Expected matches when this node pattern starts a chain.

        ``sargables`` are the WHERE conjuncts the planner extracted for
        this pattern's variable (see :mod:`repro.planner.access`); they
        sharpen the estimate with the same NDV-backed selectivities the
        access-path choice uses, so chain ordering and endpoint choice
        react to real statistics — the entry point flips when NDV does.
        """
        if node_pattern.name is not None and node_pattern.name in bound:
            return 1.0
        stats = self.statistics
        labels = node_pattern.labels
        if labels:
            estimate = min(
                stats.nodes_with_label(label) for label in labels
            )
        else:
            estimate = stats.node_count
        estimate = float(max(estimate, 0))
        for key, _expression in node_pattern.properties:
            estimate *= self.equality_selectivity(labels, key)
        for sargable in sargables:
            estimate *= self.sargable_selectivity(labels, sargable)
        return max(estimate, 0.0)

    def equality_selectivity(self, labels, key):
        """Selectivity of ``n.key = <value>`` given the pattern's labels.

        ``1/NDV`` from the live counters of the best index tracking the
        key under any of the labels; :data:`PROPERTY_SELECTIVITY` when no
        index covers the pair (the pre-index behaviour, now a fallback).
        """
        best = None
        stats = self.statistics
        for label in labels:
            ndv = stats.property_ndv(label, key)
            if ndv:
                selectivity = 1.0 / ndv
                if best is None or selectivity < best:
                    best = selectivity
        return best if best is not None else PROPERTY_SELECTIVITY

    def sargable_selectivity(self, labels, sargable):
        """Estimated selectivity of one extracted sargable conjunct."""
        kind = sargable.kind
        if kind == "eq":
            return self.equality_selectivity(labels, sargable.key)
        if kind == "in":
            size = sargable.size_hint
            if size is None:
                size = IN_LIST_DEFAULT_SIZE
            return min(
                1.0,
                size * self.equality_selectivity(labels, sargable.key),
            )
        if kind == "range":
            bounds = (sargable.low is not None) + (sargable.high is not None)
            return RANGE_SELECTIVITY ** max(bounds, 1)
        return RANGE_SELECTIVITY  # prefix

    def index_entry_estimate(self, label, key, sargable):
        """Expected rows out of an index scan serving ``sargable``.

        Starts from the index's *entry* count (label nodes that have the
        key at all — others can never qualify), not the label count.
        """
        stats = self.statistics
        entries = stats.indexed_entries(label, key)
        if entries is None:
            return None
        kind = sargable.kind
        if kind == "eq":
            ndv = stats.property_ndv(label, key) or 1
            return entries / float(ndv)
        if kind == "in":
            ndv = stats.property_ndv(label, key) or 1
            size = sargable.size_hint
            if size is None:
                size = IN_LIST_DEFAULT_SIZE
            return min(float(entries), size * entries / float(ndv))
        return entries * self.bound_selectivity(label, (key,), 0, sargable)

    def bound_selectivity(self, label, keys, column, sargable):
        """Selectivity of one range/prefix sargable on an indexed column.

        Histogram-backed when every present bound is a plan-time
        literal (an equi-depth histogram over the live distribution
        replaces the flat :data:`RANGE_SELECTIVITY` guess); the textbook
        constant otherwise — parameters and row-dependent bounds have no
        value to consult the histogram with.  Floored at a small epsilon
        so an empty-looking range still prices strictly positive.
        """
        stats = self.statistics
        if sargable.kind == "prefix":
            value = _literal_value(sargable.value)
            if isinstance(value, str):
                fraction = stats.starts_with_fraction(
                    label, keys, column, value
                )
                if fraction is not None:
                    return max(fraction, 1e-6)
            return RANGE_SELECTIVITY
        low = (
            _literal_value(sargable.low)
            if sargable.low is not None else None
        )
        high = (
            _literal_value(sargable.high)
            if sargable.high is not None else None
        )
        if low is not _MISSING and high is not _MISSING:
            fraction = stats.range_fraction(
                label, keys, column,
                low, sargable.low_inclusive, high, sargable.high_inclusive,
            )
            if fraction is not None:
                return max(fraction, 1e-6)
        bounds = (sargable.low is not None) + (sargable.high is not None)
        return RANGE_SELECTIVITY ** max(bounds, 1)

    def composite_entry_estimate(self, label, candidate):
        """Expected rows out of a composite-index probe, or None.

        The equality prefix divides entries by the *prefix NDV* of the
        consumed length — a direct measurement, so functionally
        dependent columns (whose deeper prefix NDV barely grows) don't
        get the spurious per-column selectivity product independence
        would give.  A trailing range/prefix bound multiplies in its
        histogram-backed selectivity on the bound column.
        """
        stats = self.statistics
        keys = candidate.keys
        entries = stats.indexed_entries(label, keys)
        if entries is None:
            return None
        estimate = float(entries)
        consumed = len(candidate.equalities)
        if consumed:
            ndv = stats.prefix_ndv(label, keys, consumed) or 1
            estimate = entries / float(ndv)
        if candidate.bound is not None:
            estimate *= self.bound_selectivity(
                label, keys, consumed, candidate.bound
            )
        return estimate

    def best_entry_label(self, node_pattern):
        """The most selective label of a node pattern (or None)."""
        if not node_pattern.labels:
            return None
        stats = self.statistics
        return min(
            node_pattern.labels,
            key=lambda label: stats.nodes_with_label(label),
        )

    # -- traversal ---------------------------------------------------------------

    def expand_fanout(self, rel_pattern):
        """Expected relationships per input row for one Expand step."""
        from repro.ast import patterns as pt

        types = rel_pattern.types or None
        direction = (
            "both" if rel_pattern.direction == pt.UNDIRECTED else "out"
        )
        fanout = self.statistics.expand_fanout(types, direction)
        fanout *= PROPERTY_SELECTIVITY ** len(rel_pattern.properties)
        return max(fanout, 0.001)

    def chain_cardinality(self, path_pattern, start_cardinality):
        """Rough output-size estimate of traversing a whole chain."""
        estimate = start_cardinality
        for rho in path_pattern.relationship_patterns:
            fanout = self.expand_fanout(rho)
            low, high = rho.resolved_range()
            steps = high if high is not None else max(low, 3)
            estimate *= fanout ** max(steps, 1)
        return estimate

    def reachability_probe(self, rel_pattern, into, high):
        """The reachability index serving one var-length hop, or None.

        Delegates the soundness gate (bound target, directed, unbounded
        above, covering type set) to
        :func:`repro.planner.access.reachability_candidate`; this seam
        exists so the choice keys on the same statistics snapshot every
        other access-path decision uses — declaring or dropping an index
        bumps the version, which invalidates cached plans.
        """
        from repro.planner.access import reachability_candidate

        return reachability_candidate(
            self.statistics, rel_pattern, into, high
        )
