"""Cardinality estimation for plan choices (paper Section 2).

Neo4j plans with "the IDP algorithm, using a cost model" over store
statistics; here the choices that matter are (a) which end of a pattern
chain to start from, (b) which label index to enter through, and (c) the
order in which chains of one MATCH are planned.  The estimates below are
the standard textbook ones over :class:`GraphStatistics`.
"""

from __future__ import annotations

import weakref

from repro.graph.statistics import GraphStatistics

#: Default selectivity of one property-equality predicate.
PROPERTY_SELECTIVITY = 0.1

#: Statistics snapshots per store, keyed on the store's mutation version.
#: Like a production engine, we do not rescan the store on every query —
#: the counters are maintained incrementally (here: recomputed only when
#: the version moved).
_statistics_cache = weakref.WeakKeyDictionary()


def statistics_for(graph):
    """A (possibly cached) GraphStatistics snapshot for ``graph``."""
    version = getattr(graph, "version", None)
    if version is not None:
        try:
            cached_version, cached = _statistics_cache[graph]
            if cached_version == version:
                return cached
        except (KeyError, TypeError):
            pass
    statistics = GraphStatistics(graph)
    if version is not None:
        try:
            _statistics_cache[graph] = (version, statistics)
        except TypeError:
            pass  # unhashable / non-weakrefable graphs just skip the cache
    return statistics


class CostModel:
    """Cardinality estimates over a statistics snapshot."""

    def __init__(self, graph):
        self.statistics = statistics_for(graph)

    # -- entry points -------------------------------------------------------

    def node_pattern_cardinality(self, node_pattern, bound):
        """Expected matches when this node pattern starts a chain."""
        if node_pattern.name is not None and node_pattern.name in bound:
            return 1.0
        stats = self.statistics
        if node_pattern.labels:
            estimate = min(
                stats.nodes_with_label(label) for label in node_pattern.labels
            )
        else:
            estimate = stats.node_count
        estimate = float(max(estimate, 0))
        estimate *= PROPERTY_SELECTIVITY ** len(node_pattern.properties)
        return max(estimate, 0.0)

    def best_entry_label(self, node_pattern):
        """The most selective label of a node pattern (or None)."""
        if not node_pattern.labels:
            return None
        stats = self.statistics
        return min(
            node_pattern.labels,
            key=lambda label: stats.nodes_with_label(label),
        )

    # -- traversal ---------------------------------------------------------------

    def expand_fanout(self, rel_pattern):
        """Expected relationships per input row for one Expand step."""
        from repro.ast import patterns as pt

        types = rel_pattern.types or None
        direction = (
            "both" if rel_pattern.direction == pt.UNDIRECTED else "out"
        )
        fanout = self.statistics.expand_fanout(types, direction)
        fanout *= PROPERTY_SELECTIVITY ** len(rel_pattern.properties)
        return max(fanout, 0.001)

    def chain_cardinality(self, path_pattern, start_cardinality):
        """Rough output-size estimate of traversing a whole chain."""
        estimate = start_cardinality
        for rho in path_pattern.relationship_patterns:
            fanout = self.expand_fanout(rho)
            low, high = rho.resolved_range()
            steps = high if high is not None else max(low, 3)
            estimate *= fanout ** max(steps, 1)
        return estimate
