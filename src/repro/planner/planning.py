"""Translate a query AST into a logical operator tree.

Planning follows the shape the paper sketches for Neo4j: pick a cheap
entry point per pattern chain — a property-index seek where one serves
a sargable WHERE/inline-map conjunct and the NDV-backed estimate beats
the label scan (:mod:`repro.planner.access` extracts the candidates,
:class:`~repro.planner.cost.CostModel` prices them), the label index
otherwise — then traverse with Expand steps; chains are ordered
greedily by estimated entry cardinality, and for each chain both
endpoints are costed and the cheaper one chosen (a compact stand-in
for IDP's bottom-up join-order search, which degenerates to exactly
this on path-shaped join graphs).  Index pushdown never removes a
predicate: the WHERE survives as the residual Filter, so the access
path only narrows where rows are *found*, never what they must
satisfy.

The planner covers the *entire* standard language — reads and updates.
On the read side: MATCH / OPTIONAL MATCH / WHERE / WITH / UNWIND /
RETURN / UNION, variable-length patterns, aggregation, named paths
(assembled in-pipeline by ``ProjectPath``), and all three of Section 8's
configurable morphisms — edge isomorphism, node isomorphism and
homomorphism — via the morphism-parameterised uniqueness kernel.
Comprehensions, quantifiers and pattern predicates compile to
scratch-slot closures (:mod:`repro.semantics.compile`).  On the write
side: CREATE / MERGE / SET / REMOVE / DELETE plan to slotted write
operators behind an explicit ``Eager`` barrier (Cypher's writes must not
be visible to the writing clause's own reads; the barrier finishes the
upstream scans on the pre-clause snapshot before the first write lands),
with MERGE carrying a compiled match subplan it re-runs per driving row
and all mutations flowing through the store's change-buffer transaction
(:class:`~repro.graph.store.StoreTransaction`).  Only the Cypher 10
graph clauses (FROM GRAPH / RETURN GRAPH) still raise
:class:`UnsupportedFeature` and fall back to the reference
interpreter — by construction the two paths agree on everything both
support.
"""

from __future__ import annotations

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.ast import queries as qu
from repro.ast.expressions import contains_aggregate
from repro.exceptions import CypherSemanticError, UnsupportedFeature
from repro.planner import access
from repro.planner import logical as lg
from repro.planner.cost import CostModel
from repro.semantics.morphism import EDGE_ISOMORPHISM

#: Immutable empty sargable map shared by clauses without a WHERE.
_NO_SARGABLES = {}


def plan_query(query, graph, morphism=EDGE_ISOMORPHISM):
    """Plan a parsed query against a graph; returns the root Operator."""
    builder = _PlanBuilder(graph, morphism)
    return builder.plan(query)


def plan_depends_on_statistics(plan):
    """True if re-planning after a store mutation could change the plan.

    Plan *choices* — entry label, chain order, endpoint direction — come
    from :class:`~repro.planner.cost.CostModel` statistics.  A plan whose
    MATCH part is a single label-free ``AllNodesScan`` (or that scans
    nothing at all, e.g. ``RETURN 1``) offered the cost model no choice,
    so the engine's plan cache can keep it across graph versions; plans
    embed no graph data, so the stale hit is still correct, just possibly
    suboptimal for shapes this predicate rejects.
    """
    scans = 0
    stack = [plan]
    while stack:
        op = stack.pop()
        if isinstance(
            op,
            (
                lg.NodeByLabelScan,
                lg.IndexScan,
                lg.IndexRangeScan,
                lg.IndexOrderedScan,
                lg.Expand,
                lg.VarLengthExpand,
            ),
        ):
            return True
        if isinstance(op, lg.AllNodesScan):
            if op.node_pattern.labels:
                return True  # label present but index skipped: a choice
            scans += 1
            if scans > 1:
                return True  # chain ordering consulted cardinalities
        stack.extend(op._children())
    return False


class _PlanBuilder:
    def __init__(self, graph, morphism):
        self.cost = CostModel(graph)
        self.morphism = morphism
        self._hidden_counter = 0

    # ------------------------------------------------------------------

    def plan(self, query):
        if isinstance(query, qu.UnionQuery):
            left = self.plan(query.left)
            right = self.plan(query.right)
            if set(left.fields) != set(right.fields):
                raise CypherSemanticError(
                    "UNION sides must project the same fields"
                )
            return lg.Union(left, right, all=query.all, fields=left.fields)
        if isinstance(query, qu.SingleQuery):
            return self._plan_single(query)
        raise UnsupportedFeature("cannot plan %r" % (query,))

    def _plan_single(self, query):
        plan = lg.Init()
        for clause in query.clauses:
            plan = self._plan_clause(clause, plan)
        return _apply_covering(plan)

    def _plan_clause(self, clause, plan):
        if isinstance(clause, cl.Match):
            return self._plan_match(clause, plan)
        if isinstance(clause, cl.With):
            return self._plan_projection(
                clause.projection, plan, where=clause.where
            )
        if isinstance(clause, cl.Return):
            return self._plan_projection(clause.projection, plan, where=None)
        if isinstance(clause, cl.Unwind):
            if clause.alias in plan.fields:
                raise CypherSemanticError(
                    "UNWIND alias %r is already in scope" % clause.alias
                )
            return lg.Unwind(
                plan,
                clause.expression,
                clause.alias,
                fields=plan.fields + (clause.alias,),
            )
        if isinstance(clause, cl.Create):
            return self._plan_create(clause, plan)
        if isinstance(clause, cl.Merge):
            return self._plan_merge(clause, plan)
        if isinstance(clause, cl.SetClause):
            return lg.SetProperties(
                self._barrier(plan), clause.items, fields=plan.fields
            )
        if isinstance(clause, cl.RemoveClause):
            return lg.RemoveItems(
                self._barrier(plan), clause.items, fields=plan.fields
            )
        if isinstance(clause, cl.Delete):
            return lg.DeleteEntities(
                self._barrier(plan),
                clause.expressions,
                detach=clause.detach,
                fields=plan.fields,
            )
        raise UnsupportedFeature(
            "the planner does not handle %s; using the interpreter"
            % type(clause).__name__
        )

    # ------------------------------------------------------------------
    # Updating-clause planning
    # ------------------------------------------------------------------

    def _barrier(self, plan):
        """An Eager in front of a write operator, where one is needed.

        ``Init`` and the write operators are already barriers (the unit
        table reads nothing; write operators settle every write before
        emitting), so stacked update clauses pay for one materialisation
        each, not two.
        """
        if isinstance(
            plan,
            (
                lg.Init,
                lg.Eager,
                lg.CreatePattern,
                lg.MergePattern,
                lg.SetProperties,
                lg.RemoveItems,
                lg.DeleteEntities,
            ),
        ):
            return plan
        return lg.Eager(plan, fields=plan.fields)

    def _plan_create(self, clause, plan):
        from repro.updates.executor import validate_create_pattern

        for path_pattern in clause.pattern:
            validate_create_pattern(path_pattern)
        new_names = tuple(
            name
            for name in pt.free_variables(clause.pattern)
            if name not in plan.fields
        )
        return lg.CreatePattern(
            self._barrier(plan),
            tuple(clause.pattern),
            fields=plan.fields + new_names,
        )

    def _plan_merge(self, clause, plan):
        from repro.updates.executor import validate_merge_pattern

        validate_merge_pattern(clause.pattern)
        barrier = self._barrier(plan)
        argument = lg.Argument(fields=plan.fields)
        inner = self._plan_pattern_tuple(argument, (clause.pattern,))
        new_names = tuple(
            name
            for name in pt.free_variables((clause.pattern,))
            if name not in plan.fields
        )
        return lg.MergePattern(
            barrier,
            clause.pattern,
            inner,
            on_create=tuple(clause.on_create),
            on_match=tuple(clause.on_match),
            fields=plan.fields + new_names,
        )

    # ------------------------------------------------------------------
    # MATCH planning
    # ------------------------------------------------------------------

    def _hidden(self, kind):
        self._hidden_counter += 1
        return "#{}{}".format(kind, self._hidden_counter)

    def _plan_match(self, clause, plan):
        # Sargable conjuncts of this MATCH's WHERE steer access-path
        # and chain-order choices; the WHERE itself always stays as the
        # residual Filter below, so the extraction never changes what a
        # row must satisfy — only how candidate rows are found.
        sargables = access.collect_sargable(clause.where)
        witnesses = access.collect_witnesses(clause.where)
        if clause.optional:
            argument = lg.Argument(fields=plan.fields)
            inner = self._plan_pattern_tuple(
                argument, clause.pattern, sargables, witnesses
            )
            if clause.where is not None:
                inner = lg.Filter(inner, clause.where, fields=inner.fields)
            pad = tuple(
                name for name in inner.fields if name not in plan.fields
            )
            return lg.OptionalApply(
                plan, inner, pad_names=pad, fields=plan.fields + pad
            )
        plan = self._plan_pattern_tuple(
            plan, clause.pattern, sargables, witnesses
        )
        if clause.where is not None:
            plan = lg.Filter(plan, clause.where, fields=plan.fields)
        return plan

    def _usable_sargables(self, variable, sargables, bound):
        """The variable's sargable conjuncts whose probes are in scope.

        A probe evaluates per driving row, *before* the scan binds its
        variable, so every variable it reads must already be bound —
        probes over outer bindings make the scan an index nested-loop
        join; anything else is rejected here.
        """
        usable = []
        for sargable in sargables.get(variable, ()):
            if all(
                access.free_variables(expression) <= bound
                for expression in sargable.probe_expressions()
            ):
                usable.append(sargable)
        return usable

    def _probe_deferral(self, chain, bound, other_names):
        """True when planning ``chain`` now would forfeit an enabled probe.

        A reachability index can only serve a var-length hop whose far
        endpoint is *already bound* (there must be a target to certify
        against).  When such a hop's endpoint is still unbound but is
        named by another remaining chain, deferring this chain lets that
        chain bind the endpoint first — turning an unbounded enumeration
        into an index probe.  Without a covering index this never fires,
        so plans on index-less graphs are byte-identical to before.
        """
        elements = chain.elements
        for index in range(1, len(elements), 2):
            rho = elements[index]
            if not rho.is_variable_length:
                continue
            _low, high = rho.resolved_range()
            if self.cost.reachability_probe(rho, True, high) is None:
                continue
            for endpoint in (elements[index - 1], elements[index + 1]):
                name = endpoint.name
                if name is not None and name not in bound and name in other_names:
                    return True
        return False

    def _plan_pattern_tuple(
        self, plan, patterns, sargables=_NO_SARGABLES,
        witnesses=_NO_SARGABLES,
    ):
        bound = set(plan.fields)
        unique_rels = []
        remaining = list(patterns)
        while remaining:
            best = None
            for index, chain in enumerate(remaining):
                other_names = {
                    element.name
                    for position, other in enumerate(remaining)
                    if position != index
                    for element in other.node_patterns
                    if element.name is not None
                }
                defer = self._probe_deferral(chain, bound, other_names)
                for reverse in (False, True):
                    endpoint = (
                        chain.node_patterns[-1]
                        if reverse
                        else chain.node_patterns[0]
                    )
                    cardinality = self.cost.node_pattern_cardinality(
                        endpoint,
                        bound,
                        self._usable_sargables(
                            endpoint.name, sargables, bound
                        )
                        if endpoint.name is not None
                        else (),
                    )
                    key = (defer, cardinality, index, reverse)
                    if best is None or key < best[0]:
                        best = (key, index, reverse)
            _key, index, reverse = best
            chain = remaining.pop(index)
            if reverse:
                chain = _reverse_chain(chain)
            plan = self._plan_chain(
                plan, chain, bound, unique_rels, flipped=reverse,
                sargables=sargables, witnesses=witnesses,
            )
        return plan

    def _entry_scan(
        self, plan, name, pattern, bound, sargables, fields,
        witnesses=_NO_SARGABLES,
    ):
        """The cost-chosen access path binding a chain's entry node.

        Candidates: the label scan over the most selective label; for
        every single-key ``(label of the pattern, key)`` index, each
        usable sargable conjunct (WHERE-extracted or from the inline
        property map); and for every composite index, the longest
        usable equality prefix plus at most one range/prefix column
        (usable only when the remaining columns are witnessed non-null —
        a composite entry only exists when *every* column is non-null,
        so an unwitnessed prefix probe would under-approximate).
        Estimates come from the live NDV / prefix-NDV / histogram
        counters; the index wins ties because it reads at most the rows
        the label scan would.  Without labels there is no index to
        enter through and the scan stays AllNodesScan.
        """
        stats = self.cost.statistics
        entry_label = self.cost.best_entry_label(pattern)
        if entry_label is None:
            return lg.AllNodesScan(
                plan, name, pattern, fields=fields,
                estimated_rows=float(stats.node_count),
            )
        label_estimate = float(stats.nodes_with_label(entry_label))
        candidates = self._usable_sargables(name, sargables, bound)
        candidates += [
            sargable
            for sargable in access.inline_sargables(pattern, name)
            if all(
                access.free_variables(expression) <= bound
                for expression in sargable.probe_expressions()
            )
        ]
        best = None
        for label in pattern.labels:
            for sargable in candidates:
                if not stats.has_property_index(label, sargable.key):
                    continue
                estimate = self.cost.index_entry_estimate(
                    label, sargable.key, sargable
                )
                if estimate is None:
                    continue
                if best is None or estimate < best[0]:
                    best = (estimate, label, sargable)
        witnessed = set(witnesses.get(name, ())) if name is not None else set()
        witnessed.update(key for key, _expression in pattern.properties)
        for label in pattern.labels:
            for keys in stats.composite_indexes(label):
                if len(keys) == 1:
                    continue  # priced by the single-key loop above
                candidate = access.match_composite(
                    keys, candidates, witnessed
                )
                if candidate is None:
                    continue
                estimate = self.cost.composite_entry_estimate(
                    label, candidate
                )
                if estimate is None:
                    continue
                if best is None or estimate < best[0]:
                    best = (estimate, label, candidate)
        if best is not None and best[0] <= label_estimate:
            estimate, label, chosen = best
            if isinstance(chosen, access.CompositeCandidate):
                return self._composite_scan(
                    plan, name, label, chosen, pattern, fields, estimate
                )
            sargable = chosen
            if sargable.kind in ("eq", "in"):
                return lg.IndexScan(
                    plan, name, label, sargable.key, sargable.value,
                    pattern, many=sargable.kind == "in", fields=fields,
                    estimated_rows=estimate,
                )
            return lg.IndexRangeScan(
                plan, name, label, sargable.key, pattern,
                low=sargable.low,
                low_inclusive=sargable.low_inclusive,
                high=sargable.high,
                high_inclusive=sargable.high_inclusive,
                prefix=sargable.value if sargable.kind == "prefix" else None,
                fields=fields,
                estimated_rows=estimate,
            )
        return lg.NodeByLabelScan(
            plan, name, entry_label, pattern, fields=fields,
            estimated_rows=label_estimate,
        )

    def _composite_scan(
        self, plan, name, label, candidate, pattern, fields, estimate,
    ):
        """Compile one :class:`~repro.planner.access.CompositeCandidate`."""
        probes = tuple(s.value for s in candidate.equalities)
        if candidate.bound is None:
            return lg.IndexScan(
                plan, name, label, candidate.keys[0], probes[0],
                pattern, fields=fields, estimated_rows=estimate,
                index_keys=candidate.keys, probes=probes,
            )
        bound = candidate.bound
        return lg.IndexRangeScan(
            plan, name, label, bound.key, pattern,
            low=bound.low,
            low_inclusive=bound.low_inclusive,
            high=bound.high,
            high_inclusive=bound.high_inclusive,
            prefix=bound.value if bound.kind == "prefix" else None,
            fields=fields,
            estimated_rows=estimate,
            index_keys=candidate.keys,
            prefix_probes=probes,
        )

    def _plan_chain(
        self, plan, chain, bound, unique_rels, flipped=False,
        sargables=_NO_SARGABLES, witnesses=_NO_SARGABLES,
    ):
        elements = chain.elements
        first = elements[0]
        current_name = first.name or self._hidden("node")
        visible = list(plan.fields)
        # Node variables of *this* chain in traversal order: node
        # isomorphism is scoped per path pattern, matching the matcher.
        # Variable-length segments are tracked separately because their
        # intermediate nodes (unbound to any slot) also count.
        chain_nodes = [current_name]
        chain_segments = []
        path_steps = []

        if current_name in bound:
            if first.labels or first.properties:
                plan = lg.NodeCheck(
                    plan, current_name, first, fields=tuple(visible)
                )
        else:
            if not _is_hidden(current_name):
                visible.append(current_name)
            plan = self._entry_scan(
                plan, current_name, first, bound, sargables, tuple(visible),
                witnesses,
            )
            bound.add(current_name)

        for index in range(1, len(elements), 2):
            rho = elements[index]
            chi = elements[index + 1]
            to_name = chi.name or self._hidden("node")
            into = to_name in bound
            rel_prebound = rho.name is not None and rho.name in bound
            rel_name = (
                self._hidden("rel") if rel_prebound else (rho.name or self._hidden("rel"))
            )
            if not into and not _is_hidden(to_name):
                visible.append(to_name)
            if rho.name is not None and not rel_prebound and not _is_hidden(rel_name):
                visible.append(rel_name)
            unique = (
                tuple(unique_rels)
                if self.morphism.forbids_repeated_relationships
                else ()
            )
            if self.morphism.forbids_repeated_nodes:
                unique_nodes = tuple(chain_nodes)
                unique_segments = tuple(chain_segments)
            else:
                unique_nodes = ()
                unique_segments = ()
            low, high = rho.resolved_range()
            if rho.is_variable_length:
                probe = self.cost.reachability_probe(rho, into, high)
                if probe is not None:
                    plan = lg.ReachabilityProbe(
                        plan,
                        from_variable=current_name,
                        to_variable=to_name,
                        rel_variable=rel_name,
                        rel_pattern=rho,
                        node_pattern=chi,
                        low=low,
                        high=high,
                        into=into,
                        unique_with=unique,
                        unique_nodes=unique_nodes,
                        unique_segments=unique_segments,
                        fields=tuple(visible),
                        index_types=probe.index_types,
                        forward=probe.forward,
                    )
                else:
                    plan = lg.VarLengthExpand(
                        plan,
                        from_variable=current_name,
                        to_variable=to_name,
                        rel_variable=rel_name,
                        rel_pattern=rho,
                        node_pattern=chi,
                        low=low,
                        high=high,
                        into=into,
                        unique_with=unique,
                        unique_nodes=unique_nodes,
                        unique_segments=unique_segments,
                        fields=tuple(visible),
                    )
                chain_segments.append((current_name, rel_name))
            else:
                plan = lg.Expand(
                    plan,
                    from_variable=current_name,
                    to_variable=to_name,
                    rel_variable=rel_name,
                    rel_pattern=rho,
                    node_pattern=chi,
                    into=into,
                    unique_with=unique,
                    unique_nodes=unique_nodes,
                    unique_segments=unique_segments,
                    fields=tuple(visible),
                )
            if rel_prebound:
                # A relationship variable from an earlier clause constrains
                # this traversal: keep only rows where they coincide.
                plan = lg.Filter(
                    plan,
                    ex.Comparison(
                        ("=",),
                        (ex.Variable(rel_name), ex.Variable(rho.name)),
                    ),
                    fields=tuple(visible),
                )
            path_steps.append((rel_name, to_name, rho.is_variable_length))
            unique_rels.append(rel_name)
            chain_nodes.append(to_name)
            bound.add(rel_name)
            bound.add(to_name)
            current_name = to_name
        if chain.name is not None:
            plan = self._plan_named_path(
                plan, chain.name, chain_nodes[0], path_steps, flipped,
                bound, visible,
            )
        return plan

    def _plan_named_path(
        self, plan, path_name, start_name, path_steps, flipped, bound, visible
    ):
        """Bind ``path_name`` to the chain's traversal (Section 4.1 paths).

        A re-used path name (``MATCH p = ... MATCH p = ...``) assembles
        into a hidden slot and keeps only rows where the two paths
        coincide, mirroring the matcher's consistency check.
        """
        rebound = path_name in bound
        target = self._hidden("path") if rebound else path_name
        if not rebound:
            visible.append(path_name)
            bound.add(path_name)
        plan = lg.ProjectPath(
            plan,
            variable=target,
            start_variable=start_name,
            steps=tuple(path_steps),
            flip=flipped,
            fields=tuple(visible),
        )
        if rebound:
            plan = lg.Filter(
                plan,
                ex.Comparison(
                    ("=",),
                    (ex.Variable(target), ex.Variable(path_name)),
                ),
                fields=tuple(visible),
            )
        return plan

    # ------------------------------------------------------------------
    # WITH / RETURN planning
    # ------------------------------------------------------------------

    def _plan_projection(self, projection, plan, where):
        items = []
        if projection.star:
            if not plan.fields and not projection.items:
                raise CypherSemanticError(
                    "RETURN * is only defined on a table with at least one field"
                )
            for name in plan.fields:
                items.append(cl.ReturnItem(ex.Variable(name), name))
        items.extend(projection.items)
        if not items:
            raise CypherSemanticError("nothing to project")

        from repro.semantics.clauses import _output_names

        names = _output_names(items)
        aggregating = [contains_aggregate(item.expression) for item in items]

        if any(aggregating):
            grouping = tuple(
                (name, item.expression)
                for name, item, is_agg in zip(names, items, aggregating)
                if not is_agg
            )
            aggregates = tuple(
                (name, item.expression)
                for name, item, is_agg in zip(names, items, aggregating)
                if is_agg
            )
            plan = lg.Aggregate(
                plan, grouping, aggregates, fields=tuple(names)
            )
            if projection.distinct:
                plan = lg.Distinct(plan, fields=plan.fields)
            if projection.order_by:
                plan = lg.Sort(plan, projection.order_by, fields=plan.fields)
        else:
            projected = tuple(
                (name, item.expression) for name, item in zip(names, items)
            )
            plan = lg.ExtendedProject(
                plan, projected, fields=tuple(names)
            )
            if projection.distinct:
                plan = lg.Strip(plan, fields=tuple(names))
                plan = lg.Distinct(plan, fields=tuple(names))
                if projection.order_by:
                    plan = lg.Sort(
                        plan, projection.order_by, fields=plan.fields
                    )
            else:
                if projection.order_by:
                    plan = lg.Sort(
                        plan, projection.order_by, fields=plan.fields
                    )
                plan = lg.Strip(plan, fields=tuple(names))
        if projection.skip is not None:
            plan = lg.Skip(plan, projection.skip, fields=plan.fields)
        if projection.limit is not None:
            plan = lg.Limit(plan, projection.limit, fields=plan.fields)
        if projection.order_by:
            plan = self._provide_order(plan)
        if projection.limit is not None:
            plan = _fuse_top_k(plan)
        if where is not None:
            plan = lg.Filter(plan, where, fields=plan.fields)
        return plan

    # ------------------------------------------------------------------
    # Order-aware rewrite: Sort deletion over index-provided order
    # ------------------------------------------------------------------

    def _provide_order(self, plan):
        """Delete a Sort whose order the source index already provides.

        The rewrite fires on linear single-scan read plans whose ORDER
        BY columns continue the index key tuple right after the scan's
        consumed columns: the scan becomes an
        :class:`~repro.planner.logical.IndexOrderedScan` enumerating the
        index's sorted half in exactly the order the deleted Sort would
        have produced (ordered-column groups in ``sort_key`` order, ties
        id-ascending — the stable multi-pass Sort over an id-ordered
        scan, reproduced).  A downstream Limit then bounds the lazy
        index walk instead of fusing into a Top heap.

        Soundness gates, each of which bails to the unrewritten plan:

        * every operator between the Sort and the scan must be
          streaming and order-preserving (Filter / ExtendedProject /
          Strip / Distinct) — anything else may reorder rows;
        * every sort item must resolve — through the projection alias
          maps — to a property of the scan variable itself;
        * a range/STARTS WITH scan may keep its bound only when the
          bound is a plan-time literal: a row-dependent bound can
          degrade to an unordered label scan *inside* the operator at
          runtime, which is unsound once the Sort is gone;
        * replacing a plain label scan requires every index column to
          be witnessed non-null (inline property map or null-rejecting
          WHERE conjunct), because the index omits exactly the nodes
          with a null column — without the witness those nodes would be
          silently dropped instead of sorted last.
        """
        from dataclasses import replace

        wrappers = []
        node = plan
        while isinstance(node, (lg.Limit, lg.Skip, lg.Strip)):
            wrappers.append(node)
            node = node.child
        if not isinstance(node, lg.Sort):
            return plan
        sort = node
        chain = []
        node = sort.child
        while isinstance(
            node, (lg.ExtendedProject, lg.Filter, lg.Strip, lg.Distinct)
        ):
            chain.append(node)
            node = node.child
        scan = node
        if not isinstance(
            scan, (lg.NodeByLabelScan, lg.IndexScan, lg.IndexRangeScan)
        ):
            return plan
        if not isinstance(scan.child, lg.Init):
            return plan
        if isinstance(scan, lg.IndexScan) and scan.many:
            return plan
        resolved = []
        for item in sort.sort_items:
            column = _resolve_sort_column(item.expression, chain)
            if column is None or column[0] != scan.variable:
                return plan
            resolved.append((column[1], item.ascending))
        ordered_keys = tuple(key for key, _ascending in resolved)
        directions = tuple(ascending for _key, ascending in resolved)

        if isinstance(scan, lg.NodeByLabelScan):
            replacement = self._ordered_label_replacement(
                scan, chain, ordered_keys, directions
            )
        else:
            replacement = _ordered_index_replacement(
                scan, ordered_keys, directions
            )
        if replacement is None:
            return plan
        node = replacement
        for op in reversed(chain):
            node = replace(op, child=node)
        for wrapper in reversed(wrappers):
            node = replace(wrapper, child=node)
        return node

    def _ordered_label_replacement(self, scan, chain, ordered_keys,
                                   directions):
        """An IndexOrderedScan standing in for a whole label scan, or None.

        Usable only when some index on the label leads with the ORDER BY
        columns *and* every index column is witnessed non-null (the
        index enumerates exactly the label nodes with all columns
        non-null; the witnesses prove the plan's own predicates already
        rejected the rest).  Among usable indexes the narrowest wins —
        fewer trailing columns means shallower enumeration.
        """
        stats = self.cost.statistics
        witnessed = set(
            key for key, _expression in scan.node_pattern.properties
        )
        for op in chain:
            if isinstance(op, lg.Filter):
                for_scan = access.collect_witnesses(op.predicate)
                witnessed.update(for_scan.get(scan.variable, ()))
        best = None
        for keys in stats.composite_indexes(scan.label):
            if keys[:len(ordered_keys)] != ordered_keys:
                continue
            if not all(key in witnessed for key in keys):
                continue
            if best is None or len(keys) < len(best):
                best = keys
        if best is None:
            return None
        return lg.IndexOrderedScan(
            scan.child, scan.variable, scan.label, best, (), directions,
            scan.node_pattern, fields=scan.fields,
            estimated_rows=float(stats.indexed_entries(scan.label, best)),
        )


def _fuse_top_k(plan):
    """Rewrite ``Limit(…(Sort(X)))`` into ``Limit(…(Top(X)))``.

    ``ORDER BY … LIMIT k`` used to materialise and sort the whole input;
    the fused :class:`~repro.planner.logical.Top` keeps a bounded heap of
    the best ``k`` (+ SKIP offset) rows instead.  Only Skip and Strip may
    sit between the Limit and its Sort (the shapes ``_plan_projection``
    emits); anything else leaves the plan untouched.
    """
    from dataclasses import replace

    if not isinstance(plan, lg.Limit):
        return plan
    wrappers = []
    node = plan.child
    skip_count = None
    while isinstance(node, (lg.Skip, lg.Strip)):
        if isinstance(node, lg.Skip):
            skip_count = node.count
        wrappers.append(node)
        node = node.child
    if not isinstance(node, lg.Sort):
        return plan
    rebuilt = lg.Top(
        node.child,
        node.sort_items,
        limit=plan.count,
        skip=skip_count,
        fields=node.fields,
    )
    for wrapper in reversed(wrappers):
        rebuilt = replace(wrapper, child=rebuilt)
    return replace(plan, child=rebuilt)


def _resolve_sort_column(expression, chain):
    """Resolve a sort expression to ``(variable, key)`` through aliases.

    Walks the operator chain top-down, substituting projection aliases
    (``WITH n.age AS age ... ORDER BY age``) until the expression either
    is exactly a property access on one variable — returned — or proves
    to be anything else — None.  Substitution handles shadowing: by the
    time the walk reaches the scan, the variable names mean what the
    scan bound, not what a later projection rebound.
    """
    expr = expression
    for op in chain:
        if not isinstance(op, lg.ExtendedProject):
            continue
        items = dict(op.items)
        if isinstance(expr, ex.Variable) and expr.name in items:
            expr = items[expr.name]
        elif (
            isinstance(expr, ex.PropertyAccess)
            and isinstance(expr.subject, ex.Variable)
            and expr.subject.name in items
        ):
            base = items[expr.subject.name]
            if not isinstance(base, ex.Variable):
                return None
            expr = ex.PropertyAccess(base, expr.key)
    if (
        isinstance(expr, ex.PropertyAccess)
        and isinstance(expr.subject, ex.Variable)
    ):
        return expr.subject.name, expr.key
    return None


def _order_safe_literal(expression):
    """The literal bound value an ordered scan may carry, or None.

    Only plan-time literals of orderable scalar types qualify — any
    other bound is evaluated per row at runtime, where a null (or a
    value outside the index's sorted segments) degrades the scan to an
    unordered fallback, unsound once the Sort is deleted.  NaN is
    excluded for the same reason range probes exclude it: no value
    compares with it.
    """
    import math

    if not isinstance(expression, ex.Literal):
        return None
    value = expression.value
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return None
        return value
    if isinstance(value, str):
        return value
    return None


def _ordered_index_replacement(scan, ordered_keys, directions):
    """The IndexOrderedScan equivalent of an index scan, or None.

    The ORDER BY columns must continue the index key tuple exactly where
    the scan's consumed columns stop: an equality prefix fixes its
    columns to single values, so enumeration order over the *next*
    columns is total order over the emitted rows.
    """
    keys = scan.all_keys
    if isinstance(scan, lg.IndexScan):
        probes = scan.all_probes
        consumed = len(probes)
        low_value = high_value = prefix_value = None
        low_inclusive = high_inclusive = True
    else:
        probes = scan.prefix_probes
        consumed = len(probes)
        low_value = high_value = prefix_value = None
        low_inclusive, high_inclusive = scan.low_inclusive, scan.high_inclusive
        if scan.prefix is not None:
            prefix_value = _order_safe_literal(scan.prefix)
            if not isinstance(prefix_value, str):
                return None
        else:
            if scan.low is not None:
                low_value = _order_safe_literal(scan.low)
                if low_value is None:
                    return None
            if scan.high is not None:
                high_value = _order_safe_literal(scan.high)
                if high_value is None:
                    return None
        # The bound restricts the *first ordered* column, so that very
        # column must lead the ORDER BY for the bound to survive.
        if keys[consumed] != ordered_keys[0]:
            return None
    if keys[consumed:consumed + len(ordered_keys)] != ordered_keys:
        return None
    return lg.IndexOrderedScan(
        scan.child, scan.variable, scan.label, keys, probes, directions,
        scan.node_pattern,
        low_value=low_value, low_inclusive=low_inclusive,
        high_value=high_value, high_inclusive=high_inclusive,
        prefix_value=prefix_value,
        fields=scan.fields, estimated_rows=scan.estimated_rows,
    )


#: Operators a covering rewrite may pass through: linear, read-only,
#: streaming.  Anything else (writes, applies, unions, expands — whose
#: rows are not one-to-one with scan rows) leaves the plan untouched.
_COVER_SAFE = (
    lg.Filter, lg.ExtendedProject, lg.Strip, lg.Distinct,
    lg.Sort, lg.Top, lg.Skip, lg.Limit,
)


def _apply_covering(plan):
    """Serve projected columns straight from index entries where possible.

    On a linear read plan whose source is an index scan, any projection
    item or sort key that is *exactly* ``scanvar.key`` for an indexed
    column is rewritten to read a synthetic covered slot the scan fills
    from its own index entry — the property map is never touched for
    those columns.  Values are identical by construction (the entry is
    maintained from the same map), so this is pure access-path change;
    the rewrite stops at the first Strip above the scan because Strip
    resets unlisted slots, and bails entirely if a projection rebinds
    the scan variable below that point.
    """
    from dataclasses import replace

    chain = []
    node = plan
    while isinstance(node, _COVER_SAFE):
        chain.append(node)
        node = node.child
    scan = node
    if not isinstance(
        scan, (lg.IndexScan, lg.IndexRangeScan, lg.IndexOrderedScan)
    ):
        return plan
    if not isinstance(scan.child, lg.Init):
        return plan
    variable = scan.variable
    keys = scan.all_keys

    # Ops between the scan and the first Strip above it, leaf upward:
    # only these still see the covered slots.
    eligible = []
    for op in reversed(chain):
        if isinstance(op, lg.Strip):
            break
        eligible.append(op)
    for op in eligible:
        if isinstance(op, lg.ExtendedProject) and any(
            name == variable for name, _expression in op.items
        ):
            return plan

    covered = {}

    def synthetic(key):
        name = covered.get(key)
        if name is None:
            name = "#cover:%s.%s" % (variable, key)
            covered[key] = name
        return name

    def covered_read(expression):
        if (
            isinstance(expression, ex.PropertyAccess)
            and isinstance(expression.subject, ex.Variable)
            and expression.subject.name == variable
            and expression.key in keys
        ):
            return ex.Variable(synthetic(expression.key))
        return None

    rewritten = {}
    for op in eligible:
        if isinstance(op, lg.ExtendedProject):
            items, changed = [], False
            for name, expression in op.items:
                replacement = covered_read(expression)
                if replacement is not None:
                    changed = True
                    items.append((name, replacement))
                else:
                    items.append((name, expression))
            if changed:
                rewritten[id(op)] = replace(op, items=tuple(items))
        elif isinstance(op, (lg.Sort, lg.Top)):
            items, changed = [], False
            for item in op.sort_items:
                replacement = covered_read(item.expression)
                if replacement is not None:
                    changed = True
                    items.append(replace(item, expression=replacement))
                else:
                    items.append(item)
            if changed:
                rewritten[id(op)] = replace(op, sort_items=tuple(items))
    if not covered:
        return plan
    node = replace(
        scan,
        covered=tuple(covered.items()),
        fields=scan.fields + tuple(covered.values()),
    )
    for op in reversed(chain):
        node = replace(rewritten.get(id(op), op), child=node)
    return node


def _is_hidden(name):
    return name.startswith("#")


def _reverse_chain(chain):
    """Walk a path pattern from its other end (flip every direction)."""
    flipped = []
    for element in reversed(chain.elements):
        if isinstance(element, pt.RelationshipPattern):
            if element.direction == pt.LEFT_TO_RIGHT:
                direction = pt.RIGHT_TO_LEFT
            elif element.direction == pt.RIGHT_TO_LEFT:
                direction = pt.LEFT_TO_RIGHT
            else:
                direction = pt.UNDIRECTED
            flipped.append(
                pt.RelationshipPattern(
                    direction=direction,
                    name=element.name,
                    types=element.types,
                    properties=element.properties,
                    length=element.length,
                )
            )
        else:
            flipped.append(element)
    return pt.PathPattern(tuple(flipped), name=chain.name)
