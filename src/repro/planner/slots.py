"""Slot assignment: fixed integer positions for every plan variable.

The slotted execution engine (paper Section 2's "physical planning"
turned up to production idiom: Neo4j's enterprise runtime calls this
*slotted runtime*) replaces per-row dicts with flat Python lists.  At
plan time every variable that can ever be bound — visible fields, hidden
``#``-prefixed pattern bindings, projection aliases, aggregation outputs
— is assigned one integer slot; operators then read and write
``row[slot]`` instead of hashing names, and copying a row is a flat
``row[:]`` instead of rebuilding a dict.

A slot holding :data:`~repro.semantics.compile.MISSING` is *unassigned*
(the dict row simply had no such key), which is distinct from holding
``None`` (the variable is bound to Cypher null, e.g. by OPTIONAL MATCH
padding).  Rows convert back to records only at the Table boundary and
for fallback expression evaluation (:meth:`SlotMap.to_record`).
"""

from __future__ import annotations

from repro.planner import logical as lg
from repro.semantics.compile import MISSING


class SlotMap:
    """An ordered ``name -> slot index`` assignment for one plan."""

    __slots__ = ("_index",)

    def __init__(self, names=()):
        self._index = {}
        for name in names:
            self.add(name)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_plan(cls, plan):
        """Assign a slot to every name any operator of ``plan`` touches."""
        return cls(collect_plan_names(plan))

    def add(self, name):
        """Ensure ``name`` has a slot; returns its index."""
        index = self._index.get(name)
        if index is None:
            index = len(self._index)
            self._index[name] = index
        return index

    # -- lookup ------------------------------------------------------------

    def __len__(self):
        return len(self._index)

    def __contains__(self, name):
        return name in self._index

    def __getitem__(self, name):
        return self._index[name]

    def index_of(self, name):
        """The slot of ``name``, or None if it was never assigned one."""
        return self._index.get(name)

    def names(self):
        """All assigned names, in slot order."""
        return tuple(self._index)

    # -- rows --------------------------------------------------------------

    def new_row(self):
        """A fresh all-unassigned row."""
        return [MISSING] * len(self._index)

    def to_record(self, row):
        """The dict record equivalent of a slotted row.

        Unassigned slots are omitted (the record has no such key), so
        fallback evaluation and the reference :class:`Evaluator` see
        exactly the scoping a dict-based executor would have produced.
        """
        record = {}
        for name, index in self._index.items():
            value = row[index]
            if value is not MISSING:
                record[name] = value
        return record

    def __repr__(self):
        return "SlotMap({})".format(
            ", ".join("%s=%d" % item for item in self._index.items())
        )


def collect_plan_names(plan):
    """Every variable name any operator of the plan can bind or read.

    Deterministic (pre-order, left to right), so slot layouts are stable
    across runs of the same plan.
    """
    names = []
    seen = set()

    def add(name):
        if name is not None and name not in seen:
            seen.add(name)
            names.append(name)

    def walk(op):
        for field in op.fields:
            add(field)
        if isinstance(op, (lg.AllNodesScan, lg.NodeByLabelScan, lg.NodeCheck)):
            add(op.variable)
        elif isinstance(op, (lg.Expand, lg.VarLengthExpand)):
            add(op.from_variable)
            add(op.to_variable)
            add(op.rel_variable)
            for name in op.unique_with:
                add(name)
        elif isinstance(op, lg.Unwind):
            add(op.alias)
        elif isinstance(op, lg.ExtendedProject):
            for name, _expression in op.items:
                add(name)
        elif isinstance(op, lg.Aggregate):
            for name, _expression in op.grouping:
                add(name)
            for name, _expression in op.aggregates:
                add(name)
        elif isinstance(op, lg.OptionalApply):
            for name in op.pad_names:
                add(name)
        for child in op._children():
            walk(child)

    walk(plan)
    return names
