"""Slot assignment: fixed integer positions for every plan variable.

The slotted execution engine (paper Section 2's "physical planning"
turned up to production idiom: Neo4j's enterprise runtime calls this
*slotted runtime*) replaces per-row dicts with flat Python lists.  At
plan time every variable that can ever be bound — visible fields, hidden
``#``-prefixed pattern bindings, projection aliases, aggregation outputs
— is assigned one integer slot; operators then read and write
``row[slot]`` instead of hashing names, and copying a row is a flat
``row[:]`` instead of rebuilding a dict.

A slot holding :data:`~repro.semantics.compile.MISSING` is *unassigned*
(the dict row simply had no such key), which is distinct from holding
``None`` (the variable is bound to Cypher null, e.g. by OPTIONAL MATCH
padding).  Rows convert back to records only at the Table boundary and
for fallback expression evaluation (:meth:`SlotMap.to_record`).

Besides plan variables, the layout reserves *scratch slots* for every
name an expression binds internally — comprehension / quantifier /
``reduce`` variables and the fresh variables of pattern comprehensions.
The expression compiler writes the inner value into the scratch slot,
evaluates the compiled body, and restores the previous value, so inner
scopes shadow outer bindings exactly as the tree walker's nested records
do.  Collecting them up front keeps the row width fixed for the whole
execution (operators capture it at compile time).
"""

from __future__ import annotations

from repro.planner import logical as lg
from repro.semantics.compile import MISSING


class SlotMap:
    """An ordered ``name -> slot index`` assignment for one plan."""

    __slots__ = ("_index",)

    def __init__(self, names=()):
        self._index = {}
        for name in names:
            self.add(name)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_plan(cls, plan):
        """Assign a slot to every name any operator of ``plan`` touches.

        The name collection walks the whole operator tree *and* every
        expression AST (for scratch names), which would dominate small
        cached-plan re-runs; the result is memoised on the plan object
        (the ``cached_property``-on-frozen-dataclass idiom — plans are
        immutable, so the derived name list is too).
        """
        names = getattr(plan, "_slot_names", None)
        if names is None:
            names = tuple(collect_plan_names(plan))
            object.__setattr__(plan, "_slot_names", names)
        return cls(names)

    def add(self, name):
        """Ensure ``name`` has a slot; returns its index."""
        index = self._index.get(name)
        if index is None:
            index = len(self._index)
            self._index[name] = index
        return index

    # -- lookup ------------------------------------------------------------

    def __len__(self):
        return len(self._index)

    def __contains__(self, name):
        return name in self._index

    def __getitem__(self, name):
        return self._index[name]

    def index_of(self, name):
        """The slot of ``name``, or None if it was never assigned one."""
        return self._index.get(name)

    def names(self):
        """All assigned names, in slot order."""
        return tuple(self._index)

    # -- rows --------------------------------------------------------------

    def new_row(self):
        """A fresh all-unassigned row."""
        return [MISSING] * len(self._index)

    def to_record(self, row):
        """The dict record equivalent of a slotted row.

        Unassigned slots are omitted (the record has no such key), so
        fallback evaluation and the reference :class:`Evaluator` see
        exactly the scoping a dict-based executor would have produced.
        """
        record = {}
        for name, index in self._index.items():
            value = row[index]
            if value is not MISSING:
                record[name] = value
        return record

    def __repr__(self):
        return "SlotMap({})".format(
            ", ".join("%s=%d" % item for item in self._index.items())
        )


def collect_plan_names(plan):
    """Every variable name any operator of the plan can bind or read.

    Deterministic (pre-order, left to right), so slot layouts are stable
    across runs of the same plan.  Includes the scratch names of every
    expression reachable from the plan, so the row width is final before
    the first operator compiles.
    """
    names = []
    seen = set()

    def add(name):
        if name is not None and name not in seen:
            seen.add(name)
            names.append(name)

    def add_expression(expression):
        if expression is not None:
            for name in expression_scratch_names(expression):
                add(name)

    def add_pattern_properties(pattern):
        for _key, expression in pattern.properties:
            add_expression(expression)

    def add_set_items(items):
        from repro.ast import clauses as cl

        for item in items:
            if isinstance(item, (cl.SetProperty, cl.RemoveProperty)):
                add_expression(item.subject)
                if isinstance(item, cl.SetProperty):
                    add_expression(item.value)
            elif isinstance(item, cl.SetVariable):
                add(item.name)
                add_expression(item.value)
            elif isinstance(item, (cl.SetLabels, cl.RemoveLabels)):
                add(item.name)

    def add_path_pattern(path):
        add(path.name)
        for element in path.elements:
            add(element.name)
            add_pattern_properties(element)

    def walk(op):
        for field in op.fields:
            add(field)
        if isinstance(op, (lg.AllNodesScan, lg.NodeByLabelScan, lg.NodeCheck)):
            add(op.variable)
            add_pattern_properties(op.node_pattern)
        elif isinstance(op, lg.IndexScan):
            add(op.variable)
            add_pattern_properties(op.node_pattern)
            add_expression(op.probe)
            for probe in op.probes:
                add_expression(probe)
        elif isinstance(op, lg.IndexRangeScan):
            add(op.variable)
            add_pattern_properties(op.node_pattern)
            add_expression(op.low)
            add_expression(op.high)
            add_expression(op.prefix)
            for probe in op.prefix_probes:
                add_expression(probe)
        elif isinstance(op, lg.IndexOrderedScan):
            add(op.variable)
            add_pattern_properties(op.node_pattern)
            for probe in op.prefix_probes:
                add_expression(probe)
        elif isinstance(op, (lg.Expand, lg.VarLengthExpand)):
            add(op.from_variable)
            add(op.to_variable)
            add(op.rel_variable)
            for name in op.unique_with:
                add(name)
            for name in op.unique_nodes:
                add(name)
            add_pattern_properties(op.rel_pattern)
            add_pattern_properties(op.node_pattern)
        elif isinstance(op, lg.ProjectPath):
            add(op.variable)
            add(op.start_variable)
            for rel_name, node_name, _var_length in op.steps:
                add(rel_name)
                add(node_name)
        elif isinstance(op, lg.Unwind):
            add(op.alias)
            add_expression(op.expression)
        elif isinstance(op, lg.Filter):
            add_expression(op.predicate)
        elif isinstance(op, lg.ExtendedProject):
            for name, expression in op.items:
                add(name)
                add_expression(expression)
        elif isinstance(op, lg.Aggregate):
            for name, expression in op.grouping:
                add(name)
                add_expression(expression)
            for name, expression in op.aggregates:
                add(name)
                add_expression(expression)
        elif isinstance(op, lg.Sort):
            for item in op.sort_items:
                add_expression(item.expression)
        elif isinstance(op, lg.Top):
            for item in op.sort_items:
                add_expression(item.expression)
            add_expression(op.limit)
            add_expression(op.skip)
        elif isinstance(op, (lg.Skip, lg.Limit)):
            add_expression(op.count)
        elif isinstance(op, lg.OptionalApply):
            for name in op.pad_names:
                add(name)
        elif isinstance(op, lg.CreatePattern):
            for path in op.patterns:
                add_path_pattern(path)
        elif isinstance(op, lg.MergePattern):
            add_path_pattern(op.pattern)
            add_set_items(op.on_create)
            add_set_items(op.on_match)
        elif isinstance(op, (lg.SetProperties, lg.RemoveItems)):
            add_set_items(op.items)
        elif isinstance(op, lg.DeleteEntities):
            for expression in op.expressions:
                add_expression(expression)
        for child in op._children():
            walk(child)

    walk(plan)
    return names


def expression_scratch_names(expression):
    """Names an expression binds in inner scopes, in discovery order.

    Comprehension / quantifier / ``reduce`` variables plus the free
    variables of pattern comprehensions, pattern predicates and EXISTS
    subqueries (at runtime those not already bound become fresh
    bindings).  Each needs a slot so the compiled closures can shadow
    and restore without resizing rows.
    """
    from repro.ast import expressions as ex
    from repro.ast.patterns import free_variables
    from repro.ast.visitor import walk

    names = []
    for node in walk(expression):
        if isinstance(node, (ex.ListComprehension, ex.QuantifiedPredicate)):
            names.append(node.variable)
        elif isinstance(node, ex.Reduce):
            names.append(node.accumulator)
            names.append(node.variable)
        elif isinstance(node, (ex.PatternComprehension, ex.PatternPredicate)):
            names.extend(free_variables((node.pattern,)))
        elif isinstance(node, ex.ExistsSubquery):
            names.extend(free_variables(tuple(node.pattern)))
    return names
