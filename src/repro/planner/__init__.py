"""Volcano-style query planner and physical operators (paper Section 2).

"Query execution in Neo4j follows a conventional model, outlined by the
Volcano Optimizer Generator ... An execution plan for a Cypher query in
Neo4j contains largely the same operators as in relational database
engines and an additional operator called Expand."

* :mod:`repro.planner.logical` — the operator algebra (scans, Expand,
  filter, project, aggregate, sort, ...);
* :mod:`repro.planner.cost` — the cardinality/cost model over
  :class:`repro.graph.statistics.GraphStatistics`;
* :mod:`repro.planner.planning` — pattern-graph planning with greedy
  expansion ordering (an IDP-flavoured search picks the cheapest
  traversal order);
* :mod:`repro.planner.physical` — tuple-at-a-time iterators executing a
  logical plan.

``plan_query`` raises :class:`repro.exceptions.UnsupportedFeature` for
queries outside the read core (updates, Cypher 10 clauses); the engine
falls back to the reference interpreter for those.
"""

from repro.planner.planning import plan_query
from repro.planner.physical import execute_plan

__all__ = ["plan_query", "execute_plan"]
