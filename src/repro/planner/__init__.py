"""Volcano-style query planner and physical operators (paper Section 2).

"Query execution in Neo4j follows a conventional model, outlined by the
Volcano Optimizer Generator ... An execution plan for a Cypher query in
Neo4j contains largely the same operators as in relational database
engines and an additional operator called Expand."

* :mod:`repro.planner.logical` — the operator algebra (scans, Expand,
  filter, project, aggregate, sort, ...);
* :mod:`repro.planner.cost` — the cardinality/cost model over
  :class:`repro.graph.statistics.GraphStatistics`;
* :mod:`repro.planner.planning` — pattern-graph planning with greedy
  expansion ordering (an IDP-flavoured search picks the cheapest
  traversal order);
* :mod:`repro.planner.slots` — slot assignment: each plan variable gets
  a fixed integer position, so rows are flat lists, not dicts;
* :mod:`repro.planner.physical` — the slotted row engine: operators are
  compiled to generator closures over slotted rows, with expressions
  compiled by :mod:`repro.semantics.compile`;
* :mod:`repro.planner.batch` — the vectorised batch engine: the same
  plans executed as morsels of slot *columns*, picked automatically for
  read plans whose operators all have batch implementations
  (``plan_supports_batch``).

The planner covers the whole standard language — reads *and* updates —
so ``plan_query`` raises :class:`repro.exceptions.UnsupportedFeature`
only for the Cypher 10 graph clauses; the engine falls back to the
reference interpreter for those, recording the reason on
``QueryResult.executed_by`` / ``fallback_reason``.
"""

from repro.planner.planning import plan_depends_on_statistics, plan_query
from repro.planner.physical import execute_plan
from repro.planner.batch import execute_plan_batched, plan_supports_batch

__all__ = [
    "plan_query",
    "plan_depends_on_statistics",
    "execute_plan",
    "execute_plan_batched",
    "plan_supports_batch",
]
