"""Sargable-predicate extraction for index access paths.

"Sargable" (search-argument-able) conjuncts are the WHERE / inline-map
predicates an index can serve as an *access path*: equality, ``IN``,
half-open or closed ranges, and string prefixes over ``variable.key``.
This module turns a WHERE tree into per-variable :class:`Sargable`
candidates; :mod:`repro.planner.planning` then asks the cost model
whether entering through a ``(label, key)`` index beats the label scan.

Pushdown is sound because the planner **never removes the predicate**:
the full WHERE stays as the residual Filter (and the inline property
map stays in the scan's node check), so an index may over-approximate —
return candidates the predicate rejects — without changing results.
What pushdown *does* change is which rows the residual ever sees, so a
conjunct is only extracted, and the surrounding WHERE only accepted,
when skipping the pruned rows cannot suppress an error the reference
path would have raised.  :func:`infallible` is the conservative
allowlist behind that: literals, parameters, variables, property /
label access on them, comparisons, ``IN`` over a list *literal* (any
other container can raise the non-list type error per row), string
predicates, ``IS [NOT] NULL`` and the logical connectives.  Arithmetic (division by
zero), function calls, list indexing, comprehensions and anything else
that can raise per-row keeps the whole WHERE off the index path.  (Two
documented corners remain: an unbound parameter and a type-mismatched
variable subject error at probe time rather than per pruned row — the
same statement-level behaviour a production planner exhibits.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.ast.visitor import walk
from repro.graph.reachability import best_covering

#: Inequality operators and their meaning as a (bound, inclusive) pair
#: when the property sits on the *left* (``n.k < e``).
_RANGE_OPERATORS = {"<", "<=", ">", ">="}

#: Flip map for bounds written with the property on the right (``e < n.k``).
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class Sargable:
    """One index-servable conjunct over ``variable.key``.

    ``kind`` is ``"eq"`` (probe expression in ``value``), ``"in"``
    (list expression in ``value``), ``"range"`` (``low``/``high``
    expressions with inclusivity flags; one side may be open) or
    ``"prefix"`` (prefix expression in ``value``).  ``size_hint`` is the
    plan-time length of an ``IN`` list literal, when known.
    """

    variable: str
    key: str
    kind: str
    value: Optional[object] = None
    low: Optional[object] = None
    low_inclusive: bool = True
    high: Optional[object] = None
    high_inclusive: bool = True
    size_hint: Optional[int] = None

    def describe(self):
        if self.kind == "eq":
            return "%s.%s = …" % (self.variable, self.key)
        if self.kind == "in":
            return "%s.%s IN …" % (self.variable, self.key)
        if self.kind == "prefix":
            return "%s.%s STARTS WITH …" % (self.variable, self.key)
        parts = []
        if self.low is not None:
            parts.append("… %s %s.%s" % (
                "<=" if self.low_inclusive else "<", self.variable, self.key
            ))
        if self.high is not None:
            parts.append("%s.%s %s …" % (
                self.variable, self.key,
                "<=" if self.high_inclusive else "<",
            ))
        return " AND ".join(parts) or "%s.%s range" % (self.variable, self.key)

    def probe_expressions(self):
        """Every expression the access path evaluates per driving row."""
        return tuple(
            expression
            for expression in (self.value, self.low, self.high)
            if expression is not None
        )


#: Expression node types that cannot raise at evaluation time (given the
#: documented parameter/variable-subject corners).  Everything else —
#: arithmetic, function calls, indexing, slicing, regex against a
#: non-constant pattern, CASE, comprehensions, pattern predicates —
#: keeps the WHERE off the index path.  ``ex.In`` is deliberately
#: absent: ``x IN e`` raises on a non-list container, so it is only
#: admitted (in :func:`infallible` below) when the container is a list
#: literal — an ``IN $param`` therefore vetoes pushdown of the whole
#: WHERE rather than risk pruning a row whose evaluation would have
#: raised on the reference path.
_INFALLIBLE_NODES = (
    ex.Literal,
    ex.Parameter,
    ex.Variable,
    ex.PropertyAccess,
    ex.MapLiteral,
    ex.ListLiteral,
    ex.Comparison,
    ex.StringPredicate,
    ex.BinaryLogic,
    ex.Not,
    ex.IsNull,
    ex.IsNotNull,
    ex.LabelPredicate,
)

#: Probe expressions are held to a tighter list still: they are
#: evaluated once per driving row *before* any candidate row exists, so
#: they must be simple row-local reads.
_PROBE_NODES = (
    ex.Literal,
    ex.Parameter,
    ex.Variable,
    ex.PropertyAccess,
    ex.ListLiteral,
    ex.MapLiteral,
)


def infallible(expression):
    """True when no node of ``expression`` can raise per row (see above)."""
    for node in walk(expression):
        if isinstance(node, ex.In):
            if not isinstance(node.container, ex.ListLiteral):
                return False  # a non-list container raises per row
        elif not isinstance(node, _INFALLIBLE_NODES):
            return False
    return True


def probe_safe(expression):
    """True when ``expression`` qualifies as an index probe value."""
    return all(isinstance(node, _PROBE_NODES) for node in walk(expression))


def conjuncts_of(predicate):
    """Flatten the top-level AND tree of a WHERE into its conjuncts."""
    if isinstance(predicate, ex.BinaryLogic) and predicate.operator == "AND":
        return conjuncts_of(predicate.left) + conjuncts_of(predicate.right)
    return (predicate,)


def free_variables(expression):
    """Variable names an expression reads (scratch-bound names included).

    Over-approximating the free set is fine here: it only makes the
    planner *reject* a pushdown it might have allowed.
    """
    return {
        node.name for node in walk(expression) if isinstance(node, ex.Variable)
    }


def _property_operand(expression):
    """``(variable, key)`` when the expression is ``variable.key``."""
    if isinstance(expression, ex.PropertyAccess) and isinstance(
        expression.subject, ex.Variable
    ):
        return expression.subject.name, expression.key
    return None


def _extract_one(conjunct):
    """The :class:`Sargable` form of one conjunct, or None."""
    if isinstance(conjunct, ex.Comparison):
        if len(conjunct.operands) != 2:
            return None
        operator = conjunct.operators[0]
        left, right = conjunct.operands
        subject = _property_operand(left)
        other = right
        if subject is None:
            subject = _property_operand(right)
            other = left
            operator = _FLIPPED.get(operator, operator)
        if subject is None or not probe_safe(other):
            return None
        variable, key = subject
        if operator == "=":
            return Sargable(variable, key, "eq", value=other)
        if operator in _RANGE_OPERATORS:
            if operator in ("<", "<="):
                return Sargable(
                    variable, key, "range",
                    high=other, high_inclusive=operator == "<=",
                )
            return Sargable(
                variable, key, "range",
                low=other, low_inclusive=operator == ">=",
            )
        return None
    if isinstance(conjunct, ex.In):
        subject = _property_operand(conjunct.item)
        if subject is None or not probe_safe(conjunct.container):
            return None
        variable, key = subject
        size = (
            len(conjunct.container.items)
            if isinstance(conjunct.container, ex.ListLiteral)
            else None
        )
        return Sargable(
            variable, key, "in", value=conjunct.container, size_hint=size
        )
    if (
        isinstance(conjunct, ex.StringPredicate)
        and conjunct.operator == "STARTS WITH"
    ):
        subject = _property_operand(conjunct.left)
        if subject is None or not probe_safe(conjunct.right):
            return None
        variable, key = subject
        return Sargable(variable, key, "prefix", value=conjunct.right)
    return None


def _merge_ranges(sargables):
    """Fuse one lower and one upper bound per key into a closed range.

    Only the first bound of each side participates (bounds are
    expressions, so the planner cannot compare them); leftover range
    conjuncts simply stay in the residual filter like everything else.
    """
    merged = []
    open_ranges = {}  # (variable, key) -> index into merged
    for sargable in sargables:
        if sargable.kind != "range":
            merged.append(sargable)
            continue
        slot = (sargable.variable, sargable.key)
        position = open_ranges.get(slot)
        if position is None:
            open_ranges[slot] = len(merged)
            merged.append(sargable)
            continue
        existing = merged[position]
        if existing.low is None and sargable.low is not None:
            merged[position] = Sargable(
                existing.variable, existing.key, "range",
                low=sargable.low, low_inclusive=sargable.low_inclusive,
                high=existing.high, high_inclusive=existing.high_inclusive,
            )
        elif existing.high is None and sargable.high is not None:
            merged[position] = Sargable(
                existing.variable, existing.key, "range",
                low=existing.low, low_inclusive=existing.low_inclusive,
                high=sargable.high, high_inclusive=sargable.high_inclusive,
            )
        # Both sides already bound: the extra conjunct stays residual.
    return merged


def collect_sargable(predicate):
    """``{variable: [Sargable, ...]}`` for one WHERE tree.

    Empty when the WHERE as a whole fails the :func:`infallible` gate —
    pruning rows must not suppress errors the reference path raises.
    """
    if predicate is None or not infallible(predicate):
        return {}
    extracted = []
    for conjunct in conjuncts_of(predicate):
        sargable = _extract_one(conjunct)
        if sargable is not None:
            extracted.append(sargable)
    by_variable = {}
    for sargable in _merge_ranges(extracted):
        by_variable.setdefault(sargable.variable, []).append(sargable)
    return by_variable


def collect_witnesses(predicate):
    """``{variable: {keys proven non-null}}`` for one WHERE tree.

    A composite prefix probe **under-approximates**: a node whose deeper
    key column is null has no index entry at all, so probing only a
    prefix would silently drop rows the predicate accepts.  The planner
    therefore only uses a composite index when every non-probed column
    is *witnessed* non-null by the WHERE itself.  Null-rejecting
    witnesses are the extracted sargable shapes (``=``, ``IN``, ranges
    and ``STARTS WITH`` are never true of null) and top-level
    ``IS NOT NULL`` conjuncts — all gated on the same :func:`infallible`
    check as extraction, because relying on a conjunct to prune rows
    must not suppress errors the reference path would raise.
    """
    if predicate is None or not infallible(predicate):
        return {}
    witnesses = {}
    for conjunct in conjuncts_of(predicate):
        if isinstance(conjunct, ex.IsNotNull):
            subject = _property_operand(conjunct.operand)
        else:
            sargable = _extract_one(conjunct)
            subject = (
                (sargable.variable, sargable.key)
                if sargable is not None else None
            )
        if subject is not None:
            witnesses.setdefault(subject[0], set()).add(subject[1])
    return witnesses


@dataclass(frozen=True)
class CompositeCandidate:
    """A usable probe over one composite index's key columns.

    ``equalities`` holds one ``"eq"`` sargable per consumed prefix
    column (in key order); ``bound`` optionally adds one range /
    ``STARTS WITH`` sargable on the next column.  Every column beyond
    the probe was witnessed non-null, so the index's entry set covers
    exactly the rows the predicates admit (see
    :func:`collect_witnesses`).
    """

    keys: tuple
    equalities: tuple
    bound: Optional[Sargable] = None

    @property
    def consumed(self):
        return len(self.equalities) + (1 if self.bound is not None else 0)

    def probe_expressions(self):
        expressions = [s.value for s in self.equalities]
        if self.bound is not None:
            expressions.extend(self.bound.probe_expressions())
        return tuple(expressions)

    def describe(self):
        parts = [s.describe() for s in self.equalities]
        if self.bound is not None:
            parts.append(self.bound.describe())
        return " AND ".join(parts)


def match_composite(keys, sargables, witnessed):
    """The longest usable probe of one composite index, or None.

    Greedy longest-prefix matching: consume an equality sargable per
    key column while one exists, then optionally one range / prefix
    sargable on the following column (``IN`` stays single-key only —
    list probes over a composite prefix explode into per-element
    probes, which the cost model has no basis to price).  Usable only
    when every *unconsumed* column appears in ``witnessed`` (the
    consumed ones witness themselves).
    """
    by_key = {}
    for sargable in sargables:
        by_key.setdefault(sargable.key, []).append(sargable)
    equalities = []
    bound = None
    for key in keys:
        here = by_key.get(key, ())
        equality = next((s for s in here if s.kind == "eq"), None)
        if equality is not None:
            equalities.append(equality)
            continue
        bound = next(
            (s for s in here if s.kind in ("range", "prefix")), None
        )
        break
    if not equalities and bound is None:
        return None
    consumed = len(equalities) + (1 if bound is not None else 0)
    for key in keys[consumed:]:
        if key not in witnessed:
            return None
    return CompositeCandidate(
        keys=tuple(keys), equalities=tuple(equalities), bound=bound
    )


@dataclass(frozen=True)
class ReachabilityCandidate:
    """A declared reachability index that can prune one var-length hop.

    ``index_types`` is the declared type set (sorted tuple; None = the
    all-types index) and ``forward`` records the traversal direction the
    probe prunes along: True for ``(a)-[*]->(b)`` walks (prune nodes
    that cannot reach the bound target), False for ``(a)<-[*]-(b)``
    (prune nodes the target cannot reach).
    """

    index_types: Optional[tuple]
    forward: bool

    def describe(self):
        types = (
            "<any>" if self.index_types is None
            else ":" + "|".join(self.index_types)
        )
        return "reach(%s, %s)" % (
            types, "forward" if self.forward else "reverse"
        )


def reachability_candidate(statistics, rel_pattern, into, high):
    """The index probe serving one var-length hop, or None.

    The gate mirrors the probe's soundness conditions: the far endpoint
    must already be bound (``into`` — otherwise there is no target to
    certify against), the pattern must be directed (the indexes store
    directed condensations), and a declared type set must *cover* the
    pattern's types — equal, a superset, or the all-types index, all of
    which only over-approximate and the walk itself is the residual
    verification.

    A finite upper bound never breaks soundness — the compiled probe
    runs the same capped DFS as the plain walk and the index only prunes
    subtrees that cannot reach the target *at all* (a fortiori not
    within ``high`` hops) — so bounded patterns are a pure cost call.
    The probe wins when the cap barely constrains enumeration: once
    ``high`` exceeds the index's condensation diameter (the longest
    component-DAG path), most reachable pairs sit within the permitted
    depth and the bound prunes next to nothing, so the index does the
    pruning instead.  At or below the diameter the cap itself is the
    effective pruner and the plain walk stays.
    """
    if not into:
        return None
    direction = rel_pattern.direction
    if direction == pt.UNDIRECTED:
        return None
    available = {
        None if key is None else frozenset(key): key
        for key in statistics.reachability_index_types()
    }
    if not available:
        return None
    chosen = best_covering(rel_pattern.resolved_types, available)
    if chosen is best_covering.MISS:
        return None
    index_key = available[chosen]
    if high is not None:
        facts = statistics.reachability_indexes.get(index_key) or {}
        diameter = facts.get("condensation_diameter")
        if diameter is None or high <= diameter:
            return None
    return ReachabilityCandidate(
        index_types=index_key,
        forward=direction == pt.LEFT_TO_RIGHT,
    )


def inline_sargables(node_pattern, variable):
    """Equality sargables from a node pattern's inline property map.

    ``(n:L {k: expr})`` is ``n.k = expr`` in disguise; each map entry
    whose value expression passes the probe gate is an equality
    candidate (``variable`` is the planner's name for the pattern, which
    covers anonymous nodes too).  The scan's node check re-verifies
    every entry, so the same over-approximation rules apply.
    """
    sargables = []
    for key, expression in node_pattern.properties:
        if probe_safe(expression):
            sargables.append(Sargable(variable, key, "eq", value=expression))
    return tuple(sargables)
