"""Vectorised batch execution: morsels of rows as slot columns.

The row engine (:mod:`repro.planner.physical`) already compiles operator
dispatch and expressions once per plan, but it still pays Python's
per-row toll: a generator resumption per operator per row, a ``row[:]``
copy per binding, a closure call per expression per row.  This module
executes the same logical plans *columnar*: operators exchange
**morsels** — batches of up to :data:`DEFAULT_MORSEL_SIZE` rows stored
as one flat Python list per slot — so each per-row cost becomes a
per-morsel cost amortised over N rows:

* scans slice whole chunks off the store's cached scan lists
  (:meth:`~repro.graph.store.MemoryGraph.label_scan_ids`) and broadcast
  the outer bindings, instead of copying a row per node — index scans
  (equality/``IN``/range/prefix probes per driving row) chunk their
  id-ordered candidate lists the same way, so indexed plans stay inside
  the batch claim;
* Expand walks the adjacency of an entire source column in one store
  call (:meth:`~repro.graph.store.MemoryGraph.expand_batch`) and gathers
  the surviving origins with list selections;
* filters and projections evaluate *column-compiled* expression closures
  (:class:`~repro.semantics.compile.ColumnCompiler`) — one call per
  morsel, with int fast-path loops inside;
* aggregation accumulates straight off argument columns, and
  ``ORDER BY … LIMIT k`` runs the same bounded :class:`Top` heap as the
  row engine.

A batch is the pair ``(n, cols)``: ``cols[slot]`` is either a list of
``n`` values or ``None`` when the slot is unbound across the whole batch
(the supported operators bind uniformly, so a column never mixes bound
and unbound rows — ``MISSING`` appears only in scratch rows materialised
for fallback expressions).

**Coverage is a contract, not best effort.**  :func:`plan_supports_batch`
names exactly the operators this engine claims; the engine picks batch
execution for any read plan inside the claim and records the choice in
``QueryResult.execution_mode``, and the TCK runner asserts a claimed
plan never silently degrades to row mode.  Variable-length expands are
inside the claim since the frontier-BFS implementation below; outside
it — OPTIONAL MATCH, UNION, named paths, every write operator and its
Eager barriers — execution stays row-wise: writes batch through the
store transaction already, and per-row snapshot semantics are
exactly what the barriers guarantee.  The differential harness
(``tests/test_batched_differential.py``) holds all three executors —
interpreter, row, batch — to identical result bags and byte-identical
final stores over the fuzz corpus.
"""

from __future__ import annotations

import heapq
from itertools import islice

from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.planner import logical as lg
from repro.planner.physical import (
    ExecutionContext,
    TOPK_STATS,
    _bound_value,
    _compile_conflicts,
    _compile_node_conflicts,
    _compile_node_ok,
    _compile_rel_ok,
    _heap_item_class,
    _index_ordered_probe,
    _index_probe,
    _index_range_probe,
)
from repro.planner.slots import SlotMap
from repro.semantics.compile import MISSING, ColumnCompiler, select_columns
from repro.semantics.table import Table
from repro.values.base import NodeId
from repro.values.ordering import canonical_key, sort_key

#: Target rows per morsel.  Big enough to amortise per-batch Python
#: overhead, small enough to keep columns cache-resident; engines expose
#: it as the ``morsel_size`` knob.
DEFAULT_MORSEL_SIZE = 256


def graph_supports_batch(graph):
    """True when the store implements the bulk column APIs."""
    return bool(getattr(graph, "supports_bulk_scans", False))


def plan_supports_batch(plan):
    """True when every operator of ``plan`` has a batch implementation.

    This is the batch engine's published claim: the engine *must* run a
    supported read plan in batch mode (the TCK runner asserts it), and
    must not attempt an unsupported one.  Memoised on the plan object,
    like the slot-name collection — plans are immutable.
    """
    cached = getattr(plan, "_batch_supported", None)
    if cached is None:
        cached = True
        stack = [plan]
        while stack:
            op = stack.pop()
            if type(op) not in _COMPILERS:
                cached = False
                break
            stack.extend(op._children())
        object.__setattr__(plan, "_batch_supported", cached)
    return cached


class BatchContext(ExecutionContext):
    """Execution context plus the column compiler and morsel size."""

    def __init__(
        self, graph, parameters=None, functions=None, morphism=None,
        slots=None, morsel_size=None, access_log=None, cancel=None,
    ):
        super().__init__(
            graph, parameters, functions, morphism, slots, access_log,
            cancel, read_only=True,  # batch plans never write: CSE is safe
        )
        self.columns = ColumnCompiler(self.compiler)
        self.morsel_size = morsel_size or DEFAULT_MORSEL_SIZE

    def transaction(self):
        raise AssertionError(
            "write operators have no batch implementation; "
            "plan_supports_batch should have rejected this plan"
        )


def execute_plan_batched(
    plan, graph, parameters=None, functions=None, morphism=None,
    morsel_size=None, access_log=None, cancel=None,
):
    """Run a batch-supported logical plan; returns a Table over its fields.

    Semantically identical to :func:`~repro.planner.physical.execute_plan`
    on every plan :func:`plan_supports_batch` accepts — same rows, same
    order, same errors.  ``access_log`` enables the same access-path
    profiling as the row engine (counted per morsel, not per row).
    """
    slots = SlotMap.from_plan(plan)
    context = BatchContext(
        graph, parameters, functions, morphism, slots, morsel_size,
        access_log, cancel,
    )
    source = _compile(plan, context)
    fields = plan.fields
    field_slots = [slots[field] for field in fields]
    rows = []
    append = rows.append
    for n, cols in source(None):
        field_cols = [cols[slot] for slot in field_slots]
        for index in range(n):
            record = {}
            for field, col in zip(fields, field_cols):
                value = col[index] if col is not None else None
                record[field] = None if value is MISSING else value
            append(record)
    return Table(fields, rows)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _compile(op, ctx):
    """Compile an operator subtree to ``argument -> iterator of batches``.

    With a cancellation active, every operator checks the deadline/token
    at each **morsel boundary** — one direct poll per batch of rows, the
    vectorised analogue of the row engine's strided per-row check.
    """
    run = _COMPILERS[type(op)](op, ctx)
    cancel = ctx.cancel
    if cancel is None:
        return run
    poll = cancel.poll

    def guarded(argument):
        for batch in run(argument):
            poll()
            yield batch

    return guarded


def _bound_columns(cols):
    """The ``(slot, column)`` pairs bound in this batch."""
    return [(slot, col) for slot, col in enumerate(cols) if col is not None]


#: The operators' row-selection kernel — one implementation, shared with
#: the column compiler's masked AND/OR (see semantics/compile.py).
_select = select_columns


def _materialize(cols, bound, index, width):
    """A fresh scratch row holding batch row ``index`` (MISSING elsewhere)."""
    row = [MISSING] * width
    for slot, col in bound:
        row[slot] = col[index]
    return row


def _direction_of(rel_pattern):
    if rel_pattern.direction == pt.LEFT_TO_RIGHT:
        return "out"
    if rel_pattern.direction == pt.RIGHT_TO_LEFT:
        return "in"
    return "both"


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------

def _compile_init(op, ctx):
    width = len(ctx.slots)

    def run(argument):
        yield 1, [None] * width

    return run


def _compile_scan(op, ctx, source_of, granted_label=None):
    """Shared chunked scan: slice the node list per driving row."""
    child = _compile(op.child, ctx)
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern, granted_label=granted_label)
    morsel = ctx.morsel_size
    width = len(ctx.slots)
    fill = _compile_batch_cover_fill(op, ctx)

    def run(argument):
        for n, cols in child(argument):
            bound = _bound_columns(cols)
            row = [MISSING] * width if ok is not None else None
            for index in range(n):
                if ok is not None:
                    for out_slot, col in bound:
                        row[out_slot] = col[index]
                    nodes = [node for node in source_of() if ok(node, row)]
                else:
                    nodes = source_of()
                total = len(nodes)
                for start in range(0, total, morsel):
                    chunk = nodes[start:start + morsel]
                    out = [None] * width
                    for out_slot, col in bound:
                        out[out_slot] = [col[index]] * len(chunk)
                    out[slot] = chunk
                    if fill is not None:
                        fill(out, chunk)
                    yield len(chunk), out

    return run


def _profiled_batch_scan(ctx, op, entry, run):
    """Morsel-level emitted-row counter, matching the row engine's."""
    log = ctx.access_log
    if log is None:
        return run
    record = {
        "operator": type(op).__name__,
        "variable": op.variable,
        "entry": entry,
        "estimated_rows": getattr(op, "estimated_rows", None),
        "actual_rows": 0,
    }
    log.append(record)

    def counted(argument):
        for n, cols in run(argument):
            record["actual_rows"] += n
            yield n, cols

    return counted


def _compile_all_nodes_scan(op, ctx):
    return _profiled_batch_scan(
        ctx, op, "all nodes",
        _compile_scan(op, ctx, ctx.graph.all_node_ids),
    )


def _compile_label_scan(op, ctx):
    label = op.label
    scan = ctx.graph.label_scan_ids
    return _profiled_batch_scan(
        ctx, op, "label scan :%s" % label,
        _compile_scan(op, ctx, lambda: scan(label), granted_label=label),
    )


def _compile_probe_scan(op, ctx, candidates_of, entry):
    """Chunked batch scan over per-driving-row index candidate lists.

    The probe closures come from the row engine's :func:`_index_probe` /
    :func:`_index_range_probe` — one home for the probe semantics.  They
    read the *driving row*, so a scratch row is materialised per input
    row (exactly like :func:`_compile_scan`'s property-checked path);
    the candidates then chunk into morsels with the outer bindings
    broadcast.  Enumeration order matches the row engine's operator —
    same store calls, same lists.  Chunking is lazy (``islice`` over the
    candidate iterator, never a full materialisation), so an ordered
    scan's generator only advances as far as downstream operators pull —
    a Limit's budget cuts the index walk off mid-morsel.
    """
    child = _compile(op.child, ctx)
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern, granted_label=op.label)
    morsel = ctx.morsel_size
    width = len(ctx.slots)
    label = op.label
    label_ids = ctx.graph.label_scan_ids
    fill = _compile_batch_cover_fill(op, ctx)

    def run(argument):
        for n, cols in child(argument):
            bound = _bound_columns(cols)
            row = [MISSING] * width
            for index in range(n):
                if not label_ids(label):
                    continue
                for out_slot, col in bound:
                    row[out_slot] = col[index]
                nodes = iter(candidates_of(row))
                if ok is not None:
                    nodes = (node for node in nodes if ok(node, row))
                while True:
                    chunk = list(islice(nodes, morsel))
                    if not chunk:
                        break
                    out = [None] * width
                    for out_slot, col in bound:
                        out[out_slot] = [col[index]] * len(chunk)
                    out[slot] = chunk
                    if fill is not None:
                        fill(out, chunk)
                    yield len(chunk), out

    return _profiled_batch_scan(ctx, op, entry, run)


def _compile_batch_cover_fill(op, ctx):
    """``(out_cols, chunk) -> None`` writing covered columns, or None.

    Columnar twin of the row engine's cover fill: one list per covered
    column, built straight from index entries (live property map as the
    fallback for over-approximated admissions — see the row engine's
    docstring for why that case exists).
    """
    covered = getattr(op, "covered", ())
    if not covered:
        return None
    keys = op.all_keys
    getter = ctx.graph.index_cover_getter(op.label, keys)
    properties = ctx.graph.properties
    targets = tuple(
        (keys.index(key), key, ctx.slots[name]) for key, name in covered
    )

    def fill(out, chunk):
        columns = [[None] * len(chunk) for _target in targets]
        for index, node in enumerate(chunk):
            values = getter(node)
            if values is not None:
                for t, (position, _key, _slot) in enumerate(targets):
                    columns[t][index] = values[position]
            else:
                node_properties = properties(node)
                for t, (_position, key, _slot) in enumerate(targets):
                    columns[t][index] = node_properties.get(key)
        for t, (_position, _key, cover_slot) in enumerate(targets):
            out[cover_slot] = columns[t]

    return fill


def _compile_index_scan(op, ctx):
    return _compile_probe_scan(op, ctx, *_index_probe(ctx, op))


def _compile_index_range_scan(op, ctx):
    return _compile_probe_scan(op, ctx, *_index_range_probe(ctx, op))


def _compile_index_ordered_scan(op, ctx):
    return _compile_probe_scan(op, ctx, *_index_ordered_probe(ctx, op))


def _compile_node_check(op, ctx):
    child = _compile(op.child, ctx)
    slot = ctx.slots[op.variable]
    ok = _compile_node_ok(ctx, op.node_pattern)
    width = len(ctx.slots)

    def run(argument):
        for n, cols in child(argument):
            col = cols[slot]
            if col is None:
                continue  # unbound for the whole batch: nothing survives
            if ok is None:
                keep = [
                    index
                    for index, value in enumerate(col)
                    if isinstance(value, NodeId)
                ]
            else:
                bound = _bound_columns(cols)
                keep = []
                for index, value in enumerate(col):
                    if not isinstance(value, NodeId):
                        continue
                    row = _materialize(cols, bound, index, width)
                    if ok(value, row):
                        keep.append(index)
            if not keep:
                continue
            if len(keep) == n:
                yield n, cols
            else:
                yield len(keep), _select(cols, keep)

    return run


# ---------------------------------------------------------------------------
# Expand
# ---------------------------------------------------------------------------

def _compile_expand(op, ctx):
    child = _compile(op.child, ctx)
    slots = ctx.slots
    from_slot = slots[op.from_variable]
    rel_slot = slots[op.rel_variable] if op.rel_variable is not None else None
    to_slot = slots[op.to_variable] if op.to_variable is not None else None
    direction = _direction_of(op.rel_pattern)
    types = op.rel_pattern.resolved_types
    conflicts = _compile_conflicts(ctx, op.unique_with)
    node_conflicts = _compile_node_conflicts(
        ctx, op.unique_nodes, op.unique_segments
    )
    rel_ok = _compile_rel_ok(ctx, op.rel_pattern)
    node_ok = _compile_node_ok(ctx, op.node_pattern)
    into = op.into
    expand_batch = ctx.graph.expand_batch
    width = len(slots)
    # A label-only target check reads nothing from the row (its property
    # loop is empty), so the scratch-row materialisation per driving row
    # is skipped for the common (a)-[:T]->(b:Label) shape.
    need_row = (
        conflicts is not None
        or node_conflicts is not None
        or rel_ok is not None
        or (node_ok is not None and bool(op.node_pattern.properties))
    )

    def run(argument):
        for n, cols in child(argument):
            source_col = cols[from_slot]
            if source_col is None:
                continue
            to_col = cols[to_slot] if into else None
            if into and to_col is None:
                continue  # every comparison against MISSING fails
            origins, rels, targets = expand_batch(
                source_col, direction, types
            )
            if not origins:
                continue
            if need_row or node_ok is not None or into:
                bound = _bound_columns(cols)
                keep = []
                row = None
                current = -1
                for position, origin in enumerate(origins):
                    if need_row and origin != current:
                        # Fresh per driving row: the node-conflict check
                        # memoises its visited set on row identity.
                        row = _materialize(cols, bound, origin, width)
                        current = origin
                    rel = rels[position]
                    target = targets[position]
                    if conflicts is not None and conflicts(rel, row):
                        continue
                    if rel_ok is not None and not rel_ok(rel, row):
                        continue
                    if node_conflicts is not None and node_conflicts(
                        target, row
                    ):
                        continue
                    if into and to_col[origin] != target:
                        continue
                    if node_ok is not None and not node_ok(target, row):
                        continue
                    keep.append(position)
                if not keep:
                    continue
                if len(keep) != len(origins):
                    origins = [origins[p] for p in keep]
                    rels = [rels[p] for p in keep]
                    targets = [targets[p] for p in keep]
            out = _select(cols, origins)
            if rel_slot is not None:
                out[rel_slot] = rels
            if not into and to_slot is not None:
                out[to_slot] = targets
            yield len(origins), out

    return run


def _compile_var_length_expand(op, ctx):
    """Frontier-BFS batch implementation of ``*m..n`` expansion.

    The row engine walks a per-row recursive DFS; here the whole input
    batch advances **level-synchronously**: one
    :meth:`~repro.graph.store.MemoryGraph.expand_batch` call per depth
    expands the entire frontier at once.  Emission order is observable
    (``collect()``, ``LIMIT`` without ``ORDER BY``), so each frontier
    entry carries a *DFS key* — the tuple of adjacency positions taken
    along its walk — and the collected emissions are sorted by
    ``(driving row, key)`` before yielding: a prefix tuple sorts before
    every extension and sibling positions sort in adjacency order, which
    is exactly the DFS pre-order the row engine produces (the store
    guarantees ``expand_batch`` enumerates each source in the same
    order as the per-row accessors).

    Memory trades against the row path: the DFS holds one walk, the BFS
    holds a whole level — bounded by the same traversal cap and
    uniqueness pruning that bound the row engine's result set.
    """
    child = _compile(op.child, ctx)
    slots = ctx.slots
    from_slot = slots[op.from_variable]
    rel_slot = slots[op.rel_variable] if op.rel_variable is not None else None
    to_slot = slots[op.to_variable] if op.to_variable is not None else None
    direction = _direction_of(op.rel_pattern)
    types = op.rel_pattern.resolved_types
    conflicts = _compile_conflicts(ctx, op.unique_with)
    rel_ok = _compile_rel_ok(ctx, op.rel_pattern)
    node_ok = _compile_node_ok(ctx, op.node_pattern)
    into = op.into
    low = op.low
    kernel = ctx.kernel
    morphism = kernel.morphism
    check_unique = bool(morphism.forbids_repeated_relationships)
    check_nodes = bool(morphism.forbids_repeated_nodes)
    unique_node_slots = tuple(slots[name] for name in op.unique_nodes)
    unique_segment_slots = tuple(
        (slots[from_name], slots[rel_name])
        for from_name, rel_name in op.unique_segments
    )
    other_end = ctx.graph.other_end
    cap = kernel.traversal_cap(op.high)
    cancel = ctx.cancel
    expand_batch = ctx.graph.expand_batch
    width = len(slots)
    morsel = ctx.morsel_size
    # The per-walk checks that read the driving row's other bindings;
    # label-only target checks pass row=None, like the rigid Expand.
    need_row = (
        (check_unique and conflicts is not None)
        or rel_ok is not None
        or check_nodes
        or (node_ok is not None and bool(op.node_pattern.properties))
    )

    def run(argument):
        for n, cols in child(argument):
            source_col = cols[from_slot]
            if source_col is None:
                continue
            to_col = cols[to_slot] if into else None
            if into and to_col is None:
                continue  # every comparison against MISSING fails
            bound = _bound_columns(cols) if need_row else None
            rows = {}

            def row_of(origin):
                row = rows.get(origin)
                if row is None:
                    rows[origin] = row = _materialize(
                        cols, bound, origin, width
                    )
                return row

            emitted = []

            def emit(origin, key, node, rels):
                if into and to_col[origin] != node:
                    return
                if node_ok is not None and not node_ok(
                    node, row_of(origin) if need_row else None
                ):
                    return
                emitted.append((origin, key, node, rels))

            # Frontier entries: (origin, dfs_key, node, walk_rels,
            # walk_nodes) — the last two are the walk's own additions;
            # the uniqueness seed per driving row stays shared.
            seeds = {}
            frontier = []
            for origin in range(n):
                source = source_col[origin]
                if not isinstance(source, NodeId):
                    continue
                if check_nodes:
                    seeds[origin] = kernel.visited_nodes(
                        unique_node_slots, unique_segment_slots,
                        row_of(origin), other_end,
                    )
                frontier.append((origin, (), source, (), ()))
            if low == 0:
                for origin, key, node, rels, _nodes in frontier:
                    emit(origin, key, node, rels)
            taken = 0
            while frontier:
                if cap is not None and taken >= cap:
                    break  # level-cap walks are emitted, never expanded
                taken += 1
                origins_, rels_, targets_ = expand_batch(
                    [entry[2] for entry in frontier], direction, types
                )
                next_frontier = []
                last_parent = -1
                position = 0
                for step in range(len(origins_)):
                    if cancel is not None:
                        # Per candidate step: the frontier can explode
                        # combinatorially between morsel boundaries.
                        cancel.check()
                    parent = origins_[step]
                    if parent != last_parent:
                        last_parent = parent
                        position = 0
                    else:
                        position += 1
                    rel = rels_[step]
                    target = targets_[step]
                    origin, key, _node, walk_rels, walk_nodes = (
                        frontier[parent]
                    )
                    if check_unique:
                        if rel in walk_rels:
                            continue
                        if conflicts is not None and conflicts(
                            rel, row_of(origin)
                        ):
                            continue
                    if rel_ok is not None and not rel_ok(
                        rel, row_of(origin)
                    ):
                        continue
                    if check_nodes and (
                        target in seeds[origin] or target in walk_nodes
                    ):
                        continue
                    child_key = key + (position,)
                    child_rels = walk_rels + (rel,)
                    child_nodes = (
                        walk_nodes + (target,) if check_nodes else ()
                    )
                    if taken >= low:
                        emit(origin, child_key, target, child_rels)
                    next_frontier.append(
                        (origin, child_key, target, child_rels, child_nodes)
                    )
                frontier = next_frontier
            if not emitted:
                continue
            # (origin, dfs_key) is unique per emission, so the plain
            # tuple sort never reaches the node/rels elements.
            emitted.sort()
            total = len(emitted)
            for start in range(0, total, morsel):
                block = emitted[start:start + morsel]
                indices = [entry[0] for entry in block]
                out = _select(cols, indices)
                if rel_slot is not None:
                    out[rel_slot] = [list(entry[3]) for entry in block]
                if not into and to_slot is not None:
                    out[to_slot] = [entry[2] for entry in block]
                yield len(block), out

    return run


def _compile_reachability_probe(op, ctx):
    """Frontier-BFS var-length expansion pruned by a reachability index.

    Same level-synchronous walk and DFS-key emission order as
    :func:`_compile_var_length_expand`; the index removes frontier
    entries that provably cannot end at their driving row's bound target
    (each pruned walk contributes zero emissions, so order and bag are
    untouched — the walk is the residual verification).  Falls back to
    the plain frontier walk when the executing graph does not expose the
    index.
    """
    getter = getattr(ctx.graph, "reachability_index_for", None)
    index = (
        getter(op.rel_pattern.resolved_types) if getter is not None else None
    )
    if index is None:
        return _compile_var_length_expand(op, ctx)
    child = _compile(op.child, ctx)
    slots = ctx.slots
    from_slot = slots[op.from_variable]
    rel_slot = slots[op.rel_variable] if op.rel_variable is not None else None
    to_slot = slots[op.to_variable]
    direction = _direction_of(op.rel_pattern)
    types = op.rel_pattern.resolved_types
    conflicts = _compile_conflicts(ctx, op.unique_with)
    rel_ok = _compile_rel_ok(ctx, op.rel_pattern)
    node_ok = _compile_node_ok(ctx, op.node_pattern)
    low = op.low
    kernel = ctx.kernel
    morphism = kernel.morphism
    check_unique = bool(morphism.forbids_repeated_relationships)
    check_nodes = bool(morphism.forbids_repeated_nodes)
    unique_node_slots = tuple(slots[name] for name in op.unique_nodes)
    unique_segment_slots = tuple(
        (slots[from_name], slots[rel_name])
        for from_name, rel_name in op.unique_segments
    )
    other_end = ctx.graph.other_end
    cap = kernel.traversal_cap(op.high)
    cancel = ctx.cancel
    expand_batch = ctx.graph.expand_batch
    width = len(slots)
    morsel = ctx.morsel_size
    reachable = index.reachable
    forward = op.forward
    need_row = (
        (check_unique and conflicts is not None)
        or rel_ok is not None
        or check_nodes
        or (node_ok is not None and bool(op.node_pattern.properties))
    )

    def can_end_at(node, target):
        if forward:
            return reachable(node, target)
        return reachable(target, node)

    def run(argument):
        for n, cols in child(argument):
            source_col = cols[from_slot]
            if source_col is None:
                continue
            to_col = cols[to_slot]
            if to_col is None:
                continue  # every comparison against MISSING fails
            bound = _bound_columns(cols) if need_row else None
            rows = {}

            def row_of(origin):
                row = rows.get(origin)
                if row is None:
                    rows[origin] = row = _materialize(
                        cols, bound, origin, width
                    )
                return row

            emitted = []

            def emit(origin, key, node, rels):
                if to_col[origin] != node:
                    return
                if node_ok is not None and not node_ok(
                    node, row_of(origin) if need_row else None
                ):
                    return
                emitted.append((origin, key, node, rels))

            seeds = {}
            frontier = []
            for origin in range(n):
                source = source_col[origin]
                if not isinstance(source, NodeId):
                    continue
                target = to_col[origin]
                if not isinstance(target, NodeId):
                    continue  # the emit comparison can never hold
                if not can_end_at(source, target):
                    continue  # index-certified: no walk ends at target
                if check_nodes:
                    seeds[origin] = kernel.visited_nodes(
                        unique_node_slots, unique_segment_slots,
                        row_of(origin), other_end,
                    )
                frontier.append((origin, (), source, (), ()))
            if low == 0:
                for origin, key, node, rels, _nodes in frontier:
                    emit(origin, key, node, rels)
            taken = 0
            while frontier:
                if cap is not None and taken >= cap:
                    break
                taken += 1
                origins_, rels_, targets_ = expand_batch(
                    [entry[2] for entry in frontier], direction, types
                )
                next_frontier = []
                last_parent = -1
                position = 0
                for step in range(len(origins_)):
                    if cancel is not None:
                        cancel.check()
                    parent = origins_[step]
                    if parent != last_parent:
                        last_parent = parent
                        position = 0
                    else:
                        position += 1
                    rel = rels_[step]
                    target = targets_[step]
                    origin, key, _node, walk_rels, walk_nodes = (
                        frontier[parent]
                    )
                    if check_unique:
                        if rel in walk_rels:
                            continue
                        if conflicts is not None and conflicts(
                            rel, row_of(origin)
                        ):
                            continue
                    if rel_ok is not None and not rel_ok(
                        rel, row_of(origin)
                    ):
                        continue
                    if check_nodes and (
                        target in seeds[origin] or target in walk_nodes
                    ):
                        continue
                    # The probe: drop continuations the index certifies
                    # can never end at this row's bound target.
                    if not can_end_at(target, to_col[origin]):
                        continue
                    child_key = key + (position,)
                    child_rels = walk_rels + (rel,)
                    child_nodes = (
                        walk_nodes + (target,) if check_nodes else ()
                    )
                    if taken >= low:
                        emit(origin, child_key, target, child_rels)
                    next_frontier.append(
                        (origin, child_key, target, child_rels, child_nodes)
                    )
                frontier = next_frontier
            if not emitted:
                continue
            emitted.sort()
            total = len(emitted)
            for start in range(0, total, morsel):
                block = emitted[start:start + morsel]
                indices = [entry[0] for entry in block]
                out = _select(cols, indices)
                if rel_slot is not None:
                    out[rel_slot] = [list(entry[3]) for entry in block]
                yield len(block), out

    log = ctx.access_log
    if log is None:
        return run
    record = {
        "operator": type(op).__name__,
        "variable": op.to_variable,
        "entry": "reachability probe %s (%s)" % (
            "<any>" if op.index_types is None
            else ":" + "|".join(op.index_types),
            "forward" if op.forward else "reverse",
        ),
        "estimated_rows": op.estimated_rows,
        "actual_rows": 0,
    }
    log.append(record)

    def counted(argument):
        for n, cols in run(argument):
            record["actual_rows"] += n
            yield n, cols

    return counted


# ---------------------------------------------------------------------------
# Tuple operators
# ---------------------------------------------------------------------------

def _compile_filter(op, ctx):
    child = _compile(op.child, ctx)
    selection = ctx.columns.compile_selection(op.predicate)

    def run(argument):
        for n, cols in child(argument):
            keep = selection(n, cols)
            if not keep:
                continue
            if len(keep) == n:
                yield n, cols
            else:
                yield len(keep), _select(cols, keep)

    return run


def _compile_project(op, ctx):
    child = _compile(op.child, ctx)
    items = tuple(
        (ctx.slots[name], ctx.columns.compile(expression))
        for name, expression in op.items
    )

    def run(argument):
        for n, cols in child(argument):
            # All items read the input columns; writes land in the copy,
            # so aliases may shadow inputs without corruption.
            computed = [(slot, compiled(n, cols)) for slot, compiled in items]
            out = list(cols)
            for slot, column in computed:
                out[slot] = column
            yield n, out

    return run


def _compile_strip(op, ctx):
    child = _compile(op.child, ctx)
    keep = tuple(ctx.slots[field] for field in op.fields)
    width = len(ctx.slots)

    def run(argument):
        for n, cols in child(argument):
            out = [None] * width
            for slot in keep:
                col = cols[slot]
                out[slot] = col if col is not None else [None] * n
            yield n, out

    return run


def _canonical_column(column):
    """Canonical grouping keys for one column (hot scalar cases inlined)."""
    out = []
    append = out.append
    for value in column:
        value_type = type(value)
        if value_type is int:
            append(("num", value))
        elif value_type is str:
            append(("str", value))
        else:
            append(canonical_key(value))
    return out


def _compile_distinct(op, ctx):
    child = _compile(op.child, ctx)
    field_slots = tuple(ctx.slots[field] for field in op.fields)

    def run(argument):
        seen = set()
        add = seen.add
        for n, cols in child(argument):
            key_cols = [
                _canonical_column(cols[slot])
                if cols[slot] is not None
                else None
                for slot in field_slots
            ]
            null_key = canonical_key(None)
            keep = []
            for index in range(n):
                key = tuple(
                    keyed[index] if keyed is not None else null_key
                    for keyed in key_cols
                )
                if key not in seen:
                    add(key)
                    keep.append(index)
            if not keep:
                continue
            if len(keep) == n:
                yield n, cols
            else:
                yield len(keep), _select(cols, keep)

    return run


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _aggregate_outputs(ctx, aggregates):
    """Classify each aggregate item for column-wise accumulation.

    ``count``/``simple``/``pair`` accumulate straight off argument
    columns through the shared accumulator objects; anything fancier
    collects dict records per group and reuses the reference
    ``evaluate_aggregate_item`` — exactly the row engine's split.
    """
    from repro.functions.aggregates import _Percentile
    from repro.semantics.clauses import _make_accumulator

    outputs = []
    needs_records = False
    for name, expression in aggregates:
        slot = ctx.slots[name]
        kind = None
        arg_fns = ()
        if isinstance(expression, ex.CountStar):
            kind = "count"
        elif (
            isinstance(expression, ex.FunctionCall)
            and expression.name in ex.AGGREGATE_FUNCTION_NAMES
        ):
            if isinstance(_make_accumulator(expression), _Percentile):
                if len(expression.args) == 2:
                    kind = "pair"
                    arg_fns = (
                        ctx.columns.compile(expression.args[0]),
                        ctx.columns.compile(expression.args[1]),
                    )
            elif len(expression.args) == 1:
                kind = "simple"
                arg_fns = (ctx.columns.compile(expression.args[0]),)
        if kind is None:
            kind = "records"
            needs_records = True
        outputs.append((slot, expression, kind, arg_fns))
    return outputs, needs_records


def _compile_aggregate(op, ctx):
    from repro.semantics.clauses import _make_accumulator
    from repro.semantics.clauses import evaluate_aggregate_item

    child = _compile(op.child, ctx)
    slots = ctx.slots
    width = len(slots)
    grouping = tuple(
        (slots[name], ctx.columns.compile(expression))
        for name, expression in op.grouping
    )
    outputs, needs_records = _aggregate_outputs(ctx, op.aggregates)
    to_record = slots.to_record
    evaluator = ctx.evaluator

    def new_states():
        return [
            0 if kind == "count" else (
                _make_accumulator(expression)
                if kind in ("simple", "pair")
                else None
            )
            for _slot, expression, kind, _fns in outputs
        ]

    def collect_records(cols, n, records):
        bound = _bound_columns(cols)
        for index in range(n):
            records.append(to_record(_materialize(cols, bound, index, width)))

    def finish(order, groups):
        """The single output batch: one row per group, in arrival order."""
        out = [None] * width
        for position, (slot, _compiled) in enumerate(grouping):
            out[slot] = [groups[key][0][position] for key in order]
        for position, (slot, expression, kind, _fns) in enumerate(outputs):
            column = []
            for key in order:
                _values, states, records = groups[key]
                if kind == "count":
                    column.append(states[position])
                elif kind in ("simple", "pair"):
                    column.append(states[position].result())
                else:
                    column.append(
                        evaluate_aggregate_item(expression, records, evaluator)
                    )
            out[slot] = column
        return len(order), out

    if not grouping:
        # Global aggregation: no keys at all — count(*) adds batch sizes,
        # one-argument aggregates drain their argument column through the
        # accumulator in a tight loop.  This is the hot RETURN count(*)
        # / sum(x) shape the benchmarks pin at 2x the row engine.
        def run_global(argument):
            states = new_states()
            records = [] if needs_records else None
            for n, cols in child(argument):
                for position, (_s, _e, kind, arg_fns) in enumerate(outputs):
                    if kind == "count":
                        states[position] += n
                    elif kind == "simple":
                        include = states[position].include
                        for value in arg_fns[0](n, cols):
                            include(value)
                    elif kind == "pair":
                        include_pair = states[position].include_pair
                        for value, percentile in zip(
                            arg_fns[0](n, cols), arg_fns[1](n, cols)
                        ):
                            include_pair(value, percentile)
                if needs_records:
                    collect_records(cols, n, records)
            yield finish([()], {(): ([], states, records)})

        return run_global

    single_key = len(grouping) == 1
    single_count = (
        not needs_records
        and len(outputs) == 1
        and outputs[0][2] == "count"
    )
    single_simple = (
        not needs_records
        and len(outputs) == 1
        and outputs[0][2] == "simple"
    )

    def run(argument):
        groups = {}
        order = []
        append_key = order.append
        for n, cols in child(argument):
            key_cols = [compiled(n, cols) for _slot, compiled in grouping]
            keyed = [_canonical_column(column) for column in key_cols]
            if single_key:
                keys = keyed[0]
                values = key_cols[0]
            else:
                keys = list(zip(*keyed))
                values = None
            if single_count:
                # One count(*) per group: the dict is the whole loop.
                for index, key in enumerate(keys):
                    entry = groups.get(key)
                    if entry is None:
                        groups[key] = entry = (
                            [values[index]]
                            if single_key
                            else [col[index] for col in key_cols],
                            [0],
                            None,
                        )
                        append_key(key)
                    entry[1][0] += 1
                continue
            if single_simple:
                argument_col = outputs[0][3][0](n, cols)
                for index, key in enumerate(keys):
                    entry = groups.get(key)
                    if entry is None:
                        groups[key] = entry = (
                            [values[index]]
                            if single_key
                            else [col[index] for col in key_cols],
                            new_states(),
                            None,
                        )
                        append_key(key)
                    entry[1][0].include(argument_col[index])
                continue
            arg_cols = [
                tuple(fn(n, cols) for fn in arg_fns) if arg_fns else ()
                for _slot, _expression, _kind, arg_fns in outputs
            ]
            bound = _bound_columns(cols) if needs_records else None
            for index, key in enumerate(keys):
                entry = groups.get(key)
                if entry is None:
                    entry = (
                        [column[index] for column in key_cols],
                        new_states(),
                        [] if needs_records else None,
                    )
                    groups[key] = entry
                    append_key(key)
                states = entry[1]
                for position, (_s, _e, kind, _fns) in enumerate(outputs):
                    if kind == "count":
                        states[position] += 1
                    elif kind == "simple":
                        states[position].include(arg_cols[position][0][index])
                    elif kind == "pair":
                        states[position].include_pair(
                            arg_cols[position][0][index],
                            arg_cols[position][1][index],
                        )
                if needs_records:
                    entry[2].append(
                        to_record(_materialize(cols, bound, index, width))
                    )
        if order:
            yield finish(order, groups)

    return run


# ---------------------------------------------------------------------------
# Ordering, offsets
# ---------------------------------------------------------------------------

def _concat(batches, width):
    """Merge a batch list into one ``(n, cols)`` (binding normalised)."""
    if len(batches) == 1:
        return batches[0]
    total = sum(n for n, _cols in batches)
    merged = []
    for slot in range(width):
        if all(cols[slot] is None for _n, cols in batches):
            merged.append(None)
            continue
        column = []
        for n, cols in batches:
            col = cols[slot]
            column.extend(col if col is not None else [None] * n)
        merged.append(column)
    return total, merged


def _compile_sort(op, ctx):
    child = _compile(op.child, ctx)
    keys = tuple(
        (ctx.columns.compile(item.expression), bool(item.ascending))
        for item in op.sort_items
    )
    width = len(ctx.slots)

    def run(argument):
        batches = list(child(argument))
        if not batches:
            return
        n, cols = _concat(batches, width)
        order = list(range(n))
        # Stable multi-pass sort, least-significant key first — the same
        # lexicographic-comparator equivalence the row engine uses.
        for compiled, ascending in reversed(keys):
            keyed = [sort_key(value) for value in compiled(n, cols)]
            order.sort(key=keyed.__getitem__, reverse=not ascending)
        yield n, _select(cols, order)

    return run


def _compile_top(op, ctx):
    child = _compile(op.child, ctx)
    key_fns = tuple(ctx.columns.compile(item.expression) for item in op.sort_items)
    flags = tuple(bool(item.ascending) for item in op.sort_items)
    limit_count = ctx.compile(op.limit)
    skip_count = ctx.compile(op.skip) if op.skip is not None else None
    slots = ctx.slots
    width = len(slots)
    heap_item = _heap_item_class(flags)
    stats = TOPK_STATS

    def run(argument):
        k = _bound_value(limit_count, slots, "LIMIT")
        if skip_count is not None:
            k += _bound_value(skip_count, slots, "SKIP")
        if k == 0:
            return
        heap = []
        seq = 0
        for n, cols in child(argument):
            key_cols = [fn(n, cols) for fn in key_fns]
            bound = _bound_columns(cols)
            for index in range(n):
                row_keys = tuple(sort_key(kc[index]) for kc in key_cols)
                if len(heap) < k:
                    heapq.heappush(
                        heap,
                        heap_item(
                            row_keys,
                            seq,
                            _materialize(cols, bound, index, width),
                        ),
                    )
                    stats["pushed"] += 1
                    if len(heap) > stats["heap_max"]:
                        stats["heap_max"] = len(heap)
                else:
                    candidate = heap_item(row_keys, seq, None)
                    if heap[0] < candidate:
                        candidate.row = _materialize(
                            cols, bound, index, width
                        )
                        heapq.heappushpop(heap, candidate)
                        stats["pushed"] += 1
                seq += 1
        if not heap:
            return
        rows = [item.row for item in sorted(heap, reverse=True)]
        out = []
        first = rows[0]
        for slot in range(width):
            if first[slot] is MISSING:
                out.append(None)  # binding is uniform across the stream
            else:
                out.append([row[slot] for row in rows])
        yield len(rows), out

    return run


def _compile_skip(op, ctx):
    child = _compile(op.child, ctx)
    count = ctx.compile(op.count)
    slots = ctx.slots

    def run(argument):
        remaining = _bound_value(count, slots, "SKIP")
        for n, cols in child(argument):
            if remaining >= n:
                remaining -= n
                continue
            if remaining:
                offset = remaining
                remaining = 0
                yield (
                    n - offset,
                    [None if c is None else c[offset:] for c in cols],
                )
            else:
                yield n, cols

    return run


def _compile_limit(op, ctx):
    child = _compile(op.child, ctx)
    count = ctx.compile(op.count)
    slots = ctx.slots

    def run(argument):
        budget = _bound_value(count, slots, "LIMIT")
        if budget == 0:
            return
        for n, cols in child(argument):
            if n < budget:
                budget -= n
                yield n, cols
            elif n == budget:
                yield n, cols
                return
            else:
                yield (
                    budget,
                    [None if c is None else c[:budget] for c in cols],
                )
                return

    return run


def _compile_unwind(op, ctx):
    child = _compile(op.child, ctx)
    expression = ctx.columns.compile(op.expression)
    slot = ctx.slots[op.alias]

    def run(argument):
        for n, cols in child(argument):
            values = expression(n, cols)
            origins = []
            flat = []
            for index, value in enumerate(values):
                if isinstance(value, list):
                    for element in value:
                        origins.append(index)
                        flat.append(element)
                else:
                    origins.append(index)
                    flat.append(value)
            if not flat:
                continue
            out = _select(cols, origins)
            out[slot] = flat
            yield len(flat), out

    return run


_COMPILERS = {
    lg.Init: _compile_init,
    lg.AllNodesScan: _compile_all_nodes_scan,
    lg.NodeByLabelScan: _compile_label_scan,
    lg.IndexScan: _compile_index_scan,
    lg.IndexRangeScan: _compile_index_range_scan,
    lg.IndexOrderedScan: _compile_index_ordered_scan,
    lg.NodeCheck: _compile_node_check,
    lg.Expand: _compile_expand,
    lg.VarLengthExpand: _compile_var_length_expand,
    lg.ReachabilityProbe: _compile_reachability_probe,
    lg.Filter: _compile_filter,
    lg.ExtendedProject: _compile_project,
    lg.Strip: _compile_strip,
    lg.Distinct: _compile_distinct,
    lg.Aggregate: _compile_aggregate,
    lg.Sort: _compile_sort,
    lg.Top: _compile_top,
    lg.Skip: _compile_skip,
    lg.Limit: _compile_limit,
    lg.Unwind: _compile_unwind,
}
