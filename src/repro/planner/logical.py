"""Logical plan operators.

The algebra mirrors the paper's description of Neo4j's execution plans:
"largely the same operators as in relational database engines and an
additional operator called Expand", which "utilizes the fact that the
data representation contains direct references from each node via its
edges to the related nodes".

Every operator records its *visible* output fields; rows flowing through
the physical pipeline may additionally carry hidden bindings (names
prefixed with ``#``) for anonymous pattern elements, which exist only to
enforce relationship uniqueness and chain continuity and are stripped by
the next projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Operator:
    """Base class; concrete operators are dataclasses with a child tree."""

    __slots__ = ()

    def describe(self, indent=0):
        lines = ["  " * indent + self._describe_line()]
        for child in self._children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _describe_line(self):
        return type(self).__name__

    def _children(self):
        return ()


@dataclass(frozen=True)
class Init(Operator):
    """The unit table T(): one empty row (paper Section 4, 'output')."""

    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Init"


@dataclass(frozen=True)
class Argument(Operator):
    """Yields the per-invocation argument row (inside Optional subplans)."""

    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Argument({})".format(", ".join(self.fields))


@dataclass(frozen=True)
class AllNodesScan(Operator):
    """Bind every node of the graph (nested-loop over the input)."""

    child: Operator
    variable: str
    node_pattern: object  # patterns.NodePattern (labels/props checked inline)
    fields: Tuple[str, ...] = ()
    estimated_rows: Optional[float] = None

    def _describe_line(self):
        return "AllNodesScan({})".format(self.variable)

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class NodeByLabelScan(Operator):
    """Bind nodes from the label index — the planner's selective entry."""

    child: Operator
    variable: str
    label: str
    node_pattern: object
    fields: Tuple[str, ...] = ()
    estimated_rows: Optional[float] = None

    def _describe_line(self):
        return "NodeByLabelScan({}:{})".format(self.variable, self.label)

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class IndexScan(Operator):
    """Bind nodes from a ``(label, key)`` property index: ``=`` or ``IN``.

    The cost model picks this over :class:`NodeByLabelScan` + Filter
    when the NDV-backed estimate says the index prunes more.  ``probe``
    is the sought-value expression, evaluated once per driving row
    (so a probe over an outer variable is an index nested-loop join);
    with ``many`` it must evaluate to a list and the scan probes each
    element (``IN``).  The scan **over-approximates**: it returns every
    node whose stored value *may* satisfy the predicate, and the
    un-removed residual (the node pattern's property check and the
    clause's WHERE Filter) makes the final call — null/type semantics
    are therefore exactly the label-scan path's.
    """

    child: Operator
    variable: str
    label: str
    key: str
    probe: object  # Expression
    node_pattern: object
    many: bool = False
    fields: Tuple[str, ...] = ()
    estimated_rows: Optional[float] = None
    #: Full declared key tuple of the serving index; () means the
    #: single-key form (``key``/``probe`` above carry the probe).
    index_keys: Tuple[str, ...] = ()
    #: Equality-prefix probe expressions, one per consumed column
    #: (composite indexes only; may be shorter than ``index_keys``).
    probes: Tuple[object, ...] = ()
    #: ``((key, synthetic field name), …)`` when the scan also serves
    #: projections straight from its stored entry values (covering).
    covered: Tuple[Tuple[str, str], ...] = ()

    @property
    def all_keys(self):
        return self.index_keys or (self.key,)

    @property
    def all_probes(self):
        return self.probes or (self.probe,)

    def _describe_line(self):
        keys = self.all_keys
        shape = "IN …" if self.many else "= …"
        if len(keys) > 1 and len(self.all_probes) < len(keys):
            shape = "prefix(%d) %s" % (len(self.all_probes), shape)
        return "IndexScan({}:{}({}) {}{}{})".format(
            self.variable,
            self.label,
            ",".join(keys),
            shape,
            ", covering" if self.covered else "",
            "" if self.estimated_rows is None
            else ", est≈%d rows" % round(self.estimated_rows),
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class IndexRangeScan(Operator):
    """Bind nodes from the index's sorted half: range or prefix probes.

    ``low``/``high`` are bound expressions (either may be None for a
    half-open range); ``prefix`` serves ``STARTS WITH`` instead.  Bounds
    whose runtime type the sorted structure cannot serve (lists,
    temporals) degrade to the label scan list *inside* the operator —
    still correct, because the residual predicate stays in the plan.
    Enumeration is index-ordered (value, then node id), identically on
    the row and batch engines.
    """

    child: Operator
    variable: str
    label: str
    key: str
    node_pattern: object
    low: Optional[object] = None        # Expression
    low_inclusive: bool = True
    high: Optional[object] = None       # Expression
    high_inclusive: bool = True
    prefix: Optional[object] = None     # Expression (STARTS WITH)
    fields: Tuple[str, ...] = ()
    estimated_rows: Optional[float] = None
    #: Full declared key tuple; () means the single-key form.  The
    #: bounded column is ``keys[len(prefix_probes)]``.
    index_keys: Tuple[str, ...] = ()
    #: Equality probe expressions for the columns before the bound one.
    prefix_probes: Tuple[object, ...] = ()
    #: Covering projection slots, as on :class:`IndexScan`.
    covered: Tuple[Tuple[str, str], ...] = ()

    @property
    def all_keys(self):
        return self.index_keys or (self.key,)

    def _describe_line(self):
        if self.prefix is not None:
            shape = "STARTS WITH …"
        else:
            parts = []
            if self.low is not None:
                parts.append(">%s …" % ("=" if self.low_inclusive else ""))
            if self.high is not None:
                parts.append("<%s …" % ("=" if self.high_inclusive else ""))
            shape = " AND ".join(parts)
        keys = self.all_keys
        if self.prefix_probes:
            shape = "eq(%d) %s" % (len(self.prefix_probes), shape)
        return "IndexRangeScan({}:{}({}) {}{}{})".format(
            self.variable,
            self.label,
            ",".join(keys),
            shape,
            ", covering" if self.covered else "",
            "" if self.estimated_rows is None
            else ", est≈%d rows" % round(self.estimated_rows),
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class IndexOrderedScan(Operator):
    """Enumerate an index in ORDER BY order: the Sort-deleting scan.

    Emits nodes in the composite index's sorted-half order over the
    columns after an equality prefix — exactly the order a stable
    multi-pass Sort over an id-ordered scan would produce (per-group
    ties come out id-ascending) — so the planner substitutes this scan
    and deletes the Sort.  ``directions`` holds one ascending flag per
    ordered column; optional bounds restrict the first ordered column
    and are **plan-time literal values** (never expressions): a runtime
    bound could degrade to an unordered label scan inside the operator,
    which would be unsound once the Sort is gone.  Enumeration is lazy,
    so a downstream Limit stops the index walk early (the fused
    Top-replacement).
    """

    child: Operator
    variable: str
    label: str
    index_keys: Tuple[str, ...]
    prefix_probes: Tuple[object, ...]  # Expressions (equality prefix)
    directions: Tuple[bool, ...]       # ascending flag per ordered column
    node_pattern: object
    low_value: Optional[object] = None   # literal VALUE, not expression
    low_inclusive: bool = True
    high_value: Optional[object] = None  # literal VALUE
    high_inclusive: bool = True
    prefix_value: Optional[str] = None   # literal STARTS WITH value
    covered: Tuple[Tuple[str, str], ...] = ()
    fields: Tuple[str, ...] = ()
    estimated_rows: Optional[float] = None

    @property
    def all_keys(self):
        return self.index_keys

    def _describe_line(self):
        consumed = len(self.prefix_probes)
        ordered = self.index_keys[consumed:consumed + len(self.directions)]
        order = ", ".join(
            "%s %s" % (key, "ASC" if ascending else "DESC")
            for key, ascending in zip(ordered, self.directions)
        )
        extras = []
        if consumed:
            extras.append("eq(%d)" % consumed)
        if self.low_value is not None or self.high_value is not None:
            bounds = []
            if self.low_value is not None:
                bounds.append(">%s %r" % (
                    "=" if self.low_inclusive else "", self.low_value,
                ))
            if self.high_value is not None:
                bounds.append("<%s %r" % (
                    "=" if self.high_inclusive else "", self.high_value,
                ))
            extras.append(" AND ".join(bounds))
        if self.prefix_value is not None:
            extras.append("STARTS WITH %r" % (self.prefix_value,))
        if self.covered:
            extras.append("covering")
        return "IndexOrderedScan({}:{}({}) order by {}{}{})".format(
            self.variable,
            self.label,
            ",".join(self.index_keys),
            order,
            ("".join(", " + extra for extra in extras)),
            "" if self.estimated_rows is None
            else ", est≈%d rows" % round(self.estimated_rows),
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class NodeCheck(Operator):
    """Verify an already-bound variable against a node pattern."""

    child: Operator
    variable: str
    node_pattern: object
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "NodeCheck({})".format(self.variable)

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Expand(Operator):
    """The paper's Expand: follow one relationship from a bound node.

    ``into`` distinguishes ExpandAll (bind a fresh target variable) from
    ExpandInto (target already bound; verify we arrived there).
    ``unique_with`` lists the row fields holding relationships bound
    earlier in the same MATCH (relationship-uniqueness morphisms);
    ``unique_nodes`` lists the current chain's earlier node variables and
    ``unique_segments`` its earlier variable-length segments as
    ``(from_variable, rel_variable)`` pairs — under node isomorphism the
    segment's unbound intermediate nodes also forbid reuse.  All three
    are interpreted by the morphism's
    :class:`~repro.semantics.morphism.UniquenessKernel`.
    """

    child: Operator
    from_variable: str
    to_variable: Optional[str]
    rel_variable: Optional[str]
    rel_pattern: object      # patterns.RelationshipPattern (rigid, length 1)
    node_pattern: object     # target patterns.NodePattern
    into: bool = False
    unique_with: Tuple[str, ...] = ()
    unique_nodes: Tuple[str, ...] = ()
    unique_segments: Tuple[Tuple[str, str], ...] = ()
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        kind = "Into" if self.into else "All"
        types = "|".join(self.rel_pattern.types)
        return "Expand{}({})-[{}{}]-({})".format(
            kind,
            self.from_variable,
            self.rel_variable or "",
            ":" + types if types else "",
            self.to_variable or "?",
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class VarLengthExpand(Operator):
    """Expand a variable-length relationship pattern (``*m..n``)."""

    child: Operator
    from_variable: str
    to_variable: Optional[str]
    rel_variable: Optional[str]
    rel_pattern: object
    node_pattern: object
    low: int = 1
    high: Optional[int] = None
    into: bool = False
    unique_with: Tuple[str, ...] = ()
    unique_nodes: Tuple[str, ...] = ()
    unique_segments: Tuple[Tuple[str, str], ...] = ()
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        types = "|".join(self.rel_pattern.types)
        bound = "{}..{}".format(self.low, self.high if self.high is not None else "")
        return "VarLengthExpand({})-[{}{}*{}]-({})".format(
            self.from_variable,
            self.rel_variable or "",
            ":" + types if types else "",
            bound,
            self.to_variable or "?",
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class ReachabilityProbe(VarLengthExpand):
    """A VarLengthExpand pruned by a reachability index.

    Emission semantics are *identical* to the parent operator — every
    walk that ends at the bound target, in the same DFS order — because
    the index only certifies which continuations can never reach the
    target (the walk itself remains the residual bound/uniqueness/
    property verification).  ``index_types`` names the declared type set
    serving the probe (a sorted tuple, or None for the all-types index);
    ``forward`` is the pruning direction (see
    :class:`repro.planner.access.ReachabilityCandidate`).  Both engines
    fall back to the plain walk when the executing graph (e.g. a
    snapshot view) does not expose the index.
    """

    index_types: object = None
    forward: bool = True
    estimated_rows: object = None

    def _describe_line(self):
        types = "|".join(self.rel_pattern.types)
        bound = "{}..{}".format(
            self.low, self.high if self.high is not None else ""
        )
        index = (
            "<any>" if self.index_types is None
            else ":" + "|".join(self.index_types)
        )
        return (
            "ReachabilityProbe({})-[{}{}*{}]-({}) via reach({}, {})".format(
                self.from_variable,
                self.rel_variable or "",
                ":" + types if types else "",
                bound,
                self.to_variable or "?",
                index,
                "forward" if self.forward else "reverse",
            )
        )


@dataclass(frozen=True)
class ProjectPath(Operator):
    """Assemble a named path (paper Section 4.1) from a matched chain.

    Placed after the chain's scans/expands; reads the element bindings in
    traversal order and binds a :class:`~repro.values.path.Path` value.
    ``steps`` holds one ``(rel_variable, node_variable, var_length)``
    triple per relationship pattern; a variable-length step carries a
    list of relationships whose intermediate nodes are reconstructed by
    walking the adjacency (each traversed relationship determines its far
    endpoint).  ``flip`` marks chains the planner walked from the other
    end: the assembled path is reversed back into pattern order.
    """

    child: Operator
    variable: str
    start_variable: str
    steps: Tuple[Tuple[str, str, bool], ...]
    flip: bool = False
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "ProjectPath({}{})".format(
            self.variable, " flipped" if self.flip else ""
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Filter(Operator):
    """Keep rows whose predicate evaluates to exactly true."""

    child: Operator
    predicate: object  # Expression
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        from repro.ast.printer import print_expression

        return "Filter({})".format(print_expression(self.predicate))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class ExtendedProject(Operator):
    """Evaluate projection items, keeping the input bindings alongside.

    Keeping the inputs lets a following Sort see both the aliases and the
    pre-projection variables (``ORDER BY`` may use either); a Strip node
    then reduces rows to the projection's own fields.
    """

    child: Operator
    items: Tuple[Tuple[str, object], ...]  # (output name, Expression)
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Project({})".format(", ".join(name for name, _ in self.items))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Strip(Operator):
    """Reduce every row to exactly the given fields (scope boundary)."""

    child: Operator
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Strip({})".format(", ".join(self.fields))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Distinct(Operator):
    """ε over the visible fields."""

    child: Operator
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Distinct({})".format(", ".join(self.fields))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Aggregate(Operator):
    """Hash aggregation: group by the non-aggregating items (Section 3)."""

    child: Operator
    grouping: Tuple[Tuple[str, object], ...]    # (name, Expression)
    aggregates: Tuple[Tuple[str, object], ...]  # (name, Expression w/ aggs)
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Aggregate(group=[{}], aggregates=[{}])".format(
            ", ".join(name for name, _ in self.grouping),
            ", ".join(name for name, _ in self.aggregates),
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Sort(Operator):
    child: Operator
    sort_items: Tuple[object, ...]  # clauses.SortItem
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        from repro.ast.printer import print_expression

        keys = ", ".join(
            print_expression(item.expression) + ("" if item.ascending else " DESC")
            for item in self.sort_items
        )
        return "Sort({})".format(keys)

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Top(Operator):
    """Fused ``ORDER BY … [SKIP s] LIMIT k``: a bounded top-k heap.

    Planned in place of :class:`Sort` whenever the projection also
    carries a LIMIT: instead of materialising and sorting the whole
    input, execution keeps a heap of the best ``limit (+ skip)`` rows
    seen so far and emits them in sort order.  The downstream Skip/Limit
    operators still run (they validate their counts and slice), so the
    observable semantics — including the error for a negative LIMIT —
    are exactly Sort + Skip + Limit.
    """

    child: Operator
    sort_items: Tuple[object, ...]  # clauses.SortItem
    limit: object                   # Expression (row-independent)
    skip: Optional[object] = None   # Expression or None
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        from repro.ast.printer import print_expression

        keys = ", ".join(
            print_expression(item.expression)
            + ("" if item.ascending else " DESC")
            for item in self.sort_items
        )
        return "Top({}{})".format(keys, ", +skip" if self.skip is not None else "")

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Skip(Operator):
    child: Operator
    count: object  # Expression
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Skip"

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Limit(Operator):
    child: Operator
    count: object  # Expression
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Limit"

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Unwind(Operator):
    child: Operator
    expression: object
    alias: str
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Unwind(... AS {})".format(self.alias)

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class OptionalApply(Operator):
    """OPTIONAL MATCH: run the inner plan per row; pad with nulls if empty."""

    child: Operator
    inner: Operator          # leaf is Argument
    pad_names: Tuple[str, ...] = ()
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Optional(pad=[{}])".format(", ".join(self.pad_names))

    def _children(self):
        return (self.child, self.inner)


@dataclass(frozen=True)
class Eager(Operator):
    """Barrier: fully materialise the child before yielding anything.

    Cypher's snapshot semantics — a clause's writes must not be visible
    to that clause's own reads — is trivially satisfied by the reference
    interpreter (it materialises every driving table), but the slotted
    pipeline streams rows lazily.  The planner therefore places an Eager
    in front of every updating operator, so the scans and expands
    upstream finish reading the pre-clause snapshot before the first
    write lands.  (The write operators additionally settle *all* their
    writes before emitting rows, acting as the downstream half of the
    same barrier.)
    """

    child: Operator
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Eager"

    def _children(self):
        return (self.child,)


def _pattern_names(patterns):
    """The visible variables a pattern tuple binds, for describe lines."""
    from repro.ast.patterns import free_variables

    return ", ".join(free_variables(patterns))


@dataclass(frozen=True)
class CreatePattern(Operator):
    """Instantiate rigid CREATE patterns once per driving row."""

    child: Operator
    patterns: Tuple[object, ...]  # patterns.PathPattern (validated rigid)
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Create({})".format(_pattern_names(self.patterns))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class MergePattern(Operator):
    """MERGE: per row, bind every match of ``inner`` or create ``pattern``.

    ``inner`` is a compiled match subplan over the merge pattern (leaf
    :class:`Argument`), exactly like :class:`OptionalApply`'s inner —
    it re-reads the live store per driving row, so a MERGE observes the
    rows an earlier row of the same clause created (Neo4j's documented
    behaviour).  ``on_create`` / ``on_match`` carry the SET items.
    """

    child: Operator
    pattern: object           # patterns.PathPattern (validated rigid)
    inner: Operator
    on_create: Tuple[object, ...] = ()
    on_match: Tuple[object, ...] = ()
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Merge({})".format(_pattern_names((self.pattern,)))

    def _children(self):
        return (self.child, self.inner)


def _set_item_names(items):
    from repro.ast import clauses as cl
    from repro.ast.printer import print_expression

    parts = []
    for item in items:
        if isinstance(item, cl.SetProperty):
            parts.append(
                "%s.%s" % (print_expression(item.subject), item.key)
            )
        elif isinstance(item, cl.SetVariable):
            parts.append("%s %s= ..." % (item.name, "+" if item.merge else ""))
        elif isinstance(item, cl.SetLabels):
            parts.append(item.name + "".join(":" + l for l in item.labels))
        elif isinstance(item, cl.RemoveProperty):
            parts.append(
                "%s.%s" % (print_expression(item.subject), item.key)
            )
        elif isinstance(item, cl.RemoveLabels):
            parts.append(item.name + "".join(":" + l for l in item.labels))
        else:
            parts.append(repr(item))
    return ", ".join(parts)


@dataclass(frozen=True)
class SetProperties(Operator):
    """Apply SET items (property / map / label writes) once per row."""

    child: Operator
    items: Tuple[object, ...]  # SetProperty | SetVariable | SetLabels
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "SetProperties({})".format(_set_item_names(self.items))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class RemoveItems(Operator):
    """Apply REMOVE items (property / label removals) once per row."""

    child: Operator
    items: Tuple[object, ...]  # RemoveProperty | RemoveLabels
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "RemoveItems({})".format(_set_item_names(self.items))

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class DeleteEntities(Operator):
    """Collect DELETE expression values over all rows, then delete.

    The deletions land in the store transaction's change buffer and are
    flushed once after the last row — relationships before nodes, the
    same two-phase order as the reference executor.
    """

    child: Operator
    expressions: Tuple[object, ...]
    detach: bool = False
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        from repro.ast.printer import print_expression

        return "{}Delete({})".format(
            "Detach" if self.detach else "",
            ", ".join(print_expression(e) for e in self.expressions),
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Union(Operator):
    left: Operator
    right: Operator
    all: bool = False
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Union{}".format(" ALL" if self.all else "")

    def _children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Exchange(Operator):
    """Repartition boundary: fan the child's morsel stream across workers.

    A *describe* operator — the parallel layer
    (:mod:`repro.planner.parallel`) never executes an Exchange node;
    it rebuilds the worker segment per partition instead.  The node
    exists so ``explain`` shows exactly where the plan splits, how many
    partitions the candidate list was (or would be) cut into, and which
    backend runs them.
    """

    child: Operator
    workers: int = 1
    partitions: Optional[int] = None
    scheduler: str = "serial"
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Exchange(workers={}, partitions{}, scheduler={})".format(
            self.workers,
            "≈?" if self.partitions is None else "=%d" % self.partitions,
            self.scheduler,
        )

    def _children(self):
        return (self.child,)


@dataclass(frozen=True)
class Gather(Operator):
    """Merge barrier: collect per-worker partial states, in chunk order.

    ``merge`` names the deterministic merge the gather performs:
    ``"ordered"`` (concatenate partition streams in partition order —
    bitwise the serial stream), ``"aggregate"`` / ``"sort"`` / ``"top"``
    / ``"distinct"`` (per-worker partial states combined exactly as the
    serial operator would have seen the stream).  Like
    :class:`Exchange`, a describe-only node.
    """

    child: Operator
    merge: str = "ordered"
    fields: Tuple[str, ...] = ()

    def _describe_line(self):
        return "Gather(merge={})".format(self.merge)

    def _children(self):
        return (self.child,)
