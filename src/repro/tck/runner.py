"""Parser and executor for the mini-Gherkin TCK dialect.

Supported steps::

    Scenario: <name>
      Given an empty graph
      And an index on :A(x)
      And having executed:
        '''
        CREATE (:A {x: 1})
        '''
      And parameters:
        | name | 42 |
      When executing query:
        '''
        MATCH (a:A) RETURN a.x AS x
        '''
      Then the result should be, in any order:
        | x |
        | 1 |
      Then the result should be, in order: ...
      Then the result should be empty
      Then a SyntaxError should be raised
      Then a TypeError should be raised
      Then a SemanticError should be raised

(The real TCK uses triple double-quotes; both quote styles are accepted.)
Expected cell values use Cypher literal syntax, plus node descriptors
``(:Label {k: v})`` and relationship descriptors ``[:TYPE {k: v}]`` that
compare structurally against the matched entities.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import (
    CypherError,
    CypherRuntimeError,
    CypherSemanticError,
    CypherSyntaxError,
    CypherTypeError,
)
from repro.graph.store import MemoryGraph
from repro.parser import parse_expression
from repro.runtime.engine import CypherEngine
from repro.semantics.expressions import Evaluator
from repro.values.base import NodeId, RelId
from repro.values.comparison import equals
from repro.values.ordering import canonical_key

_ERROR_CLASSES = {
    "SyntaxError": CypherSyntaxError,
    "TypeError": CypherTypeError,
    "SemanticError": CypherSemanticError,
    "RuntimeError": CypherRuntimeError,
    "Error": CypherError,
}


@dataclass
class Scenario:
    name: str
    setup_queries: List[str] = field(default_factory=list)
    indexes: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)
    query: Optional[str] = None
    expected_rows: Optional[List[List[str]]] = None  # raw cell text
    expected_columns: Optional[List[str]] = None
    ordered: bool = False
    expect_empty: bool = False
    expected_error: Optional[str] = None


@dataclass
class Feature:
    name: str
    scenarios: List[Scenario] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def parse_feature(text):
    """Parse a feature document into a Feature with its scenarios."""
    lines = text.splitlines()
    feature = Feature(name="")
    scenario = None
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        if line.startswith("Feature:"):
            feature.name = line[len("Feature:"):].strip()
        elif line.startswith("Scenario:"):
            scenario = Scenario(name=line[len("Scenario:"):].strip())
            feature.scenarios.append(scenario)
        elif scenario is None:
            continue
        elif line.startswith("Given an empty graph"):
            pass  # graphs always start empty here
        elif match := re.match(
            r"(And|Given) an index on :(\w+)\((\w+(?:\s*,\s*\w+)*)\)", line
        ):
            # Declared *before* the setup queries run, so every setup
            # write exercises the incremental index maintenance.  A
            # comma-separated key list declares a composite index.
            keys = tuple(
                key.strip() for key in match.group(3).split(",")
            )
            scenario.indexes.append((match.group(2), keys))
        elif re.match(r"(And|Given) having executed:", line):
            block, index = _read_block(lines, index)
            scenario.setup_queries.append(block)
        elif re.match(r"(And|Given) parameters:", line):
            rows, index = _read_table(lines, index)
            for row in rows:
                if len(row) != 2:
                    raise ValueError("parameter rows need 2 cells: %r" % row)
                scenario.parameters[row[0]] = _parse_cell_value(row[1], None, None)
        elif line.startswith("When executing query:"):
            block, index = _read_block(lines, index)
            scenario.query = block
        elif re.match(r"Then the result should be, in any order:", line):
            table, index = _read_table(lines, index)
            scenario.expected_columns = table[0]
            scenario.expected_rows = table[1:]
            scenario.ordered = False
        elif re.match(r"Then the result should be, in order:", line):
            table, index = _read_table(lines, index)
            scenario.expected_columns = table[0]
            scenario.expected_rows = table[1:]
            scenario.ordered = True
        elif line.startswith("Then the result should be empty"):
            scenario.expect_empty = True
        elif match := re.match(r"Then an? (\w+) should be raised", line):
            scenario.expected_error = match.group(1)
        elif line.startswith("And no side effects"):
            pass  # informational in this dialect
        else:
            raise ValueError("unrecognized TCK step: %r" % line)
    return feature


def _read_block(lines, index):
    """Read a triple-quoted block ('''...''' or \"\"\"...\"\"\")."""
    while index < len(lines) and not lines[index].strip():
        index += 1
    opener = lines[index].strip()
    if opener not in ("'''", '"""'):
        raise ValueError("expected a triple-quoted block, got %r" % opener)
    index += 1
    collected = []
    while index < len(lines) and lines[index].strip() != opener:
        collected.append(lines[index])
        index += 1
    if index == len(lines):
        raise ValueError("unterminated block")
    return "\n".join(collected).strip(), index + 1


def _read_table(lines, index):
    rows = []
    while index < len(lines):
        stripped = lines[index].strip()
        if not stripped.startswith("|"):
            break
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        rows.append(cells)
        index += 1
    if not rows:
        raise ValueError("expected a pipe-table")
    return rows, index


# ---------------------------------------------------------------------------
# Expected-value comparison
# ---------------------------------------------------------------------------

_NODE_DESCRIPTOR = re.compile(r"^\((?P<labels>(?::\w+)*)\s*(?P<map>\{.*\})?\)$")
_REL_DESCRIPTOR = re.compile(r"^\[:(?P<type>\w+)\s*(?P<map>\{.*\})?\]$")


def _parse_cell_value(cell, graph, evaluator):
    """Parse a cell as a Cypher literal (graph descriptors handled apart)."""
    expression = parse_expression(cell)
    scratch = evaluator or Evaluator(MemoryGraph())
    return scratch.evaluate(expression, {})


def _cell_matches(cell, actual, graph, evaluator):
    node_match = _NODE_DESCRIPTOR.match(cell)
    if node_match and cell != "()":
        if not isinstance(actual, NodeId):
            return False
        labels = set(
            label for label in node_match.group("labels").split(":") if label
        )
        if labels != set(graph.labels(actual)):
            return False
        return _map_matches(node_match.group("map"), actual, graph, evaluator)
    rel_match = _REL_DESCRIPTOR.match(cell)
    if rel_match:
        if not isinstance(actual, RelId):
            return False
        if graph.rel_type(actual) != rel_match.group("type"):
            return False
        return _map_matches(rel_match.group("map"), actual, graph, evaluator)
    expected = _parse_cell_value(cell, graph, evaluator)
    if expected is None:
        return actual is None
    return equals(expected, actual) is True


def _map_matches(map_text, entity, graph, evaluator):
    if not map_text:
        return not graph.properties(entity)
    expression = parse_expression(map_text)
    expected = evaluator.evaluate(expression, {})
    actual = graph.properties(entity)
    return equals(expected, actual) is True


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _uses_graph_clauses(query):
    """True if the query needs Cypher 10's multi-graph machinery."""
    from repro.ast import clauses as cl
    from repro.ast import queries as qu

    if isinstance(query, qu.UnionQuery):
        return _uses_graph_clauses(query.left) or _uses_graph_clauses(
            query.right
        )
    return any(
        isinstance(clause, (cl.FromGraph, cl.ReturnGraph))
        for clause in query.clauses
    )


def _assert_planner_coverage(query_text, result, label, graph):
    """Standard queries must run slotted: fallback here is a coverage bug.

    The planner covers the whole standard language — reads *and*
    updates — so in auto mode only the Cypher 10 graph clauses
    (FROM GRAPH / RETURN GRAPH) may report
    ``executed_by == "interpreter"``.  This turns every TCK scenario,
    updates scenarios included, into a coverage regression tripwire.
    """
    from repro.parser import parse_query

    if result.executed_by == "planner":
        _assert_batch_coverage(result, label, graph)
        return
    if _uses_graph_clauses(parse_query(query_text)):
        return
    raise AssertionError(
        "%s: standard query fell back to the interpreter (%s)"
        % (label, result.fallback_reason)
    )


def _assert_batch_coverage(result, label, graph):
    """A plan the batch engine claims must actually run batched.

    :func:`repro.planner.batch.plan_supports_batch` is a published
    contract, not best effort: on a bulk-capable store a claimed read
    plan silently degrading to row execution is a coverage regression,
    exactly like a planner→interpreter fallback.  Every TCK scenario
    that runs in auto mode doubles as a tripwire for it.  (On a store
    without the bulk APIs row execution is the correct outcome, so the
    claim is only enforced where it applies.)
    """
    from repro.planner.batch import graph_supports_batch, plan_supports_batch

    if result.plan is None or not graph_supports_batch(graph):
        return
    claimed = plan_supports_batch(result.plan)
    if claimed and result.execution_mode != "batch":
        raise AssertionError(
            "%s: batch-claimed plan ran in %r mode"
            % (label, result.execution_mode)
        )
    if not claimed and result.execution_mode == "batch":
        raise AssertionError(
            "%s: unclaimed plan reported batch execution" % label
        )


class TckRunner:
    """Executes parsed scenarios and raises AssertionError on mismatch.

    Every scenario runs once per mode: the reference interpreter, the
    auto path (slotted planner; batch execution wherever the batch
    engine claims the plan — asserted, never silent), and the forced
    row-wise planner, so the tuple-at-a-time operators keep full TCK
    coverage even though auto now prefers batch.
    """

    def __init__(self, modes=("interpreter", "auto", "row")):
        self.modes = modes

    def run_feature(self, text):
        feature = parse_feature(text)
        for scenario in feature.scenarios:
            self.run_scenario(scenario)
        return feature

    def run_scenario(self, scenario):
        for mode in self.modes:
            self._run_in_mode(scenario, mode)

    def _run_in_mode(self, scenario, mode):
        if mode not in ("interpreter", "auto") and scenario.query:
            # Pinned planner modes raise UnsupportedFeature instead of
            # falling back; graph-clause scenarios only run on the two
            # modes that can execute them.
            from repro.parser import parse_query

            try:
                if _uses_graph_clauses(parse_query(scenario.query)):
                    return
            except CypherError:
                pass  # expected-error scenarios exercise the engine below
        graph = MemoryGraph()
        engine = CypherEngine(graph, mode="interpreter")
        for label, keys in scenario.indexes:
            graph.create_index(label, *keys)
        for setup in scenario.setup_queries:
            engine.run(setup)
        engine.mode = mode
        label = "%s [%s]" % (scenario.name, mode)
        if scenario.expected_error is not None:
            error_class = _ERROR_CLASSES[scenario.expected_error]
            try:
                engine.run(scenario.query, parameters=scenario.parameters)
            except error_class:
                return
            except CypherError as error:
                raise AssertionError(
                    "%s: expected %s, got %r"
                    % (label, scenario.expected_error, error)
                )
            raise AssertionError(
                "%s: expected %s, none raised" % (label, scenario.expected_error)
            )
        result = engine.run(scenario.query, parameters=scenario.parameters)
        if mode == "auto":
            _assert_planner_coverage(scenario.query, result, label, graph)
        if scenario.expect_empty:
            assert len(result) == 0, (
                "%s: expected empty result, got %d rows" % (label, len(result))
            )
            return
        if scenario.expected_rows is None:
            return  # execution-only scenario
        assert list(result.columns) == scenario.expected_columns, (
            "%s: columns %r != expected %r"
            % (label, result.columns, scenario.expected_columns)
        )
        evaluator = Evaluator(graph)
        actual_rows = [
            [record[column] for column in scenario.expected_columns]
            for record in result.records
        ]
        expected = list(scenario.expected_rows)
        if scenario.ordered:
            assert len(actual_rows) == len(expected), (
                "%s: %d rows != expected %d"
                % (label, len(actual_rows), len(expected))
            )
            for row_index, (actual, cells) in enumerate(zip(actual_rows, expected)):
                for actual_value, cell in zip(actual, cells):
                    assert _cell_matches(cell, actual_value, graph, evaluator), (
                        "%s: row %d: %r does not match %r"
                        % (label, row_index, actual_value, cell)
                    )
            return
        # any order: greedy bipartite matching (rows are few in scenarios)
        remaining = list(range(len(actual_rows)))
        for cells in expected:
            found = None
            for candidate in remaining:
                if all(
                    _cell_matches(cell, value, graph, evaluator)
                    for cell, value in zip(cells, actual_rows[candidate])
                ):
                    found = candidate
                    break
            assert found is not None, (
                "%s: no actual row matches expected %r (unmatched: %r)"
                % (label, cells, [actual_rows[i] for i in remaining])
            )
            remaining.remove(found)
        assert not remaining, (
            "%s: %d unexpected extra rows: %r"
            % (label, len(remaining), [actual_rows[i] for i in remaining])
        )
