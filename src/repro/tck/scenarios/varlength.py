"""TCK suite: variable-length patterns (paper Section 4.2)."""

FEATURE = '''
Feature: Variable-length patterns

  Scenario: Star with bounds matches each admissible length
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})-[:R]->(c {v: 3})-[:R]->(d {v: 4})
      """
    When executing query:
      """
      MATCH ({v: 1})-[:R*1..2]->(x) RETURN x.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 2 |
      | 3 |

  Scenario: Exact length star
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})-[:R]->(c {v: 3})
      """
    When executing query:
      """
      MATCH ({v: 1})-[:R*2]->(x) RETURN x.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 3 |

  Scenario: Zero length allowed with *0..
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})
      """
    When executing query:
      """
      MATCH ({v: 1})-[:R*0..1]->(x) RETURN x.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 1 |
      | 2 |

  Scenario: The paper's self-loop example returns exactly two matches
    Given an empty graph
    And having executed:
      """
      CREATE (n {name: 'only'}), (n)-[:R]->(n)
      """
    When executing query:
      """
      MATCH (x)-[*0..]->(x) RETURN count(*) AS matches
      """
    Then the result should be, in any order:
      | matches |
      | 2       |

  Scenario: Variable-length relationship binds a list of relationships
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1})-[:R {w: 10}]->({v: 2})-[:R {w: 20}]->({v: 3})
      """
    When executing query:
      """
      MATCH ({v: 1})-[rs:R*2]->({v: 3})
      RETURN size(rs) AS n, [r IN rs | r.w] AS weights
      """
    Then the result should be, in any order:
      | n | weights  |
      | 2 | [10, 20] |

  Scenario: Example 4.5 duplicate — one binding, two rigid decompositions
    Given an empty graph
    And having executed:
      """
      CREATE (n1:Teacher {id: 1}), (n2:Student {id: 2}),
             (n3:Teacher {id: 3}), (n4:Teacher {id: 4}),
             (n1)-[:KNOWS]->(n2), (n2)-[:KNOWS]->(n3), (n3)-[:KNOWS]->(n4)
      """
    When executing query:
      """
      MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher)
      WHERE x.id = 1 AND y.id = 4
      RETURN count(*) AS multiplicity
      """
    Then the result should be, in any order:
      | multiplicity |
      | 2            |

  Scenario: Unbounded star terminates thanks to edge isomorphism
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2}), (b)-[:R]->(a)
      """
    When executing query:
      """
      MATCH ({v: 1})-[:R*]->(x) RETURN x.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 2 |
      | 1 |

  Scenario: Undirected variable-length walks both ways
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2}), (c {v: 3})-[:R]->(b)
      """
    When executing query:
      """
      MATCH ({v: 1})-[:R*2]-(x) RETURN x.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 3 |

  Scenario: Variable-length with property filter on every step
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R {ok: true}]->(b {v: 2})-[:R {ok: false}]->(c {v: 3}),
             (b)-[:R {ok: true}]->(d {v: 4})
      """
    When executing query:
      """
      MATCH ({v: 1})-[:R* {ok: true}]->(x) RETURN x.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 2 |
      | 4 |

  Scenario: The Example 4.6 MATCH table
    Given an empty graph
    And having executed:
      """
      CREATE (n1:Teacher {id: 1}), (n2:Student {id: 2}),
             (n3:Teacher {id: 3}), (n4:Teacher {id: 4}),
             (n1)-[:KNOWS]->(n2), (n2)-[:KNOWS]->(n3), (n3)-[:KNOWS]->(n4)
      """
    When executing query:
      """
      MATCH (x)-[:KNOWS*]->(y) WHERE x.id = 1 OR x.id = 3
      RETURN x.id AS x, y.id AS y
      """
    Then the result should be, in any order:
      | x | y |
      | 1 | 2 |
      | 1 | 3 |
      | 1 | 4 |
      | 3 | 4 |
'''
