"""TCK suite: WITH/RETURN aggregation (implicit grouping keys)."""

FEATURE = '''
Feature: Aggregation

  Scenario: count skips nulls, count(*) does not
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 2}), ()
      """
    When executing query:
      """
      MATCH (n) RETURN count(n.v) AS values, count(*) AS rows
      """
    Then the result should be, in any order:
      | values | rows |
      | 2      | 3    |

  Scenario: Non-aggregating items are the implicit grouping key
    Given an empty graph
    And having executed:
      """
      CREATE ({g: 'a', v: 1}), ({g: 'a', v: 2}), ({g: 'b', v: 10})
      """
    When executing query:
      """
      MATCH (n) RETURN n.g AS g, sum(n.v) AS total
      """
    Then the result should be, in any order:
      | g   | total |
      | 'a' | 3     |
      | 'b' | 10    |

  Scenario: count DISTINCT
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 1}), ({v: 2})
      """
    When executing query:
      """
      MATCH (n) RETURN count(DISTINCT n.v) AS distinct_values
      """
    Then the result should be, in any order:
      | distinct_values |
      | 2               |

  Scenario: collect gathers non-null values
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 2}), ()
      """
    When executing query:
      """
      MATCH (n) WITH n.v AS v ORDER BY v RETURN collect(v) AS vs
      """
    Then the result should be, in any order:
      | vs     |
      | [1, 2] |

  Scenario: min and max
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 5}), ({v: 1}), ({v: 3})
      """
    When executing query:
      """
      MATCH (n) RETURN min(n.v) AS lo, max(n.v) AS hi
      """
    Then the result should be, in any order:
      | lo | hi |
      | 1  | 5  |

  Scenario: avg over a group
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 2}), ({v: 4})
      """
    When executing query:
      """
      MATCH (n) RETURN avg(n.v) AS mean
      """
    Then the result should be, in any order:
      | mean |
      | 3.0  |

  Scenario: Global aggregation over no rows yields one row
    Given an empty graph
    When executing query:
      """
      MATCH (n) RETURN count(n) AS c, sum(n.v) AS s, collect(n) AS l, max(n.v) AS m
      """
    Then the result should be, in any order:
      | c | s | l  | m    |
      | 0 | 0 | [] | null |

  Scenario: Grouped aggregation over no rows yields no rows
    Given an empty graph
    When executing query:
      """
      MATCH (n) RETURN n.g AS g, count(*) AS c
      """
    Then the result should be empty

  Scenario: Aggregation inside WITH drives the rest of the query
    Given an empty graph
    And having executed:
      """
      CREATE ({g: 'a'}), ({g: 'a'}), ({g: 'b'})
      """
    When executing query:
      """
      MATCH (n) WITH n.g AS g, count(*) AS c WHERE c > 1 RETURN g
      """
    Then the result should be, in any order:
      | g   |
      | 'a' |

  Scenario: Aggregate expression arithmetic
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 2}), ({v: 3})
      """
    When executing query:
      """
      MATCH (n) RETURN sum(n.v) + count(*) AS combined
      """
    Then the result should be, in any order:
      | combined |
      | 9        |

  Scenario: Nested aggregation is an error
    Given an empty graph
    When executing query:
      """
      MATCH (n) RETURN sum(count(n)) AS bad
      """
    Then a SemanticError should be raised

  Scenario: Aggregates are not allowed in WHERE
    Given an empty graph
    When executing query:
      """
      MATCH (n) WHERE count(n) > 0 RETURN n
      """
    Then a SemanticError should be raised

  Scenario: stdev of a constant sample is zero
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 4}), ({v: 4}), ({v: 4})
      """
    When executing query:
      """
      MATCH (n) RETURN stdev(n.v) AS dev
      """
    Then the result should be, in any order:
      | dev |
      | 0.0 |

  Scenario: percentileDisc picks an actual sample value
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 10}), ({v: 20}), ({v: 30})
      """
    When executing query:
      """
      MATCH (n) RETURN percentileDisc(n.v, 0.5) AS median
      """
    Then the result should be, in any order:
      | median |
      | 20.0   |
'''
