"""TCK suite: named paths and path functions (paths are values, §2/§4.1)."""

FEATURE = '''
Feature: Named paths

  Scenario: A named path binds a path value
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1})-[:R]->({v: 2})
      """
    When executing query:
      """
      MATCH p = ({v: 1})-[:R]->({v: 2}) RETURN length(p) AS len
      """
    Then the result should be, in any order:
      | len |
      | 1   |

  Scenario: nodes() and relationships() decompose a path
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1})-[:R {w: 5}]->({v: 2})-[:R {w: 6}]->({v: 3})
      """
    When executing query:
      """
      MATCH p = ({v: 1})-[:R*2]->({v: 3})
      RETURN size(nodes(p)) AS n, size(relationships(p)) AS r,
             [x IN nodes(p) | x.v] AS vs,
             [x IN relationships(p) | x.w] AS ws
      """
    Then the result should be, in any order:
      | n | r | vs        | ws     |
      | 3 | 2 | [1, 2, 3] | [5, 6] |

  Scenario: Zero-length path over a single node
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1})
      """
    When executing query:
      """
      MATCH p = (n {v: 1}) RETURN length(p) AS len, size(nodes(p)) AS n
      """
    Then the result should be, in any order:
      | len | n |
      | 0   | 1 |

  Scenario: One row per path, not per binding
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2}), (a)-[:R]->(c {v: 3})
      """
    When executing query:
      """
      MATCH p = ({v: 1})-[:R]->() RETURN count(p) AS n
      """
    Then the result should be, in any order:
      | n |
      | 2 |

  Scenario: Paths can be collected and ordered by length
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})-[:R]->(c {v: 3})
      """
    When executing query:
      """
      MATCH p = ({v: 1})-[:R*1..2]->()
      RETURN length(p) AS len ORDER BY len
      """
    Then the result should be, in order:
      | len |
      | 1   |
      | 2   |

  Scenario: Path equality compares the traversal
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})
      """
    When executing query:
      """
      MATCH p1 = ({v: 1})-[:R]->()
      MATCH p2 = ()-[:R]->({v: 2})
      RETURN p1 = p2 AS same
      """
    Then the result should be, in any order:
      | same |
      | true |

  Scenario: One relationship cannot serve two paths of the same MATCH
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})
      """
    When executing query:
      """
      MATCH p1 = ({v: 1})-[:R]->(), p2 = ()-[:R]->({v: 2})
      RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 0 |

  Scenario: Undirected match binds the path in traversal order
    Given an empty graph
    And having executed:
      """
      CREATE (a {v: 1})-[:R]->(b {v: 2})
      """
    When executing query:
      """
      MATCH p = ({v: 2})-[:R]-({v: 1})
      RETURN [x IN nodes(p) | x.v] AS vs
      """
    Then the result should be, in any order:
      | vs     |
      | [2, 1] |
'''
