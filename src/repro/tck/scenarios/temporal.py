"""TCK suite: Cypher 10 temporal types (paper Section 6)."""

FEATURE = '''
Feature: Temporal types

  Scenario: Date construction and components
    Given an empty graph
    When executing query:
      """
      WITH date('2018-06-10') AS d
      RETURN d.year AS y, d.month AS m, d.day AS day
      """
    Then the result should be, in any order:
      | y    | m | day |
      | 2018 | 6 | 10  |

  Scenario: Dates compare chronologically
    Given an empty graph
    When executing query:
      """
      RETURN date('2018-01-01') < date('2018-06-10') AS before,
             date('2018-06-10') = date('2018-06-10') AS same
      """
    Then the result should be, in any order:
      | before | same |
      | true   | true |

  Scenario: Date plus duration with month clamping
    Given an empty graph
    When executing query:
      """
      RETURN (date('2018-01-31') + duration('P1M')).day AS clamped
      """
    Then the result should be, in any order:
      | clamped |
      | 28      |

  Scenario: DateTime offsets normalize for comparison
    Given an empty graph
    When executing query:
      """
      RETURN datetime('2018-06-10T12:00:00Z') =
             datetime('2018-06-10T14:00:00+02:00') AS same_instant
      """
    Then the result should be, in any order:
      | same_instant |
      | true         |

  Scenario: LocalTime arithmetic wraps midnight
    Given an empty graph
    When executing query:
      """
      RETURN (localtime('23:30:00') + duration('PT2H')).hour AS h
      """
    Then the result should be, in any order:
      | h |
      | 1 |

  Scenario: Durations from component maps
    Given an empty graph
    When executing query:
      """
      WITH duration({hours: 1, minutes: 30}) AS d
      RETURN d.minutes AS total_minutes
      """
    Then the result should be, in any order:
      | total_minutes |
      | 90            |

  Scenario: Duration multiplication
    Given an empty graph
    When executing query:
      """
      WITH duration('P1D') * 3 AS d RETURN d.days AS days
      """
    Then the result should be, in any order:
      | days |
      | 3    |

  Scenario: Temporal values stored as properties
    Given an empty graph
    And having executed:
      """
      CREATE (:Event {on: date('2018-06-10')}),
             (:Event {on: date('2018-06-12')})
      """
    When executing query:
      """
      MATCH (e:Event) WHERE e.on > date('2018-06-11')
      RETURN e.on.day AS day
      """
    Then the result should be, in any order:
      | day |
      | 12  |

  Scenario: Temporal values group and order
    Given an empty graph
    And having executed:
      """
      CREATE ({d: date('2018-01-02')}), ({d: date('2018-01-01')}),
             ({d: date('2018-01-02')})
      """
    When executing query:
      """
      MATCH (n) RETURN n.d.day AS day, count(*) AS c ORDER BY day
      """
    Then the result should be, in order:
      | day | c |
      | 1   | 1 |
      | 2   | 2 |

  Scenario: Mixed temporal types are not equal
    Given an empty graph
    When executing query:
      """
      RETURN date('2018-06-10') = localdatetime('2018-06-10T00:00:00') AS eq
      """
    Then the result should be, in any order:
      | eq    |
      | false |
'''
