"""Morsel-boundary scenarios for the vectorised batch engine.

Result cardinalities of exactly N−1, N and N+1 around the default
morsel size, empty batches, and LIMIT/SKIP cutting inside a batch —
the places where chunked columnar execution classically loses or
duplicates a row.  The feature text is generated from
:data:`repro.planner.batch.DEFAULT_MORSEL_SIZE`, so retuning the knob
keeps every scenario pinned to the real boundary.

The TCK runner executes each scenario on the interpreter, the auto path
(which must pick — and report — batch execution for these plans, all of
which the batch engine claims) and the forced row path, asserting the
same results everywhere.
"""

from repro.planner.batch import DEFAULT_MORSEL_SIZE as N

FEATURE = """
Feature: Batch morsel boundaries

  Scenario: scan cardinality exactly one under the morsel size
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_minus}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | {n_minus} |

  Scenario: scan cardinality exactly the morsel size
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) RETURN count(*) AS c, min(n.v) AS lo, max(n.v) AS hi
      '''
    Then the result should be, in any order:
      | c | lo | hi |
      | {n} | 1 | {n} |

  Scenario: scan cardinality exactly one over the morsel size
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) RETURN count(*) AS c, max(n.v) AS hi
      '''
    Then the result should be, in any order:
      | c | hi |
      | {n_plus} | {n_plus} |

  Scenario: empty label scan produces an empty result
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, 3) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:Missing) RETURN n.v AS v
      '''
    Then the result should be empty

  Scenario: filter drains every batch to empty
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) WHERE n.v > 9999 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 0 |

  Scenario: LIMIT cuts exactly at the morsel boundary
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) WITH n.v AS v ORDER BY v LIMIT {n}
      RETURN count(*) AS c, min(v) AS lo, max(v) AS hi
      '''
    Then the result should be, in any order:
      | c | lo | hi |
      | {n} | 1 | {n} |

  Scenario: SKIP cuts inside the final batch
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) WITH n.v AS v ORDER BY v SKIP {n_minus}
      RETURN v
      '''
    Then the result should be, in order:
      | v |
      | {n} |
      | {n_plus} |

  Scenario: LIMIT zero never produces rows
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) RETURN n.v AS v ORDER BY v LIMIT 0
      '''
    Then the result should be empty

  Scenario: top-k heap selects across batch boundaries
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:N {{v: i}})
      '''
    When executing query:
      '''
      MATCH (n:N) RETURN n.v AS v ORDER BY v DESC LIMIT 3
      '''
    Then the result should be, in order:
      | v |
      | {n_plus} |
      | {n} |
      | {n_minus} |

  Scenario: DISTINCT deduplicates across batch boundaries
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:D {{v: i % 2}})
      '''
    When executing query:
      '''
      MATCH (n:D) RETURN DISTINCT n.v AS v ORDER BY v
      '''
    Then the result should be, in order:
      | v |
      | 0 |
      | 1 |

  Scenario: grouped aggregation spans batches
    Given an empty graph
    And having executed:
      '''
      UNWIND range(1, {n_plus}) AS i CREATE (:G {{v: i % 3}})
      '''
    When executing query:
      '''
      MATCH (n:G) RETURN n.v AS v, count(*) AS c ORDER BY v
      '''
    Then the result should be, in order:
      | v | c |
      | 0 | {third_0} |
      | 1 | {third_1} |
      | 2 | {third_2} |
""".format(
    n=N,
    n_minus=N - 1,
    n_plus=N + 1,
    third_0=sum(1 for i in range(1, N + 2) if i % 3 == 0),
    third_1=sum(1 for i in range(1, N + 2) if i % 3 == 1),
    third_2=sum(1 for i in range(1, N + 2) if i % 3 == 2),
)
