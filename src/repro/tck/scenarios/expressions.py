"""TCK suite: expression semantics (3-valued logic, CASE, strings)."""

FEATURE = '''
Feature: Expressions

  Scenario: Three-valued AND
    Given an empty graph
    When executing query:
      """
      RETURN (true AND null) AS a, (false AND null) AS b, (null AND null) AS c
      """
    Then the result should be, in any order:
      | a    | b     | c    |
      | null | false | null |

  Scenario: Three-valued OR
    Given an empty graph
    When executing query:
      """
      RETURN (true OR null) AS a, (false OR null) AS b
      """
    Then the result should be, in any order:
      | a    | b    |
      | true | null |

  Scenario: XOR and NOT with null
    Given an empty graph
    When executing query:
      """
      RETURN (true XOR false) AS a, (true XOR null) AS b, (NOT null) AS c
      """
    Then the result should be, in any order:
      | a    | b    | c    |
      | true | null | null |

  Scenario: Equality with null is unknown
    Given an empty graph
    When executing query:
      """
      RETURN (null = null) AS a, (1 = null) AS b, (1 <> null) AS c
      """
    Then the result should be, in any order:
      | a    | b    | c    |
      | null | null | null |

  Scenario: IS NULL and IS NOT NULL
    Given an empty graph
    When executing query:
      """
      RETURN (null IS NULL) AS a, (1 IS NULL) AS b, (1 IS NOT NULL) AS c
      """
    Then the result should be, in any order:
      | a    | b     | c    |
      | true | false | true |

  Scenario: Comparison chaining is conjunctive
    Given an empty graph
    When executing query:
      """
      RETURN (1 < 2 < 3) AS a, (1 < 3 < 2) AS b
      """
    Then the result should be, in any order:
      | a    | b     |
      | true | false |

  Scenario: Mixed-type equality is false, ordering unknown
    Given an empty graph
    When executing query:
      """
      RETURN (1 = 'a') AS eq, (1 < 'a') AS lt
      """
    Then the result should be, in any order:
      | eq    | lt   |
      | false | null |

  Scenario: Integer and float compare numerically
    Given an empty graph
    When executing query:
      """
      RETURN (1 = 1.0) AS eq, (1 < 1.5) AS lt
      """
    Then the result should be, in any order:
      | eq   | lt   |
      | true | true |

  Scenario: Arithmetic operators
    Given an empty graph
    When executing query:
      """
      RETURN 7 + 3 AS add, 7 - 3 AS sub, 7 * 3 AS mul, 7 / 3 AS div, 7 % 3 AS mod, 2 ^ 3 AS pow
      """
    Then the result should be, in any order:
      | add | sub | mul | div | mod | pow |
      | 10  | 4   | 21  | 2   | 1   | 8.0 |

  Scenario: Integer division truncates toward zero
    Given an empty graph
    When executing query:
      """
      RETURN -7 / 2 AS a, 7 / -2 AS b, -7 % 2 AS c
      """
    Then the result should be, in any order:
      | a  | b  | c  |
      | -3 | -3 | -1 |

  Scenario: Division by zero is an error for integers
    Given an empty graph
    When executing query:
      """
      RETURN 1 / 0 AS boom
      """
    Then a RuntimeError should be raised

  Scenario: String predicates
    Given an empty graph
    When executing query:
      """
      RETURN 'hello' STARTS WITH 'he' AS a,
             'hello' ENDS WITH 'lo' AS b,
             'hello' CONTAINS 'ell' AS c,
             'hello' CONTAINS 'xyz' AS d
      """
    Then the result should be, in any order:
      | a    | b    | c    | d     |
      | true | true | true | false |

  Scenario: String predicate on null is unknown
    Given an empty graph
    When executing query:
      """
      RETURN (null STARTS WITH 'a') AS a, ('abc' CONTAINS null) AS b
      """
    Then the result should be, in any order:
      | a    | b    |
      | null | null |

  Scenario: Regular expression match
    Given an empty graph
    When executing query:
      """
      RETURN ('timothy' =~ 't.*y') AS a, ('timothy' =~ 'T.*y') AS b
      """
    Then the result should be, in any order:
      | a    | b     |
      | true | false |

  Scenario: Searched CASE
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 5}), ({v: 15})
      """
    When executing query:
      """
      MATCH (n)
      RETURN n.v AS v, CASE WHEN n.v < 10 THEN 'small' ELSE 'big' END AS size
      """
    Then the result should be, in any order:
      | v  | size    |
      | 5  | 'small' |
      | 15 | 'big'   |

  Scenario: Simple CASE with default
    Given an empty graph
    When executing query:
      """
      RETURN CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END AS w
      """
    Then the result should be, in any order:
      | w     |
      | 'two' |

  Scenario: Property access on null is null
    Given an empty graph
    When executing query:
      """
      RETURN null.foo AS a
      """
    Then the result should be, in any order:
      | a    |
      | null |

  Scenario: Missing property is null (ι is a partial function)
    Given an empty graph
    And having executed:
      """
      CREATE ({present: 1})
      """
    When executing query:
      """
      MATCH (n) RETURN n.absent AS a, exists(n.present) AS b, exists(n.absent) AS c
      """
    Then the result should be, in any order:
      | a    | b    | c     |
      | null | true | false |

  Scenario: coalesce returns the first non-null
    Given an empty graph
    When executing query:
      """
      RETURN coalesce(null, null, 3, 4) AS c
      """
    Then the result should be, in any order:
      | c |
      | 3 |

  Scenario: Map literals and nested access
    Given an empty graph
    When executing query:
      """
      RETURN {a: 1, b: {c: 'x'}}.b.c AS v
      """
    Then the result should be, in any order:
      | v   |
      | 'x' |

  Scenario: Parameters substitute values
    Given an empty graph
    And parameters:
      | threshold | 2 |
    When executing query:
      """
      UNWIND [1, 2, 3, 4] AS x WITH x WHERE x > $threshold RETURN x
      """
    Then the result should be, in any order:
      | x |
      | 3 |
      | 4 |

  Scenario: Unbound parameter is an error
    Given an empty graph
    When executing query:
      """
      RETURN $missing AS m
      """
    Then a RuntimeError should be raised

  Scenario: Quantified predicates
    Given an empty graph
    When executing query:
      """
      RETURN all(x IN [1, 2, 3] WHERE x > 0) AS a,
             any(x IN [1, 2, 3] WHERE x > 2) AS b,
             none(x IN [1, 2, 3] WHERE x > 3) AS c,
             single(x IN [1, 2, 3] WHERE x = 2) AS d
      """
    Then the result should be, in any order:
      | a    | b    | c    | d    |
      | true | true | true | true |

  Scenario: toString, toInteger, toFloat
    Given an empty graph
    When executing query:
      """
      RETURN toString(42) AS s, toInteger('7') AS i, toFloat('2.5') AS f
      """
    Then the result should be, in any order:
      | s    | i | f   |
      | '42' | 7 | 2.5 |
'''
