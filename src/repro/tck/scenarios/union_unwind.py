"""TCK suite: UNION, UNWIND, WITH pipelines, ORDER BY / SKIP / LIMIT."""

FEATURE = '''
Feature: Query composition

  Scenario: UNION eliminates duplicates
    Given an empty graph
    When executing query:
      """
      RETURN 1 AS x UNION RETURN 1 AS x
      """
    Then the result should be, in any order:
      | x |
      | 1 |

  Scenario: UNION ALL keeps duplicates
    Given an empty graph
    When executing query:
      """
      RETURN 1 AS x UNION ALL RETURN 1 AS x
      """
    Then the result should be, in any order:
      | x |
      | 1 |
      | 1 |

  Scenario: UNION with different columns is an error
    Given an empty graph
    When executing query:
      """
      RETURN 1 AS x UNION RETURN 1 AS y
      """
    Then a SemanticError should be raised

  Scenario: WITH renames and filters
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 2}), ({v: 3})
      """
    When executing query:
      """
      MATCH (n) WITH n.v AS value WHERE value >= 2 RETURN value
      """
    Then the result should be, in any order:
      | value |
      | 2     |
      | 3     |

  Scenario: Variables not projected by WITH go out of scope
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1})
      """
    When executing query:
      """
      MATCH (n) WITH n.v AS value RETURN n
      """
    Then a SemanticError should be raised

  Scenario: ORDER BY ascending and descending
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 2}), ({v: 1}), ({v: 3})
      """
    When executing query:
      """
      MATCH (n) RETURN n.v AS v ORDER BY v DESC
      """
    Then the result should be, in order:
      | v |
      | 3 |
      | 2 |
      | 1 |

  Scenario: null sorts last ascending
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 2}), (), ({v: 1})
      """
    When executing query:
      """
      MATCH (n) RETURN n.v AS v ORDER BY v
      """
    Then the result should be, in order:
      | v    |
      | 1    |
      | 2    |
      | null |

  Scenario: SKIP and LIMIT page through ordered results
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 2}), ({v: 3}), ({v: 4})
      """
    When executing query:
      """
      MATCH (n) RETURN n.v AS v ORDER BY v SKIP 1 LIMIT 2
      """
    Then the result should be, in order:
      | v |
      | 2 |
      | 3 |

  Scenario: ORDER BY may use a pre-projection variable
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 2, w: 30}), ({v: 1, w: 10}), ({v: 3, w: 20})
      """
    When executing query:
      """
      MATCH (n) RETURN n.v AS v ORDER BY n.w
      """
    Then the result should be, in order:
      | v |
      | 1 |
      | 3 |
      | 2 |

  Scenario: DISTINCT projection
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1}), ({v: 1}), ({v: 2})
      """
    When executing query:
      """
      MATCH (n) RETURN DISTINCT n.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 1 |
      | 2 |

  Scenario: UNWIND then aggregate
    Given an empty graph
    When executing query:
      """
      UNWIND [1, 2, 3, 4] AS x RETURN sum(x) AS total
      """
    Then the result should be, in any order:
      | total |
      | 10    |

  Scenario: UNWIND of a non-list yields the value itself (Figure 7)
    Given an empty graph
    When executing query:
      """
      UNWIND 42 AS x RETURN x
      """
    Then the result should be, in any order:
      | x  |
      | 42 |

  Scenario: Chained UNWINDs multiply rows
    Given an empty graph
    When executing query:
      """
      UNWIND [1, 2] AS x UNWIND ['a', 'b'] AS y RETURN x, y
      """
    Then the result should be, in any order:
      | x | y   |
      | 1 | 'a' |
      | 1 | 'b' |
      | 2 | 'a' |
      | 2 | 'b' |

  Scenario: RETURN * projects all fields
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 7})
      """
    When executing query:
      """
      MATCH (n) WITH n.v AS v, n.v * 2 AS w RETURN *
      """
    Then the result should be, in any order:
      | v | w  |
      | 7 | 14 |

  Scenario: WITH DISTINCT collapses before the next clause
    Given an empty graph
    And having executed:
      """
      CREATE ({g: 'a'}), ({g: 'a'}), ({g: 'b'})
      """
    When executing query:
      """
      MATCH (n) WITH DISTINCT n.g AS g RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 2 |
'''
