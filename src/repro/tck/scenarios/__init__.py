"""Scenario suites for the mini-TCK.

Each module exposes a ``FEATURE`` string in the dialect of
:mod:`repro.tck.runner`; ``ALL_FEATURES`` collects them for the test
suite, which runs every scenario on both execution paths.
"""

from repro.tck.scenarios import (
    aggregation,
    batching,
    expressions,
    indexes,
    lists,
    match_basic,
    named_paths,
    optional_match,
    string_functions,
    temporal,
    union_unwind,
    updates,
    varlength,
)

ALL_FEATURES = {
    "batching": batching.FEATURE,
    "indexes": indexes.FEATURE,
    "match_basic": match_basic.FEATURE,
    "optional_match": optional_match.FEATURE,
    "aggregation": aggregation.FEATURE,
    "expressions": expressions.FEATURE,
    "lists": lists.FEATURE,
    "varlength": varlength.FEATURE,
    "union_unwind": union_unwind.FEATURE,
    "updates": updates.FEATURE,
    "named_paths": named_paths.FEATURE,
    "string_functions": string_functions.FEATURE,
    "temporal": temporal.FEATURE,
}

__all__ = ["ALL_FEATURES"]
