"""TCK suite: string functions and null propagation through F."""

FEATURE = '''
Feature: String functions

  Scenario: Case conversion and trimming
    Given an empty graph
    When executing query:
      """
      RETURN toUpper('abc') AS up, toLower('ABC') AS low,
             trim('  x ') AS t, ltrim('  x') AS l, rtrim('x  ') AS r
      """
    Then the result should be, in any order:
      | up    | low   | t   | l   | r   |
      | 'ABC' | 'abc' | 'x' | 'x' | 'x' |

  Scenario: replace and split
    Given an empty graph
    When executing query:
      """
      RETURN replace('banana', 'na', '*') AS r, split('a,b,c', ',') AS s
      """
    Then the result should be, in any order:
      | r      | s               |
      | 'ba**' | ['a', 'b', 'c'] |

  Scenario: substring, left, right
    Given an empty graph
    When executing query:
      """
      RETURN substring('hello', 1, 3) AS mid, left('hello', 2) AS l,
             right('hello', 2) AS r
      """
    Then the result should be, in any order:
      | mid   | l    | r    |
      | 'ell' | 'he' | 'lo' |

  Scenario: reverse works on strings and lists
    Given an empty graph
    When executing query:
      """
      RETURN reverse('abc') AS s, reverse([1, 2, 3]) AS l
      """
    Then the result should be, in any order:
      | s     | l         |
      | 'cba' | [3, 2, 1] |

  Scenario: String functions propagate null
    Given an empty graph
    When executing query:
      """
      RETURN toUpper(null) AS a, replace('x', null, 'y') AS b,
             split(null, ',') AS c, substring(null, 1) AS d
      """
    Then the result should be, in any order:
      | a    | b    | c    | d    |
      | null | null | null | null |

  Scenario: String concatenation with +
    Given an empty graph
    When executing query:
      """
      RETURN 'ab' + 'cd' AS joined, 'x' + null AS gone
      """
    Then the result should be, in any order:
      | joined | gone |
      | 'abcd' | null |

  Scenario: size() of a string counts characters
    Given an empty graph
    When executing query:
      """
      RETURN size('hello') AS n, size('') AS zero
      """
    Then the result should be, in any order:
      | n | zero |
      | 5 | 0    |

  Scenario: Strings are ordered lexicographically in ORDER BY
    Given an empty graph
    And having executed:
      """
      CREATE ({s: 'pear'}), ({s: 'apple'}), ({s: 'plum'})
      """
    When executing query:
      """
      MATCH (n) RETURN n.s AS s ORDER BY s
      """
    Then the result should be, in order:
      | s       |
      | 'apple' |
      | 'pear'  |
      | 'plum'  |

  Scenario: toString round-trips numbers and booleans
    Given an empty graph
    When executing query:
      """
      RETURN toString(42) AS i, toString(2.5) AS f, toString(false) AS b
      """
    Then the result should be, in any order:
      | i    | f     | b       |
      | '42' | '2.5' | 'false' |
'''
