"""TCK suite: OPTIONAL MATCH (the paper's outer-join analogue)."""

FEATURE = '''
Feature: OPTIONAL MATCH

  Scenario: Missing match pads with null
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'})
      """
    When executing query:
      """
      MATCH (p:Person) OPTIONAL MATCH (p)-[:KNOWS]->(f) RETURN p.name AS p, f
      """
    Then the result should be, in any order:
      | p     | f    |
      | 'Ann' | null |

  Scenario: Found matches expand normally
    Given an empty graph
    And having executed:
      """
      CREATE (a:Person {name: 'Ann'})-[:KNOWS]->(:Person {name: 'Bob'}),
             (a)-[:KNOWS]->(:Person {name: 'Cid'})
      """
    When executing query:
      """
      MATCH (p:Person {name: 'Ann'})
      OPTIONAL MATCH (p)-[:KNOWS]->(f)
      RETURN f.name AS friend
      """
    Then the result should be, in any order:
      | friend |
      | 'Bob'  |
      | 'Cid'  |

  Scenario: Per-row padding (the Figure 2a table shape)
    Given an empty graph
    And having executed:
      """
      CREATE (n1:Researcher {name: 'Nils'}),
             (n6:Researcher {name: 'Elin'}),
             (n10:Researcher {name: 'Thor'}),
             (n7:Student {name: 'Sten'}), (n8:Student {name: 'Linda'}),
             (n6)-[:SUPERVISES]->(n7), (n6)-[:SUPERVISES]->(n8),
             (n10)-[:SUPERVISES]->(n7)
      """
    When executing query:
      """
      MATCH (r:Researcher)
      OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
      RETURN r.name AS r, s.name AS s
      """
    Then the result should be, in any order:
      | r      | s       |
      | 'Nils' | null    |
      | 'Elin' | 'Sten'  |
      | 'Elin' | 'Linda' |
      | 'Thor' | 'Sten'  |

  Scenario: WHERE belongs to the OPTIONAL MATCH, not a post-filter
    Given an empty graph
    And having executed:
      """
      CREATE (a:Person {name: 'Ann', age: 30})-[:KNOWS]->(:Person {name: 'Bob', age: 10})
      """
    When executing query:
      """
      MATCH (p:Person {name: 'Ann'})
      OPTIONAL MATCH (p)-[:KNOWS]->(f) WHERE f.age > 20
      RETURN p.name AS p, f
      """
    Then the result should be, in any order:
      | p     | f    |
      | 'Ann' | null |

  Scenario: Null binding flows through later expressions
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'})
      """
    When executing query:
      """
      MATCH (p:Person) OPTIONAL MATCH (p)-[:KNOWS]->(f)
      RETURN p.name AS p, f.name AS fname, f IS NULL AS missing
      """
    Then the result should be, in any order:
      | p     | fname | missing |
      | 'Ann' | null  | true    |

  Scenario: OPTIONAL MATCH keeps every driving row
    Given an empty graph
    And having executed:
      """
      CREATE (:A {v: 1}), (:A {v: 2}), (:A {v: 3})-[:R]->(:B {w: 9})
      """
    When executing query:
      """
      MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b:B) RETURN a.v AS v, b.w AS w
      """
    Then the result should be, in any order:
      | v | w    |
      | 1 | null |
      | 2 | null |
      | 3 | 9    |
'''
