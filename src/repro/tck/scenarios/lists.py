"""TCK suite: lists, slicing and comprehensions (paper Section 2,
"powerful features such as list slicing and list comprehensions")."""

FEATURE = '''
Feature: Lists

  Scenario: List literals and indexing
    Given an empty graph
    When executing query:
      """
      RETURN [1, 2, 3][0] AS first, [1, 2, 3][-1] AS last, [1, 2, 3][9] AS out
      """
    Then the result should be, in any order:
      | first | last | out  |
      | 1     | 3    | null |

  Scenario: List slicing
    Given an empty graph
    When executing query:
      """
      WITH [0, 1, 2, 3, 4] AS l
      RETURN l[1..3] AS mid, l[..2] AS head, l[3..] AS tail
      """
    Then the result should be, in any order:
      | mid    | head   | tail   |
      | [1, 2] | [0, 1] | [3, 4] |

  Scenario: IN over lists with null semantics
    Given an empty graph
    When executing query:
      """
      RETURN 2 IN [1, 2] AS a, 3 IN [1, 2] AS b,
             3 IN [1, null] AS c, null IN [] AS d, null IN [1] AS e
      """
    Then the result should be, in any order:
      | a    | b     | c    | d     | e    |
      | true | false | null | false | null |

  Scenario: List comprehension with filter and projection
    Given an empty graph
    When executing query:
      """
      RETURN [x IN [1, 2, 3, 4] WHERE x % 2 = 0 | x * 10] AS evens
      """
    Then the result should be, in any order:
      | evens    |
      | [20, 40] |

  Scenario: List comprehension without projection
    Given an empty graph
    When executing query:
      """
      RETURN [x IN [1, 2, 3] WHERE x > 1] AS xs
      """
    Then the result should be, in any order:
      | xs     |
      | [2, 3] |

  Scenario: range() is inclusive
    Given an empty graph
    When executing query:
      """
      RETURN range(1, 4) AS up, range(6, 0, -2) AS down
      """
    Then the result should be, in any order:
      | up           | down         |
      | [1, 2, 3, 4] | [6, 4, 2, 0] |

  Scenario: size, head, last, tail
    Given an empty graph
    When executing query:
      """
      WITH [10, 20, 30] AS l
      RETURN size(l) AS n, head(l) AS h, last(l) AS t, tail(l) AS rest
      """
    Then the result should be, in any order:
      | n | h  | t  | rest     |
      | 3 | 10 | 30 | [20, 30] |

  Scenario: head of empty list is null
    Given an empty graph
    When executing query:
      """
      RETURN head([]) AS h, last([]) AS l, size([]) AS n
      """
    Then the result should be, in any order:
      | h    | l    | n |
      | null | null | 0 |

  Scenario: List concatenation with +
    Given an empty graph
    When executing query:
      """
      RETURN [1, 2] + [3] AS a, [1] + 2 AS b
      """
    Then the result should be, in any order:
      | a         | b      |
      | [1, 2, 3] | [1, 2] |

  Scenario: Lists compare lexicographically
    Given an empty graph
    When executing query:
      """
      RETURN [1, 2] = [1, 2] AS eq, [1, 2] < [1, 3] AS lt, [1] < [1, 0] AS prefix
      """
    Then the result should be, in any order:
      | eq   | lt   | prefix |
      | true | true | true   |

  Scenario: Pattern comprehension collects per match
    Given an empty graph
    And having executed:
      """
      CREATE (a:Person {name: 'Ann'}),
             (a)-[:KNOWS]->(:Person {name: 'Bob', age: 25}),
             (a)-[:KNOWS]->(:Person {name: 'Cid', age: 35})
      """
    When executing query:
      """
      MATCH (p:Person {name: 'Ann'})
      WITH [(p)-[:KNOWS]->(f) WHERE f.age > 30 | f.name] AS names
      RETURN names
      """
    Then the result should be, in any order:
      | names   |
      | ['Cid'] |

  Scenario: UNWIND a literal list
    Given an empty graph
    When executing query:
      """
      UNWIND [1, 2, 3] AS x RETURN x
      """
    Then the result should be, in order:
      | x |
      | 1 |
      | 2 |
      | 3 |

  Scenario: UNWIND an empty list produces no rows
    Given an empty graph
    When executing query:
      """
      UNWIND [] AS x RETURN x
      """
    Then the result should be empty
'''
