"""TCK suite: basic MATCH semantics."""

FEATURE = '''
Feature: MATCH basics

  Scenario: Match all nodes
    Given an empty graph
    And having executed:
      """
      CREATE (:A), (:B), ()
      """
    When executing query:
      """
      MATCH (n) RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 3 |

  Scenario: Match by label
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'}), (:Animal {name: 'Rex'})
      """
    When executing query:
      """
      MATCH (p:Person) RETURN p.name AS name
      """
    Then the result should be, in any order:
      | name  |
      | 'Ann' |
      | 'Bob' |

  Scenario: Match by property map in pattern
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann', age: 30}), (:Person {name: 'Bob', age: 40})
      """
    When executing query:
      """
      MATCH (p:Person {age: 40}) RETURN p.name AS name
      """
    Then the result should be, in any order:
      | name  |
      | 'Bob' |

  Scenario: Directed relationship match
    Given an empty graph
    And having executed:
      """
      CREATE (a:Person {name: 'Ann'})-[:KNOWS]->(b:Person {name: 'Bob'})
      """
    When executing query:
      """
      MATCH (a)-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b
      """
    Then the result should be, in any order:
      | a     | b     |
      | 'Ann' | 'Bob' |

  Scenario: Reversed arrow matches the same relationship
    Given an empty graph
    And having executed:
      """
      CREATE (a:Person {name: 'Ann'})-[:KNOWS]->(b:Person {name: 'Bob'})
      """
    When executing query:
      """
      MATCH (b)<-[:KNOWS]-(a) RETURN a.name AS a, b.name AS b
      """
    Then the result should be, in any order:
      | a     | b     |
      | 'Ann' | 'Bob' |

  Scenario: Undirected match returns both orientations
    Given an empty graph
    And having executed:
      """
      CREATE (a:Person {name: 'Ann'})-[:KNOWS]->(b:Person {name: 'Bob'})
      """
    When executing query:
      """
      MATCH (x)-[:KNOWS]-(y) RETURN x.name AS x, y.name AS y
      """
    Then the result should be, in any order:
      | x     | y     |
      | 'Ann' | 'Bob' |
      | 'Bob' | 'Ann' |

  Scenario: Relationship type alternatives
    Given an empty graph
    And having executed:
      """
      CREATE (a {name: 'a'}), (b {name: 'b'}), (c {name: 'c'}),
             (a)-[:LIKES]->(b), (a)-[:HATES]->(c), (a)-[:IGNORES]->(c)
      """
    When executing query:
      """
      MATCH ({name: 'a'})-[r:LIKES|HATES]->(t) RETURN type(r) AS t
      """
    Then the result should be, in any order:
      | t       |
      | 'LIKES' |
      | 'HATES' |

  Scenario: Edge isomorphism forbids reusing a relationship in one MATCH
    Given an empty graph
    And having executed:
      """
      CREATE (a)-[:R]->(b)
      """
    When executing query:
      """
      MATCH (a)-[r1:R]->(b), (c)-[r2:R]->(d) RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 0 |

  Scenario: Relationships may repeat across separate MATCH clauses
    Given an empty graph
    And having executed:
      """
      CREATE (a)-[:R]->(b)
      """
    When executing query:
      """
      MATCH (a)-[r1:R]->() MATCH (c)-[r2:R]->() RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 1 |

  Scenario: MATCH with WHERE on properties
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann', age: 30}), (:Person {name: 'Bob', age: 40})
      """
    When executing query:
      """
      MATCH (p:Person) WHERE p.age > 35 RETURN p.name AS name
      """
    Then the result should be, in any order:
      | name  |
      | 'Bob' |

  Scenario: WHERE with label predicate expression
    Given an empty graph
    And having executed:
      """
      CREATE (:SSN {v: 1}), (:PhoneNumber {v: 2}), (:Email {v: 3})
      """
    When executing query:
      """
      MATCH (p) WHERE p:SSN OR p:PhoneNumber RETURN p.v AS v
      """
    Then the result should be, in any order:
      | v |
      | 1 |
      | 2 |

  Scenario: Disconnected patterns produce a cartesian product
    Given an empty graph
    And having executed:
      """
      CREATE (:A {v: 1}), (:A {v: 2}), (:B {v: 3})
      """
    When executing query:
      """
      MATCH (a:A), (b:B) RETURN a.v AS a, b.v AS b
      """
    Then the result should be, in any order:
      | a | b |
      | 1 | 3 |
      | 2 | 3 |

  Scenario: Matching a bound node again keeps bindings consistent
    Given an empty graph
    And having executed:
      """
      CREATE (a:A)-[:R]->(b:B), (a)-[:R]->(c:C)
      """
    When executing query:
      """
      MATCH (a:A)-[:R]->(b:B) MATCH (a)-[:R]->(c:C) RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 1 |

  Scenario: Self-loop matches a directed cycle pattern
    Given an empty graph
    And having executed:
      """
      CREATE (a {name: 'loop'}), (a)-[:R]->(a)
      """
    When executing query:
      """
      MATCH (x)-[:R]->(x) RETURN x.name AS name
      """
    Then the result should be, in any order:
      | name   |
      | 'loop' |

  Scenario: Unknown variable in RETURN is an error
    Given an empty graph
    When executing query:
      """
      MATCH (a) RETURN b
      """
    Then a SemanticError should be raised
'''
