"""Index-backed predicate scenarios: the semantics must not move.

Every scenario here declares a property index *before* its setup writes
run, so (a) the incremental maintenance path builds the index entry by
entry — creates, SETs, REMOVEs, label changes, deletes — and (b) the
planner's cost model picks the index access path wherever it wins.  The
TCK runner then executes each scenario on the interpreter (which never
looks at an index), the auto/batch path and the forced row path: any
divergence means the access path changed semantics, which is exactly
what the residual-predicate design forbids.

The nasty corners the paper's three-valued logic creates are all pinned:
``= null`` matches nothing (not even null-valued properties), a missing
property satisfies neither equality nor any range, range predicates
only ever see the bound's own type segment (numbers with numbers,
strings with strings, booleans with booleans — everything else is
``null`` and filtered), and NaN equals nothing including itself.
"""

FEATURE = """
Feature: Index-backed predicates

  Scenario: equality seek finds exactly the matching nodes
    Given an empty graph
    And an index on :Person(age)
    And having executed:
      '''
      UNWIND [23, 42, 42, 77] AS a CREATE (:Person {age: a})
      '''
    When executing query:
      '''
      MATCH (p:Person) WHERE p.age = 42 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 2 |

  Scenario: equality against null matches nothing, null property included
    Given an empty graph
    And an index on :Person(age)
    And having executed:
      '''
      CREATE (:Person {age: 42}), (:Person {name: 'ageless'})
      '''
    When executing query:
      '''
      MATCH (p:Person) WHERE p.age = null RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 0 |

  Scenario: missing property fails equality but not the label scan
    Given an empty graph
    And an index on :Person(age)
    And having executed:
      '''
      CREATE (:Person {age: 1}), (:Person), (:Person {age: 2})
      '''
    When executing query:
      '''
      MATCH (p:Person) WHERE p.age = 1 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 1 |

  Scenario: IS NULL stays a label scan and sees the index-invisible node
    Given an empty graph
    And an index on :Person(age)
    And having executed:
      '''
      CREATE (:Person {age: 1}), (:Person), (:Person {age: 2})
      '''
    When executing query:
      '''
      MATCH (p:Person) WHERE p.age IS NULL RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 1 |

  Scenario: integers and floats share index buckets like they share equality
    Given an empty graph
    And an index on :N(v)
    And having executed:
      '''
      CREATE (:N {v: 1}), (:N {v: 1.0}), (:N {v: 1.5})
      '''
    When executing query:
      '''
      MATCH (n:N) WHERE n.v = 1 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 2 |

  Scenario: range over mixed-type values only sees the bound's segment
    Given an empty graph
    And an index on :V(x)
    And having executed:
      '''
      CREATE (:V {x: 1}), (:V {x: 10}), (:V {x: 'apple'}),
             (:V {x: 'banana'}), (:V {x: true}), (:V {x: false}),
             (:V {x: [5]})
      '''
    When executing query:
      '''
      MATCH (v:V) WHERE v.x > 2 RETURN v.x AS x
      '''
    Then the result should be, in any order:
      | x |
      | 10 |

  Scenario: string range ignores numbers and booleans
    Given an empty graph
    And an index on :V(x)
    And having executed:
      '''
      CREATE (:V {x: 1}), (:V {x: 'apple'}), (:V {x: 'banana'}),
             (:V {x: 'cherry'}), (:V {x: true})
      '''
    When executing query:
      '''
      MATCH (v:V) WHERE v.x >= 'b' RETURN v.x AS x ORDER BY x
      '''
    Then the result should be, in order:
      | x |
      | 'banana' |
      | 'cherry' |

  Scenario: boolean range orders false before true
    Given an empty graph
    And an index on :V(x)
    And having executed:
      '''
      CREATE (:V {x: true}), (:V {x: false}), (:V {x: 1}), (:V {x: 'a'})
      '''
    When executing query:
      '''
      MATCH (v:V) WHERE v.x > false RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 1 |

  Scenario: closed range keeps both bounds and both exclusivities
    Given an empty graph
    And an index on :N(v)
    And having executed:
      '''
      UNWIND range(1, 10) AS i CREATE (:N {v: i})
      '''
    When executing query:
      '''
      MATCH (n:N) WHERE n.v >= 3 AND n.v < 7 RETURN n.v AS v ORDER BY v
      '''
    Then the result should be, in order:
      | v |
      | 3 |
      | 4 |
      | 5 |
      | 6 |

  Scenario: IN probes each element once, duplicates and nulls included
    Given an empty graph
    And an index on :N(v)
    And having executed:
      '''
      UNWIND [1, 2, 3, 4] AS i CREATE (:N {v: i})
      '''
    When executing query:
      '''
      MATCH (n:N) WHERE n.v IN [2, 2, null, 9, 3] RETURN n.v AS v ORDER BY v
      '''
    Then the result should be, in order:
      | v |
      | 2 |
      | 3 |

  Scenario: STARTS WITH only ever matches strings
    Given an empty graph
    And an index on :P(name)
    And having executed:
      '''
      CREATE (:P {name: 'ada'}), (:P {name: 'adele'}), (:P {name: 'bob'}),
             (:P {name: 7})
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.name STARTS WITH 'ad' RETURN p.name AS n ORDER BY n
      '''
    Then the result should be, in order:
      | n |
      | 'ada' |
      | 'adele' |

  Scenario: the index tracks SET, REMOVE and DELETE in the same statement run
    Given an empty graph
    And an index on :K(k)
    And having executed:
      '''
      UNWIND range(1, 5) AS i CREATE (:K {k: i})
      '''
    And having executed:
      '''
      MATCH (n:K) WHERE n.k = 2 SET n.k = 20
      '''
    And having executed:
      '''
      MATCH (n:K) WHERE n.k = 3 REMOVE n.k
      '''
    And having executed:
      '''
      MATCH (n:K) WHERE n.k = 4 DELETE n
      '''
    When executing query:
      '''
      MATCH (n:K) WHERE n.k >= 2 RETURN n.k AS k ORDER BY k
      '''
    Then the result should be, in order:
      | k |
      | 5 |
      | 20 |

  Scenario: label changes move nodes in and out of the index
    Given an empty graph
    And an index on :Hot(v)
    And having executed:
      '''
      CREATE (:Hot {v: 1}), (:Cold {v: 1}), (:Hot {v: 2})
      '''
    And having executed:
      '''
      MATCH (n:Cold) SET n:Hot
      '''
    And having executed:
      '''
      MATCH (n:Hot) WHERE n.v = 2 REMOVE n:Hot
      '''
    When executing query:
      '''
      MATCH (n:Hot) WHERE n.v = 1 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 2 |

  Scenario: MERGE upserts observe index-maintained state mid-statement
    Given an empty graph
    And an index on :K(k)
    And having executed:
      '''
      UNWIND [1, 2] AS i CREATE (:K {k: i})
      '''
    When executing query:
      '''
      UNWIND [1, 2, 3, 3] AS i MERGE (n:K {k: i}) RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 4 |

  Scenario: probe over an outer binding is an index nested-loop join
    Given an empty graph
    And an index on :B(v)
    And having executed:
      '''
      UNWIND range(1, 3) AS i CREATE (:A {v: i}), (:B {v: i}), (:B {v: i})
      '''
    When executing query:
      '''
      MATCH (a:A) MATCH (b:B) WHERE b.v = a.v RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 6 |

  Scenario: NaN equals nothing, not even itself
    Given an empty graph
    And an index on :N(v)
    And having executed:
      '''
      CREATE (:N {v: 0.0}), (:N {v: 1.0})
      '''
    And having executed:
      '''
      MATCH (n:N) WHERE n.v = 0.0 SET n.v = 0.0 / 0.0
      '''
    When executing query:
      '''
      MATCH (n:N) WHERE n.v = 0.0 / 0.0 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 0 |

  Scenario: composite equality seek matches the full key tuple
    Given an empty graph
    And an index on :P(a, b)
    And having executed:
      '''
      UNWIND [[1, 1], [1, 2], [2, 1], [1, 2]] AS row
      CREATE (:P {a: row[0], b: row[1]})
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.a = 1 AND p.b = 2 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 2 |

  Scenario: a node missing one composite column has no index entry but keeps its label
    Given an empty graph
    And an index on :P(a, b)
    And having executed:
      '''
      CREATE (:P {a: 1, b: 1}), (:P {a: 1}), (:P {b: 1}), (:P)
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.a = 1 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 2 |

  Scenario: the missing-column node fails full-tuple equality
    Given an empty graph
    And an index on :P(a, b)
    And having executed:
      '''
      CREATE (:P {a: 1, b: 1}), (:P {a: 1}), (:P {b: 1})
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.a = 1 AND p.b = 1 RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 1 |

  Scenario: IS NULL on the second column sees exactly the index-invisible node
    Given an empty graph
    And an index on :P(a, b)
    And having executed:
      '''
      CREATE (:P {a: 1, b: 1}), (:P {a: 1}), (:P {b: 1})
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.a = 1 AND p.b IS NULL RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 1 |

  Scenario: composite equality against null matches nothing
    Given an empty graph
    And an index on :P(a, b)
    And having executed:
      '''
      CREATE (:P {a: 1, b: 1}), (:P {a: 1})
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.a = 1 AND p.b = null RETURN count(*) AS c
      '''
    Then the result should be, in any order:
      | c |
      | 0 |

  Scenario: prefix equality plus a range on the next column
    Given an empty graph
    And an index on :N(g, v)
    And having executed:
      '''
      UNWIND [1, 2] AS g UNWIND range(1, 5) AS v CREATE (:N {g: g, v: v})
      '''
    When executing query:
      '''
      MATCH (n:N) WHERE n.g = 1 AND n.v >= 2 AND n.v < 5
      RETURN n.v AS v ORDER BY v
      '''
    Then the result should be, in order:
      | v |
      | 2 |
      | 3 |
      | 4 |

  Scenario: prefix equality plus STARTS WITH only ever matches strings
    Given an empty graph
    And an index on :P(g, name)
    And having executed:
      '''
      CREATE (:P {g: 1, name: 'ada'}), (:P {g: 1, name: 'adele'}),
             (:P {g: 1, name: 'bob'}), (:P {g: 2, name: 'ada'}),
             (:P {g: 1, name: 7})
      '''
    When executing query:
      '''
      MATCH (p:P) WHERE p.g = 1 AND p.name STARTS WITH 'ad'
      RETURN p.name AS n ORDER BY n
      '''
    Then the result should be, in order:
      | n |
      | 'ada' |
      | 'adele' |

  Scenario: index-provided order is exact across ties and mixed-type segments
    Given an empty graph
    And an index on :M(g, v)
    And having executed:
      '''
      CREATE (:M {g: 1, v: 'b'}), (:M {g: 1, v: 1}), (:M {g: 1, v: true}),
             (:M {g: 1, v: 'a'}), (:M {g: 1, v: 2}), (:M {g: 1, v: 1}),
             (:M {g: 2, v: 0})
      '''
    When executing query:
      '''
      MATCH (m:M) WHERE m.g = 1 AND m.v IS NOT NULL
      RETURN m.v AS v ORDER BY v
      '''
    Then the result should be, in order:
      | v |
      | 'a' |
      | 'b' |
      | true |
      | 1 |
      | 1 |
      | 2 |

  Scenario: index-provided order descends too
    Given an empty graph
    And an index on :M(g, v)
    And having executed:
      '''
      CREATE (:M {g: 1, v: 'b'}), (:M {g: 1, v: 1}), (:M {g: 1, v: true}),
             (:M {g: 1, v: 'a'}), (:M {g: 1, v: 2}), (:M {g: 1, v: 1}),
             (:M {g: 2, v: 0})
      '''
    When executing query:
      '''
      MATCH (m:M) WHERE m.g = 1 AND m.v IS NOT NULL
      RETURN m.v AS v ORDER BY v DESC
      '''
    Then the result should be, in order:
      | v |
      | 2 |
      | 1 |
      | 1 |
      | true |
      | 'b' |
      | 'a' |

  Scenario: index-provided order honours LIMIT
    Given an empty graph
    And an index on :M(g, v)
    And having executed:
      '''
      UNWIND range(1, 9) AS i CREATE (:M {g: i % 2, v: i})
      '''
    When executing query:
      '''
      MATCH (m:M) WHERE m.g = 1 AND m.v IS NOT NULL
      RETURN m.v AS v ORDER BY v LIMIT 2
      '''
    Then the result should be, in order:
      | v |
      | 1 |
      | 3 |

  Scenario: the composite index tracks SET and REMOVE on either column
    Given an empty graph
    And an index on :K(a, b)
    And having executed:
      '''
      UNWIND range(1, 4) AS i CREATE (:K {a: 1, b: i})
      '''
    And having executed:
      '''
      MATCH (n:K) WHERE n.a = 1 AND n.b = 2 SET n.b = 20
      '''
    And having executed:
      '''
      MATCH (n:K) WHERE n.a = 1 AND n.b = 3 REMOVE n.a
      '''
    When executing query:
      '''
      MATCH (n:K) WHERE n.a = 1 AND n.b >= 2 RETURN n.b AS b ORDER BY b
      '''
    Then the result should be, in order:
      | b |
      | 4 |
      | 20 |
"""
