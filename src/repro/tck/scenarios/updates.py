"""TCK suite: update clauses (CREATE / DELETE / SET / REMOVE / MERGE)."""

FEATURE = '''
Feature: Updates

  Scenario: CREATE then MATCH round-trips
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'})-[:KNOWS {since: 1999}]->(:Person {name: 'Bob'})
      """
    When executing query:
      """
      MATCH (a)-[r:KNOWS]->(b) RETURN a.name AS a, r.since AS since, b.name AS b
      """
    Then the result should be, in any order:
      | a     | since | b     |
      | 'Ann' | 1999  | 'Bob' |

  Scenario: CREATE once per driving row
    Given an empty graph
    And having executed:
      """
      UNWIND [1, 2, 3] AS i CREATE ({v: i})
      """
    When executing query:
      """
      MATCH (n) RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 3 |

  Scenario: CREATE reuses bound endpoints
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'})
      """
    And having executed:
      """
      MATCH (a:Person {name: 'Ann'}), (b:Person {name: 'Bob'})
      CREATE (a)-[:KNOWS]->(b)
      """
    When executing query:
      """
      MATCH (:Person)-[r:KNOWS]->(:Person) RETURN count(r) AS n
      """
    Then the result should be, in any order:
      | n |
      | 1 |

  Scenario: SET a property and read it back
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'})
      """
    And having executed:
      """
      MATCH (p:Person) SET p.age = 30
      """
    When executing query:
      """
      MATCH (p:Person) RETURN p.age AS age
      """
    Then the result should be, in any order:
      | age |
      | 30  |

  Scenario: SET to null removes the property
    Given an empty graph
    And having executed:
      """
      CREATE ({v: 1})
      """
    And having executed:
      """
      MATCH (n) SET n.v = null
      """
    When executing query:
      """
      MATCH (n) RETURN exists(n.v) AS has
      """
    Then the result should be, in any order:
      | has   |
      | false |

  Scenario: SET += merges property maps
    Given an empty graph
    And having executed:
      """
      CREATE ({a: 1, b: 2})
      """
    And having executed:
      """
      MATCH (n) SET n += {b: 20, c: 30}
      """
    When executing query:
      """
      MATCH (n) RETURN n.a AS a, n.b AS b, n.c AS c
      """
    Then the result should be, in any order:
      | a | b  | c  |
      | 1 | 20 | 30 |

  Scenario: SET = replaces the whole property map
    Given an empty graph
    And having executed:
      """
      CREATE ({a: 1, b: 2})
      """
    And having executed:
      """
      MATCH (n) SET n = {c: 3}
      """
    When executing query:
      """
      MATCH (n) RETURN n.a AS a, n.c AS c
      """
    Then the result should be, in any order:
      | a    | c |
      | null | 3 |

  Scenario: SET adds labels
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'})
      """
    And having executed:
      """
      MATCH (p:Person) SET p:Employee:Manager
      """
    When executing query:
      """
      MATCH (p:Manager) RETURN p.name AS name
      """
    Then the result should be, in any order:
      | name  |
      | 'Ann' |

  Scenario: REMOVE drops properties and labels
    Given an empty graph
    And having executed:
      """
      CREATE (:Person:Temp {name: 'Ann', scratch: 1})
      """
    And having executed:
      """
      MATCH (p:Person) REMOVE p.scratch, p:Temp
      """
    When executing query:
      """
      MATCH (p:Person) RETURN exists(p.scratch) AS has, labels(p) AS labels
      """
    Then the result should be, in any order:
      | has   | labels     |
      | false | ['Person'] |

  Scenario: DELETE a node with relationships is an error
    Given an empty graph
    And having executed:
      """
      CREATE (a)-[:R]->(b)
      """
    When executing query:
      """
      MATCH (n) DELETE n
      """
    Then a RuntimeError should be raised

  Scenario: DETACH DELETE removes the node and its relationships
    Given an empty graph
    And having executed:
      """
      CREATE (a {keep: false})-[:R]->(b {keep: true})
      """
    And having executed:
      """
      MATCH (n {keep: false}) DETACH DELETE n
      """
    When executing query:
      """
      MATCH (n) RETURN count(*) AS nodes
      """
    Then the result should be, in any order:
      | nodes |
      | 1     |

  Scenario: MERGE creates when no match exists
    Given an empty graph
    And having executed:
      """
      MERGE (p:Person {name: 'Ann'})
      """
    When executing query:
      """
      MATCH (p:Person) RETURN p.name AS name
      """
    Then the result should be, in any order:
      | name  |
      | 'Ann' |

  Scenario: MERGE matches instead of duplicating
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'})
      """
    And having executed:
      """
      MERGE (p:Person {name: 'Ann'})
      """
    When executing query:
      """
      MATCH (p:Person) RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 1 |

  Scenario: MERGE ON CREATE and ON MATCH set different properties
    Given an empty graph
    And having executed:
      """
      MERGE (p:Person {name: 'Ann'}) ON CREATE SET p.created = true ON MATCH SET p.matched = true
      """
    And having executed:
      """
      MERGE (p:Person {name: 'Ann'}) ON CREATE SET p.created2 = true ON MATCH SET p.matched = true
      """
    When executing query:
      """
      MATCH (p:Person)
      RETURN p.created AS created, p.matched AS matched, exists(p.created2) AS second_create
      """
    Then the result should be, in any order:
      | created | matched | second_create |
      | true    | true    | false         |

  Scenario: MERGE a relationship between bound nodes
    Given an empty graph
    And having executed:
      """
      CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'})
      """
    And having executed:
      """
      MATCH (a:Person {name: 'Ann'}), (b:Person {name: 'Bob'}) MERGE (a)-[:KNOWS]->(b)
      """
    And having executed:
      """
      MATCH (a:Person {name: 'Ann'}), (b:Person {name: 'Bob'}) MERGE (a)-[:KNOWS]->(b)
      """
    When executing query:
      """
      MATCH (:Person)-[r:KNOWS]->(:Person) RETURN count(r) AS n
      """
    Then the result should be, in any order:
      | n |
      | 1 |

  Scenario: CREATE with variable-length pattern is an error
    Given an empty graph
    When executing query:
      """
      CREATE (a)-[:R*2]->(b)
      """
    Then a SemanticError should be raised

  Scenario: CREATE with undirected relationship is an error
    Given an empty graph
    When executing query:
      """
      CREATE (a)-[:R]-(b)
      """
    Then a SemanticError should be raised

  Scenario: CREATE does not observe its own clause's writes
    Given an empty graph
    And having executed:
      """
      CREATE (:Seed), (:Seed), (:Seed)
      """
    And having executed:
      """
      MATCH (s:Seed) CREATE (:Copy)
      """
    When executing query:
      """
      MATCH (c:Copy) RETURN count(*) AS copies
      """
    Then the result should be, in any order:
      | copies |
      | 3      |

  Scenario: CREATE between all matched pairs snapshots the match
    Given an empty graph
    And having executed:
      """
      CREATE (:P {i: 1}), (:P {i: 2})
      """
    And having executed:
      """
      MATCH (a:P), (b:P) CREATE (a)-[:L]->(b)
      """
    When executing query:
      """
      MATCH ()-[r:L]->() RETURN count(r) AS n
      """
    Then the result should be, in any order:
      | n |
      | 4 |

  Scenario: DELETE is visible to a later MATCH in the same query
    Given an empty graph
    And having executed:
      """
      CREATE (:Gone), (:Gone), (:Kept)
      """
    When executing query:
      """
      MATCH (g:Gone) DETACH DELETE g WITH count(*) AS dropped MATCH (n) RETURN dropped, count(n) AS left
      """
    Then the result should be, in any order:
      | dropped | left |
      | 2       | 1    |

  Scenario: MERGE observes rows created by earlier driving rows
    Given an empty graph
    When executing query:
      """
      UNWIND [1, 1, 2, 2, 3] AS v MERGE (n:Key {v: v}) RETURN count(*) AS rows
      """
    Then the result should be, in any order:
      | rows |
      | 5    |

  Scenario: MERGE created nodes are countable afterwards
    Given an empty graph
    And having executed:
      """
      UNWIND [1, 1, 2, 2, 3] AS v MERGE (:Key {v: v})
      """
    When executing query:
      """
      MATCH (n:Key) RETURN count(*) AS n
      """
    Then the result should be, in any order:
      | n |
      | 3 |
'''
