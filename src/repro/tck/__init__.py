"""A mini-Gherkin scenario framework (the openCypher TCK, in miniature).

The openCypher project publishes a Technology Compatibility Kit "designed
using a language neutral framework (Cucumber)" (paper Section 5).  This
package implements the same Given / When / Then scenario shape over this
engine, with expected results written as pipe-tables, and ships scenario
suites covering the language core.  Every scenario is executed on *both*
execution paths (reference interpreter and planner) where possible.
"""

from repro.tck.runner import Feature, Scenario, TckRunner, parse_feature

__all__ = ["TckRunner", "parse_feature", "Feature", "Scenario"]
