"""repro — a faithful Python reproduction of
"Cypher: An Evolving Query Language for Property Graphs" (SIGMOD 2018).

Quickstart::

    from repro import CypherEngine, GraphBuilder

    graph, ids = (GraphBuilder()
                  .node("ann", "Person", name="Ann")
                  .node("bob", "Person", name="Bob")
                  .rel("ann", "KNOWS", "bob", since=2011)
                  .build())
    engine = CypherEngine(graph)
    result = engine.run("MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name")
    print(result.records)

The package layout mirrors the paper: :mod:`repro.graph` is the property
graph data model (Section 4.1), :mod:`repro.semantics` the formal
semantics (Sections 4.2–4.3), :mod:`repro.planner`/:mod:`repro.runtime`
the Volcano-style implementation sketched in Section 2, and
:mod:`repro.multigraph`/:mod:`repro.temporal` the Cypher 10 developments
of Section 6.
"""

from repro.exceptions import (
    ConstraintViolation,
    CypherError,
    CypherRuntimeError,
    CypherSemanticError,
    CypherSyntaxError,
    CypherTypeError,
)
from repro.graph import (
    GraphBuilder,
    GraphCatalog,
    GraphStatistics,
    MemoryGraph,
    PropertyGraph,
)
from repro.parser import parse_expression, parse_pattern, parse_query
from repro.runtime import CypherEngine, QueryResult
from repro.semantics import (
    EDGE_ISOMORPHISM,
    HOMOMORPHISM,
    NODE_ISOMORPHISM,
    Morphism,
    Table,
)
from repro.schema import (
    ExistenceConstraint,
    Schema,
    TypeConstraint,
    UniquenessConstraint,
)
from repro.values import NodeId, Path, RelId

__version__ = "0.9.0"

__all__ = [
    "CypherEngine",
    "QueryResult",
    "MemoryGraph",
    "PropertyGraph",
    "GraphBuilder",
    "GraphCatalog",
    "GraphStatistics",
    "Table",
    "NodeId",
    "RelId",
    "Path",
    "Morphism",
    "EDGE_ISOMORPHISM",
    "NODE_ISOMORPHISM",
    "HOMOMORPHISM",
    "parse_query",
    "parse_expression",
    "parse_pattern",
    "Schema",
    "ExistenceConstraint",
    "UniquenessConstraint",
    "TypeConstraint",
    "CypherError",
    "CypherSyntaxError",
    "CypherSemanticError",
    "CypherTypeError",
    "CypherRuntimeError",
    "ConstraintViolation",
    "__version__",
]
