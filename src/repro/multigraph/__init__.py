"""Cypher 10 multiple graphs and query composition (paper Section 6).

Cypher 10 adds *named graph references* and composition over
"table-graphs": "a single table and multiple named graphs as query
arguments ... Similarly a query result is a table-graphs.  This enables
Cypher queries to be composed as a chain of elementary queries."

* ``FROM GRAPH name AT "uri"`` re-points the reading side at a catalog
  graph (:class:`repro.graph.catalog.GraphCatalog`);
* ``RETURN GRAPH name OF pattern`` projects a *new* graph from the
  driving table (Example 6.1's SHARE_FRIEND projection);
* :class:`TableGraphs` is the composition value passed between queries.
"""

from repro.multigraph.engine import TableGraphs, apply_return_graph

__all__ = ["TableGraphs", "apply_return_graph"]
