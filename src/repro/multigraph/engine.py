"""RETURN GRAPH execution and the table-graphs composition value."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ast import patterns as pt
from repro.exceptions import CypherSemanticError, CypherTypeError
from repro.graph.store import MemoryGraph
from repro.semantics.table import Table
from repro.values.base import NodeId


@dataclass
class TableGraphs:
    """The Cypher 10 composition construct: one table, many named graphs.

    ``source`` names the graph used for reading and ``target`` the graph
    used for updating, matching the paper's description.
    """

    table: Table
    graphs: Dict[str, object] = field(default_factory=dict)
    source: Optional[str] = None
    target: Optional[str] = None

    def graph(self, name=None):
        if name is None:
            name = self.source
        if name is None and len(self.graphs) == 1:
            name = next(iter(self.graphs))
        if name not in self.graphs:
            raise CypherSemanticError("no graph %r in table-graphs" % (name,))
        return self.graphs[name]


def apply_return_graph(clause, table, state):
    """Project a new named graph from the driving table.

    For every driving row, the clause's pattern is instantiated into the
    new graph: node variables bound to nodes of the current source graph
    are copied across once (labels and properties preserved), and the
    pattern's relationships are created between the copies.  The new
    graph is registered in the catalog under the clause's name, so a
    follow-up query can ``FROM GRAPH name`` over it (Example 6.1).
    """
    new_graph = MemoryGraph()
    copies = {}  # source NodeId -> NodeId in the new graph

    def copy_node(source_node):
        # Node identity is preserved across graphs (same NodeId), so a
        # composed query can re-match the node in a different graph —
        # the behaviour Example 6.1's FROM GRAPH register join relies on.
        if source_node not in copies:
            copies[source_node] = new_graph.adopt_node(
                source_node,
                state.graph.labels(source_node),
                state.graph.properties(source_node),
            )
        return copies[source_node]

    if clause.pattern is not None:
        _validate_projection_pattern(clause.pattern)
        evaluator = state.evaluator()
        seen_rel_keys = set()
        for record in table.rows:
            _instantiate(
                clause.pattern, record, state, evaluator, copy_node,
                new_graph, seen_rel_keys,
            )
    state.catalog.register(clause.graph_name, new_graph)
    state.result_graphs[clause.graph_name] = new_graph
    return table


def _validate_projection_pattern(pattern):
    for rho in pattern.relationship_patterns:
        if rho.length is not None:
            raise CypherSemanticError(
                "RETURN GRAPH patterns must be rigid"
            )
        if len(rho.types) != 1:
            raise CypherSemanticError(
                "RETURN GRAPH relationships need exactly one type"
            )
        if rho.direction == pt.UNDIRECTED:
            raise CypherSemanticError(
                "RETURN GRAPH relationships must be directed"
            )


def _instantiate(
    pattern, record, state, evaluator, copy_node, new_graph, seen_rel_keys
):
    elements = pattern.elements
    current = _resolve_node(elements[0], record, evaluator, copy_node, new_graph)
    for index in range(1, len(elements), 2):
        rho = elements[index]
        chi = elements[index + 1]
        next_node = _resolve_node(chi, record, evaluator, copy_node, new_graph)
        properties = {
            key: evaluator.evaluate(value, record)
            for key, value in rho.properties
        }
        if rho.direction == pt.RIGHT_TO_LEFT:
            endpoints = (next_node, current)
        else:
            endpoints = (current, next_node)
        # The projection is set-like: the same edge is not duplicated when
        # several driving rows name the same endpoints (WITH DISTINCT in
        # Example 6.1 relies on this composing sensibly).
        key = (endpoints, rho.types[0], tuple(sorted(properties.items(), key=lambda kv: kv[0])))
        if key not in seen_rel_keys:
            seen_rel_keys.add(key)
            new_graph.create_relationship(
                endpoints[0], endpoints[1], rho.types[0], properties
            )
        current = next_node


def _resolve_node(chi, record, evaluator, copy_node, new_graph):
    if chi.name is not None and chi.name in record:
        value = record[chi.name]
        if not isinstance(value, NodeId):
            raise CypherTypeError(
                "RETURN GRAPH variable %r is not a node" % chi.name
            )
        return copy_node(value)
    properties = {
        key: evaluator.evaluate(value, record) for key, value in chi.properties
    }
    return new_graph.create_node(chi.labels, properties)
