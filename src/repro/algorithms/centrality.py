"""PageRank and degree centrality over property graphs."""

from __future__ import annotations


def pagerank(
    graph,
    damping=0.85,
    max_iterations=100,
    tolerance=1e-8,
    rel_types=None,
):
    """Power-iteration PageRank; returns {NodeId: score}, scores sum to 1.

    ``rel_types`` optionally restricts which relationship types count as
    links.  Dangling nodes redistribute their mass uniformly, the
    standard correction.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    count = len(nodes)
    types = set(rel_types) if rel_types is not None else None
    out_degree = {
        node: sum(1 for _ in graph.outgoing(node, types)) for node in nodes
    }
    rank = {node: 1.0 / count for node in nodes}
    base = (1.0 - damping) / count
    for _iteration in range(max_iterations):
        dangling_mass = sum(
            rank[node] for node in nodes if out_degree[node] == 0
        )
        next_rank = {
            node: base + damping * dangling_mass / count for node in nodes
        }
        for node in nodes:
            degree = out_degree[node]
            if degree == 0:
                continue
            share = damping * rank[node] / degree
            for rel in graph.outgoing(node, types):
                next_rank[graph.tgt(rel)] += share
        delta = sum(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if delta < tolerance:
            break
    return rank


def degree_centrality(graph, direction="both", rel_types=None):
    """Degree per node, normalized by (n - 1); {NodeId: float}."""
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    types = set(rel_types) if rel_types is not None else None
    denominator = max(len(nodes) - 1, 1)
    result = {}
    for node in nodes:
        if direction == "out":
            degree = sum(1 for _ in graph.outgoing(node, types))
        elif direction == "in":
            degree = sum(1 for _ in graph.incoming(node, types))
        else:
            degree = sum(1 for _ in graph.outgoing(node, types)) + sum(
                1 for _ in graph.incoming(node, types)
            )
        result[node] = degree / denominator
    return result
