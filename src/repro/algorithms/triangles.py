"""Triangle counting (undirected, ignoring parallel edges)."""

from __future__ import annotations


def triangle_count(graph, rel_types=None):
    """Number of undirected triangles in the graph.

    Parallel relationships and self-loops are ignored: the count is over
    the *simple* undirected graph induced by the relationships.
    """
    types = set(rel_types) if rel_types is not None else None
    neighbours = {}
    for node in graph.nodes():
        adjacent = set()
        for rel in graph.touching(node, types):
            other = graph.other_end(rel, node)
            if other != node:
                adjacent.add(other)
        neighbours[node] = adjacent
    total = 0
    for node, adjacent in neighbours.items():
        for first in adjacent:
            if first.value <= node.value:
                continue
            for second in adjacent:
                if second.value <= first.value:
                    continue
                if second in neighbours[first]:
                    total += 1
    return total
