"""Shortest paths returning Path values.

BFS for unweighted distance; Dijkstra when a relationship property is
named as the cost (the Section 8 "path cost declarations" direction).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.exceptions import CypherTypeError
from repro.values.coercion import is_number
from repro.values.path import Path


def _steps(graph, node, rel_types, directed):
    types = set(rel_types) if rel_types is not None else None
    for rel in graph.outgoing(node, types):
        yield rel, graph.tgt(rel)
    if not directed:
        for rel in graph.incoming(node, types):
            yield rel, graph.src(rel)


def shortest_path(
    graph, source, target, rel_types=None, directed=True, cost_property=None,
    max_length=None,
):
    """The cheapest path from source to target, or None if unreachable.

    Without ``cost_property`` this is hop-count BFS; with it, Dijkstra
    over the (non-negative, numeric) relationship property.

    ``max_length`` caps the answer at that many relationships: a path
    longer than the cap counts as not found (the bounded
    ``shortestPath`` contract).  Hop caps only compose with hop-count
    search — a cost-optimal path may use arbitrarily many hops — so
    combining ``max_length`` with ``cost_property`` raises.
    """
    if cost_property is not None and max_length is not None:
        raise ValueError(
            "max_length caps hops; it does not apply to cost-weighted "
            "shortest paths"
        )
    if max_length is not None and max_length < 0:
        return None
    if source == target:
        return Path.single(source)
    if cost_property is None:
        return _bfs(graph, source, target, rel_types, directed, max_length)
    return _dijkstra(graph, source, target, rel_types, directed, cost_property)


def shortest_path_length(
    graph, source, target, rel_types=None, directed=True, cost_property=None,
    max_length=None,
):
    """Length (hops) or total cost of the shortest path; None if none."""
    path = shortest_path(
        graph, source, target, rel_types, directed, cost_property,
        max_length=max_length,
    )
    if path is None:
        return None
    if cost_property is None:
        return len(path)
    return sum(
        graph.property_value(rel, cost_property) or 0
        for rel in path.relationships
    )


def _reachability_prune(graph, target, rel_types, directed, max_length=None):
    """``node -> can still reach target`` via a covering index, or None.

    Directed searches with a declared reachability index get an O(1)
    certain-NO oracle: any frontier node the index says cannot reach the
    target would only grow dead subtrees, and a negative answer for the
    source settles the query without expanding anything.  Undirected
    searches stay unpruned — the condensation is direction-aware.

    A hop cap changes the cost call the same way it does for bounded
    var-length probes (``planner.access.reachability_candidate``): at or
    below the index's condensation diameter the cap itself is the
    effective pruner — depth kills most certain-NO subtrees before the
    oracle would have — so the probe declines and the capped BFS runs
    bare.  Above the diameter the cap barely constrains the search and
    the oracle earns its keep.  Declining is always sound: the oracle
    only removes nodes that cannot contribute, never admits extra ones.
    """
    if not directed:
        return None
    getter = getattr(graph, "reachability_index_for", None)
    if getter is None:
        return None
    types = frozenset(rel_types) if rel_types else None
    index = getter(types)
    if index is None:
        return None
    if max_length is not None:
        diameter = index.condensation_diameter()
        if diameter is None or max_length <= diameter:
            return None
    reachable = index.reachable
    return lambda node: reachable(node, target)


def _bfs(graph, source, target, rel_types, directed, max_length=None):
    can_reach = _reachability_prune(
        graph, target, rel_types, directed, max_length
    )
    if can_reach is not None and not can_reach(source):
        return None
    parents = {source: None}  # node -> (previous node, relationship)
    queue = deque([(source, 0)])
    while queue:
        node, depth = queue.popleft()
        if max_length is not None and depth >= max_length:
            continue  # one more step would exceed the cap
        for rel, neighbour in _steps(graph, node, rel_types, directed):
            if neighbour in parents:
                continue
            if can_reach is not None and not can_reach(neighbour):
                continue
            parents[neighbour] = (node, rel)
            if neighbour == target:
                return _assemble(parents, target)
            queue.append((neighbour, depth + 1))
    return None


def _dijkstra(graph, source, target, rel_types, directed, cost_property):
    distances = {source: 0}
    parents = {source: None}
    done = set()
    counter = 0  # tie-breaker so heap entries never compare NodeIds
    frontier = [(0, counter, source)]
    while frontier:
        distance, _tie, node = heapq.heappop(frontier)
        if node in done:
            continue
        if node == target:
            return _assemble(parents, target)
        done.add(node)
        for rel, neighbour in _steps(graph, node, rel_types, directed):
            weight = graph.property_value(rel, cost_property)
            if weight is None:
                weight = 1
            if not is_number(weight) or weight < 0:
                raise CypherTypeError(
                    "cost property %r must be a non-negative number, got %r"
                    % (cost_property, weight)
                )
            candidate = distance + weight
            if neighbour not in distances or candidate < distances[neighbour]:
                distances[neighbour] = candidate
                parents[neighbour] = (node, rel)
                counter += 1
                heapq.heappush(frontier, (candidate, counter, neighbour))
    return None


def _assemble(parents, target):
    nodes = [target]
    rels = []
    cursor = target
    while parents[cursor] is not None:
        previous, rel = parents[cursor]
        nodes.append(previous)
        rels.append(rel)
        cursor = previous
    nodes.reverse()
    rels.reverse()
    return Path(tuple(nodes), tuple(rels))
