"""Connected components (relationships treated as undirected)."""

from __future__ import annotations

from collections import deque


def connected_components(graph, rel_types=None):
    """Weakly connected components as a list of frozensets of node ids.

    Components are returned largest first (ties broken by smallest
    member id) so results are deterministic.
    """
    types = set(rel_types) if rel_types is not None else None
    unvisited = set(graph.nodes())
    components = []
    while unvisited:
        seed = next(iter(unvisited))
        component = {seed}
        queue = deque([seed])
        unvisited.discard(seed)
        while queue:
            node = queue.popleft()
            for rel in graph.touching(node, types):
                neighbour = graph.other_end(rel, node)
                if neighbour in unvisited:
                    unvisited.discard(neighbour)
                    component.add(neighbour)
                    queue.append(neighbour)
        components.append(frozenset(component))
    components.sort(
        key=lambda members: (-len(members), min(node.value for node in members))
    )
    return components
