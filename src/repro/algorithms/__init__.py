"""Built-in graph algorithms (paper Section 1).

The paper lists "built-in support for graph algorithms (e.g., Page Rank,
subgraph matching and so on)" among the benefits property-graph databases
provide; this package supplies the library-level counterparts over any
:class:`~repro.graph.model.PropertyGraph`:

* :func:`pagerank` — the power-iteration PageRank;
* :func:`shortest_path` / :func:`shortest_path_length` — BFS and
  Dijkstra (with a relationship-property cost, the Section 8 "path cost"
  direction) returning proper :class:`~repro.values.path.Path` values;
* :func:`connected_components` / :func:`weakly_connected_components`;
* :func:`degree_centrality`;
* :func:`triangle_count`.

Subgraph matching itself is the engine's MATCH.
"""

from repro.algorithms.centrality import degree_centrality, pagerank
from repro.algorithms.components import connected_components
from repro.algorithms.paths import shortest_path, shortest_path_length
from repro.algorithms.triangles import triangle_count

__all__ = [
    "pagerank",
    "degree_centrality",
    "connected_components",
    "shortest_path",
    "shortest_path_length",
    "triangle_count",
]
