"""Expression semantics ``[[expr]]_{G,u}`` (paper Section 4.3).

The semantics of an expression is a value in V, determined by a property
graph G and an assignment u (here: the current record).  Null handling
follows the SQL-style three-valued logic the paper specifies; arithmetic
and string/list operations follow openCypher where the paper defers to
"established semantics for many functions".

Aggregate function calls are *not* evaluated here — the projection
machinery in :mod:`repro.semantics.clauses` pre-computes them per group
and injects the results through ``aggregate_values`` (keyed by node
identity), because an aggregate's value depends on a whole group of
records, not a single assignment.
"""

from __future__ import annotations

import math
import re

from repro.ast import expressions as ex
from repro.exceptions import (
    CypherRuntimeError,
    CypherSemanticError,
    CypherTypeError,
    ParameterNotBound,
)
from repro.functions import default_registry
from repro.functions.registry import FunctionContext
from repro.values.base import NodeId, RelId
from repro.values.coercion import is_number
from repro.values.comparison import (
    and3,
    compare,
    equals,
    is_true,
    not3,
    not_equals,
    or3,
    xor3,
)
from repro.values.path import Path


class Evaluator:
    """Evaluates expressions against one graph, parameters and functions."""

    def __init__(self, graph, parameters=None, functions=None, morphism=None):
        from repro.semantics.morphism import EDGE_ISOMORPHISM

        self.graph = graph
        self.parameters = dict(parameters or {})
        self.functions = functions or default_registry()
        self.morphism = morphism or EDGE_ISOMORPHISM
        self.function_context = FunctionContext(graph)
        #: identity-keyed overrides installed by the aggregation machinery
        self.aggregate_values = {}

    # ------------------------------------------------------------------

    def evaluate(self, expression, record):
        """[[expression]]_{G, record}."""
        override = self.aggregate_values.get(id(expression))
        if override is not None or id(expression) in self.aggregate_values:
            return override

        method = _DISPATCH.get(type(expression))
        if method is None:
            raise CypherTypeError(
                "cannot evaluate expression %r" % (expression,)
            )
        return method(self, expression, record)

    def evaluate_predicate(self, expression, record):
        """WHERE semantics: keep the record only on a strict ``true``."""
        return is_true(self.evaluate(expression, record))

    # -- leaves ------------------------------------------------------------

    def _literal(self, node, record):
        return node.value

    def _variable(self, node, record):
        if node.name not in record:
            raise CypherSemanticError("variable not in scope: %s" % node.name)
        return record[node.name]

    def _parameter(self, node, record):
        if node.name not in self.parameters:
            raise ParameterNotBound("parameter not bound: $%s" % node.name)
        return self.parameters[node.name]

    # -- maps, properties -----------------------------------------------------

    def _property_access(self, node, record):
        subject = self.evaluate(node.subject, record)
        if subject is None:
            return None
        if isinstance(subject, (NodeId, RelId)):
            return self.graph.property_value(subject, node.key)
        if isinstance(subject, dict):
            return subject.get(node.key)
        component = getattr(subject, "cypher_component", None)
        if component is not None:  # temporal values expose .year etc.
            return component(node.key)
        raise CypherTypeError(
            "cannot access property %r on %r" % (node.key, subject)
        )

    def _map_literal(self, node, record):
        return {key: self.evaluate(value, record) for key, value in node.items}

    # -- lists ------------------------------------------------------------------

    def _list_literal(self, node, record):
        return [self.evaluate(item, record) for item in node.items]

    def _list_index(self, node, record):
        subject = self.evaluate(node.subject, record)
        index = self.evaluate(node.index, record)
        if subject is None or index is None:
            return None
        if isinstance(subject, list):
            if not isinstance(index, int) or isinstance(index, bool):
                raise CypherTypeError("list index must be an integer")
            if -len(subject) <= index < len(subject):
                return subject[index]
            return None
        if isinstance(subject, dict):
            if not isinstance(index, str):
                raise CypherTypeError("map lookup key must be a string")
            return subject.get(index)
        if isinstance(subject, (NodeId, RelId)):
            if not isinstance(index, str):
                raise CypherTypeError("property lookup key must be a string")
            return self.graph.property_value(subject, index)
        raise CypherTypeError("%r is not indexable" % (subject,))

    def _list_slice(self, node, record):
        subject = self.evaluate(node.subject, record)
        if subject is None:
            return None
        if not isinstance(subject, list):
            raise CypherTypeError("slicing requires a list")
        start = self.evaluate(node.start, record) if node.start is not None else 0
        end = self.evaluate(node.end, record) if node.end is not None else len(subject)
        if start is None or end is None:
            return None
        for bound in (start, end):
            if not isinstance(bound, int) or isinstance(bound, bool):
                raise CypherTypeError("slice bounds must be integers")
        return subject[start:end]

    def _in(self, node, record):
        item = self.evaluate(node.item, record)
        container = self.evaluate(node.container, record)
        if container is None:
            return None
        if not isinstance(container, list):
            raise CypherTypeError("IN requires a list, got %r" % (container,))
        saw_unknown = False
        for element in container:
            verdict = equals(item, element)
            if verdict is True:
                return True
            if verdict is None:
                saw_unknown = True
        return None if saw_unknown else False

    # -- strings -------------------------------------------------------------------

    def _string_predicate(self, node, record):
        left = self.evaluate(node.left, record)
        right = self.evaluate(node.right, record)
        if not isinstance(left, str) or not isinstance(right, str):
            return None  # null operands and type mismatches are unknown
        if node.operator == "STARTS WITH":
            return left.startswith(right)
        if node.operator == "ENDS WITH":
            return left.endswith(right)
        return right in left  # CONTAINS

    def _regex(self, node, record):
        subject = self.evaluate(node.subject, record)
        pattern = self.evaluate(node.pattern, record)
        if not isinstance(subject, str) or not isinstance(pattern, str):
            return None
        return re.fullmatch(pattern, subject) is not None

    # -- logic ---------------------------------------------------------------------

    def _binary_logic(self, node, record):
        left = _as_ternary(self.evaluate(node.left, record))
        if node.operator == "AND":
            if left is False:
                return False
            return and3(left, _as_ternary(self.evaluate(node.right, record)))
        if node.operator == "OR":
            if left is True:
                return True
            return or3(left, _as_ternary(self.evaluate(node.right, record)))
        return xor3(left, _as_ternary(self.evaluate(node.right, record)))

    def _not(self, node, record):
        return not3(_as_ternary(self.evaluate(node.operand, record)))

    def _is_null(self, node, record):
        return self.evaluate(node.operand, record) is None

    def _is_not_null(self, node, record):
        return self.evaluate(node.operand, record) is not None

    # -- comparisons -----------------------------------------------------------------

    def _comparison(self, node, record):
        values = [self.evaluate(operand, record) for operand in node.operands]
        verdict = True
        for operator, left, right in zip(node.operators, values, values[1:]):
            verdict = and3(verdict, _compare_once(operator, left, right))
            if verdict is False:
                return False
        return verdict

    # -- arithmetic -------------------------------------------------------------------

    def _arithmetic(self, node, record):
        left = self.evaluate(node.left, record)
        right = self.evaluate(node.right, record)
        return apply_arithmetic(node.operator, left, right)

    def _unary_minus(self, node, record):
        value = self.evaluate(node.operand, record)
        if value is None:
            return None
        if is_number(value):
            return -value
        if hasattr(value, "cypher_negate"):
            return value.cypher_negate()
        raise CypherTypeError("cannot negate %r" % (value,))

    def _unary_plus(self, node, record):
        value = self.evaluate(node.operand, record)
        if value is None or is_number(value):
            return value
        raise CypherTypeError("unary + expects a number")

    # -- functions ----------------------------------------------------------------------

    def _function_call(self, node, record):
        if node.name in ex.AGGREGATE_FUNCTION_NAMES:
            raise CypherSemanticError(
                "aggregate %s() is only allowed in WITH/RETURN" % node.name
            )
        args = [self.evaluate(argument, record) for argument in node.args]
        return self.functions.call(node.name, self.function_context, args)

    def _count_star(self, node, record):
        raise CypherSemanticError("count(*) is only allowed in WITH/RETURN")

    # -- labels ------------------------------------------------------------------------

    def _label_predicate(self, node, record):
        subject = self.evaluate(node.subject, record)
        if subject is None:
            return None
        if not isinstance(subject, NodeId):
            raise CypherTypeError("label predicate expects a node")
        node_labels = self.graph.labels(subject)
        return all(label in node_labels for label in node.labels)

    # -- comprehensions and quantifiers ---------------------------------------------------

    def _list_comprehension(self, node, record):
        source = self.evaluate(node.source, record)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError("comprehension source must be a list")
        result = []
        inner = dict(record)
        for element in source:
            inner[node.variable] = element
            if node.where is not None and not self.evaluate_predicate(
                node.where, inner
            ):
                continue
            if node.projection is not None:
                result.append(self.evaluate(node.projection, inner))
            else:
                result.append(element)
        return result

    def _quantified(self, node, record):
        source = self.evaluate(node.source, record)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError("quantifier source must be a list")
        trues = falses = unknowns = 0
        inner = dict(record)
        for element in source:
            inner[node.variable] = element
            verdict = _as_ternary(self.evaluate(node.predicate, inner))
            if verdict is True:
                trues += 1
            elif verdict is False:
                falses += 1
            else:
                unknowns += 1
        if node.quantifier == "all":
            if falses:
                return False
            return None if unknowns else True
        if node.quantifier == "any":
            if trues:
                return True
            return None if unknowns else False
        if node.quantifier == "none":
            if trues:
                return False
            return None if unknowns else True
        # single
        if trues > 1:
            return False
        if unknowns:
            return None
        return trues == 1

    def _reduce(self, node, record):
        source = self.evaluate(node.source, record)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError("reduce() source must be a list")
        accumulator = self.evaluate(node.init, record)
        inner = dict(record)
        for element in source:
            inner[node.accumulator] = accumulator
            inner[node.variable] = element
            accumulator = self.evaluate(node.expression, inner)
        return accumulator

    # -- patterns in expressions ------------------------------------------------------------

    def _pattern_predicate(self, node, record):
        from repro.semantics.matching import match_pattern_tuple

        matches = match_pattern_tuple(
            (node.pattern,), self.graph, record, self, self.morphism
        )
        return bool(matches)

    def _exists_subquery(self, node, record):
        from repro.semantics.matching import match_pattern_tuple

        matches = match_pattern_tuple(
            tuple(node.pattern), self.graph, record, self, self.morphism
        )
        if node.where is None:
            return bool(matches)
        for bindings in matches:
            inner = dict(record)
            inner.update(bindings)
            if self.evaluate_predicate(node.where, inner):
                return True
        return False

    def _pattern_comprehension(self, node, record):
        from repro.semantics.matching import match_pattern_tuple

        matches = match_pattern_tuple(
            (node.pattern,), self.graph, record, self, self.morphism
        )
        result = []
        for bindings in matches:
            inner = dict(record)
            inner.update(bindings)
            if node.where is not None and not self.evaluate_predicate(
                node.where, inner
            ):
                continue
            result.append(self.evaluate(node.projection, inner))
        return result

    # -- CASE ------------------------------------------------------------------------------

    def _case(self, node, record):
        if node.operand is not None:
            operand = self.evaluate(node.operand, record)
            for when, then in node.alternatives:
                if equals(operand, self.evaluate(when, record)) is True:
                    return self.evaluate(then, record)
        else:
            for when, then in node.alternatives:
                if is_true(self.evaluate(when, record)):
                    return self.evaluate(then, record)
        if node.default is not None:
            return self.evaluate(node.default, record)
        return None


def _as_ternary(value):
    if value is None or isinstance(value, bool):
        return value
    raise CypherTypeError("expected a Boolean, got %r" % (value,))


def _compare_once(operator, left, right):
    if operator == "=":
        return equals(left, right)
    if operator == "<>":
        return not_equals(left, right)
    verdict = compare(left, right)
    if verdict is None:
        return None
    if operator == "<":
        return verdict < 0
    if operator == "<=":
        return verdict <= 0
    if operator == ">":
        return verdict > 0
    return verdict >= 0  # ">="


def apply_arithmetic(operator, left, right):
    """The binary arithmetic kernel, shared with the physical operators."""
    if left is None or right is None:
        return None
    if operator == "+":
        if is_number(left) and is_number(right):
            return left + right
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        if isinstance(left, list) and isinstance(right, list):
            return left + right
        if isinstance(left, list):
            return left + [right]
        if isinstance(right, list):
            return [left] + right
        if hasattr(left, "cypher_add"):
            result = left.cypher_add(right)
            if result is not NotImplemented:
                return result
        if hasattr(right, "cypher_radd"):
            result = right.cypher_radd(left)
            if result is not NotImplemented:
                return result
        raise CypherTypeError("cannot add %r and %r" % (left, right))
    if operator == "-":
        if is_number(left) and is_number(right):
            return left - right
        if hasattr(left, "cypher_subtract"):
            result = left.cypher_subtract(right)
            if result is not NotImplemented:
                return result
        raise CypherTypeError("cannot subtract %r from %r" % (right, left))
    if not (is_number(left) and is_number(right)):
        if operator == "*" and (
            hasattr(left, "cypher_multiply") or hasattr(right, "cypher_multiply")
        ):
            owner, factor = (
                (left, right) if hasattr(left, "cypher_multiply") else (right, left)
            )
            result = owner.cypher_multiply(factor)
            if result is not NotImplemented:
                return result
        raise CypherTypeError(
            "operator %s expects numbers, got %r and %r"
            % (operator, left, right)
        )
    if operator == "*":
        return left * right
    if operator == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise CypherRuntimeError("integer division by zero")
            quotient = abs(left) // abs(right)  # Cypher truncates toward zero
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if right == 0:
            return math.inf if left > 0 else (-math.inf if left < 0 else math.nan)
        return left / right
    if operator == "%":
        if right == 0:
            if isinstance(left, int) and isinstance(right, int):
                raise CypherRuntimeError("integer modulo by zero")
            return math.nan
        result = math.fmod(left, right)  # sign follows the dividend (Java-style)
        if isinstance(left, int) and isinstance(right, int):
            return int(result)
        return result
    if operator == "^":
        return float(left) ** float(right)
    raise CypherTypeError("unknown arithmetic operator %r" % (operator,))


_DISPATCH = {
    ex.Literal: Evaluator._literal,
    ex.Variable: Evaluator._variable,
    ex.Parameter: Evaluator._parameter,
    ex.PropertyAccess: Evaluator._property_access,
    ex.MapLiteral: Evaluator._map_literal,
    ex.ListLiteral: Evaluator._list_literal,
    ex.ListIndex: Evaluator._list_index,
    ex.ListSlice: Evaluator._list_slice,
    ex.In: Evaluator._in,
    ex.StringPredicate: Evaluator._string_predicate,
    ex.RegexMatch: Evaluator._regex,
    ex.BinaryLogic: Evaluator._binary_logic,
    ex.Not: Evaluator._not,
    ex.IsNull: Evaluator._is_null,
    ex.IsNotNull: Evaluator._is_not_null,
    ex.Comparison: Evaluator._comparison,
    ex.Arithmetic: Evaluator._arithmetic,
    ex.UnaryMinus: Evaluator._unary_minus,
    ex.UnaryPlus: Evaluator._unary_plus,
    ex.FunctionCall: Evaluator._function_call,
    ex.CountStar: Evaluator._count_star,
    ex.LabelPredicate: Evaluator._label_predicate,
    ex.ListComprehension: Evaluator._list_comprehension,
    ex.PatternComprehension: Evaluator._pattern_comprehension,
    ex.PatternPredicate: Evaluator._pattern_predicate,
    ex.QuantifiedPredicate: Evaluator._quantified,
    ex.Reduce: Evaluator._reduce,
    ex.CaseExpression: Evaluator._case,
    ex.ExistsSubquery: Evaluator._exists_subquery,
}
