"""Static semantic analysis: variable scoping and aggregation placement.

The paper's semantics assumes well-formed queries (expressions only use
names the assignment defines); real implementations enforce this before
execution.  This pass walks the clause sequence tracking the variables in
scope, and rejects:

* references to variables not in scope (including uses after a WITH that
  did not project them — the Section 3 walkthrough makes a point of ``s``
  going out of scope);
* aggregate functions outside WITH/RETURN projection items;
* nested aggregates;
* re-declaration conflicts (UNWIND alias or CREATE relationship variable
  already bound).

Pattern property expressions are checked against the *driving* scope, per
the paper's definition (they are evaluated under the assignment u, not
under bindings introduced by the same pattern).
"""

from __future__ import annotations

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast import queries as qu
from repro.ast.expressions import contains_aggregate
from repro.ast.patterns import free_variables
from repro.ast.visitor import children
from repro.exceptions import CypherSemanticError


def check_query(query):
    """Validate a parsed query; raises CypherSemanticError on violations."""
    if isinstance(query, qu.UnionQuery):
        check_query(query.left)
        check_query(query.right)
        return
    if not isinstance(query, qu.SingleQuery):
        raise CypherSemanticError("cannot analyse %r" % (query,))
    scope = set()
    for clause in query.clauses:
        scope = _check_clause(clause, scope)


# ---------------------------------------------------------------------------
# Clause-level scope transitions
# ---------------------------------------------------------------------------

def _check_clause(clause, scope):
    if isinstance(clause, cl.Match):
        pattern_names = set(free_variables(clause.pattern))
        _check_pattern_expressions(clause.pattern, scope)
        inner = scope | pattern_names
        if clause.where is not None:
            _check_expression(clause.where, inner, allow_aggregates=False)
        return inner
    if isinstance(clause, (cl.With, cl.Return)):
        projection = (
            clause.projection if isinstance(clause, (cl.With, cl.Return)) else None
        )
        new_scope = _check_projection(projection, scope)
        if isinstance(clause, cl.With) and clause.where is not None:
            _check_expression(clause.where, new_scope, allow_aggregates=False)
        return new_scope
    if isinstance(clause, cl.Unwind):
        _check_expression(clause.expression, scope, allow_aggregates=False)
        if clause.alias in scope:
            raise CypherSemanticError(
                "UNWIND alias %r is already in scope" % clause.alias
            )
        return scope | {clause.alias}
    if isinstance(clause, cl.Create):
        _check_pattern_expressions(clause.pattern, scope)
        for path in clause.pattern:
            for rel in path.relationship_patterns:
                if rel.name is not None and rel.name in scope:
                    raise CypherSemanticError(
                        "relationship variable %r already bound" % rel.name
                    )
        return scope | set(free_variables(clause.pattern))
    if isinstance(clause, cl.Delete):
        for expression in clause.expressions:
            _check_expression(expression, scope, allow_aggregates=False)
        return scope
    if isinstance(clause, cl.SetClause):
        _check_set_items(clause.items, scope)
        return scope
    if isinstance(clause, cl.RemoveClause):
        for item in clause.items:
            if isinstance(item, cl.RemoveProperty):
                _check_expression(item.subject, scope, allow_aggregates=False)
            elif item.name not in scope:
                raise CypherSemanticError(
                    "variable not in scope: %s" % item.name
                )
        return scope
    if isinstance(clause, cl.Merge):
        _check_pattern_expressions((clause.pattern,), scope)
        merged = scope | set(free_variables((clause.pattern,)))
        _check_set_items(clause.on_create, merged)
        _check_set_items(clause.on_match, merged)
        return merged
    if isinstance(clause, cl.FromGraph):
        return scope
    if isinstance(clause, cl.ReturnGraph):
        if clause.pattern is not None:
            _check_pattern_expressions((clause.pattern,), scope)
        return scope
    raise CypherSemanticError("cannot analyse clause %r" % (clause,))


def _check_set_items(items, scope):
    for item in items:
        if isinstance(item, cl.SetProperty):
            _check_expression(item.subject, scope, allow_aggregates=False)
            _check_expression(item.value, scope, allow_aggregates=False)
        elif isinstance(item, cl.SetVariable):
            if item.name not in scope:
                raise CypherSemanticError(
                    "variable not in scope: %s" % item.name
                )
            _check_expression(item.value, scope, allow_aggregates=False)
        elif isinstance(item, cl.SetLabels):
            if item.name not in scope:
                raise CypherSemanticError(
                    "variable not in scope: %s" % item.name
                )


def _check_projection(projection, scope):
    items = list(projection.items)
    if projection.star and not scope and not items:
        raise CypherSemanticError(
            "RETURN * is only defined on a table with at least one field"
        )
    new_scope = set(scope) if projection.star else set()
    for item in items:
        _check_expression(item.expression, scope, allow_aggregates=True)
        if item.alias is not None:
            new_scope.add(item.alias)
        elif isinstance(item.expression, ex.Variable):
            new_scope.add(item.expression.name)
        else:
            from repro.ast.printer import print_expression

            new_scope.add(print_expression(item.expression))
    # ORDER BY sees both the projected names and the driving variables
    # (unless DISTINCT/aggregation restricts it — checked at runtime).
    order_scope = scope | new_scope
    for sort in projection.order_by:
        _check_expression(sort.expression, order_scope, allow_aggregates=True)
    for bound in (projection.skip, projection.limit):
        if bound is not None:
            _check_expression(bound, set(), allow_aggregates=False)
    return new_scope


# ---------------------------------------------------------------------------
# Expression-level checks (local scopes, aggregate placement)
# ---------------------------------------------------------------------------

def _check_pattern_expressions(patterns, scope):
    """Property maps inside patterns see only the driving scope."""
    for path in patterns if isinstance(patterns, (list, tuple)) else (patterns,):
        for element in path.elements:
            for _key, expression in element.properties:
                _check_expression(expression, scope, allow_aggregates=False)


def _check_expression(expression, scope, allow_aggregates, inside_aggregate=False):
    if isinstance(expression, ex.Variable):
        if expression.name not in scope:
            raise CypherSemanticError(
                "variable not in scope: %s" % expression.name
            )
        return
    if isinstance(expression, (ex.CountStar,)) or (
        isinstance(expression, ex.FunctionCall)
        and expression.name in ex.AGGREGATE_FUNCTION_NAMES
    ):
        if not allow_aggregates:
            raise CypherSemanticError(
                "aggregates are only allowed in WITH/RETURN projections"
            )
        if inside_aggregate:
            raise CypherSemanticError("aggregations cannot be nested")
        if isinstance(expression, ex.FunctionCall):
            for argument in expression.args:
                _check_expression(
                    argument, scope, allow_aggregates, inside_aggregate=True
                )
        return
    if isinstance(expression, ex.ListComprehension):
        _check_expression(expression.source, scope, allow_aggregates, inside_aggregate)
        inner = scope | {expression.variable}
        if expression.where is not None:
            _check_expression(expression.where, inner, False)
        if expression.projection is not None:
            _check_expression(expression.projection, inner, False)
        return
    if isinstance(expression, ex.QuantifiedPredicate):
        _check_expression(expression.source, scope, allow_aggregates, inside_aggregate)
        _check_expression(
            expression.predicate, scope | {expression.variable}, False
        )
        return
    if isinstance(expression, ex.Reduce):
        _check_expression(expression.init, scope, allow_aggregates, inside_aggregate)
        _check_expression(expression.source, scope, allow_aggregates, inside_aggregate)
        _check_expression(
            expression.expression,
            scope | {expression.accumulator, expression.variable},
            False,
        )
        return
    if isinstance(expression, ex.PatternComprehension):
        local = scope | set(free_variables((expression.pattern,)))
        _check_pattern_expressions((expression.pattern,), scope)
        if expression.where is not None:
            _check_expression(expression.where, local, False)
        _check_expression(expression.projection, local, False)
        return
    if isinstance(expression, (ex.PatternPredicate,)):
        _check_pattern_expressions((expression.pattern,), scope)
        return
    if isinstance(expression, ex.ExistsSubquery):
        _check_pattern_expressions(expression.pattern, scope)
        if expression.where is not None:
            local = scope | set(free_variables(expression.pattern))
            _check_expression(expression.where, local, False)
        return
    for child in children(expression):
        _check_expression(child, scope, allow_aggregates, inside_aggregate)
