"""The reference interpreter: a transcription of the paper's Section 4.

* :mod:`repro.semantics.table` — tables as bags of records, ``T()``, ⊎, ε;
* :mod:`repro.semantics.matching` — ``(p, G, u) ⊨ π`` and ``match(π̄, G, u)``;
* :mod:`repro.semantics.expressions` — ``[[expr]]_{G,u}``;
* :mod:`repro.semantics.clauses` — ``[[C]]_G : Table → Table`` (Figure 7);
* :mod:`repro.semantics.query` — ``output(Q, G) = [[Q]]_G(T())`` (Figure 6);
* :mod:`repro.semantics.morphism` — edge-isomorphism (Cypher 9's default)
  plus the configurable-morphism modes of Section 8.

This path is deliberately naive — it is the executable specification the
planner-based runtime is cross-checked against.
"""

from repro.semantics.table import Record, Table
from repro.semantics.morphism import (
    EDGE_ISOMORPHISM,
    HOMOMORPHISM,
    NODE_ISOMORPHISM,
    Morphism,
)
from repro.semantics.expressions import Evaluator
from repro.semantics.matching import match_pattern_tuple, satisfies
from repro.semantics.query import QueryState, output, run_query

__all__ = [
    "Table",
    "Record",
    "Morphism",
    "EDGE_ISOMORPHISM",
    "NODE_ISOMORPHISM",
    "HOMOMORPHISM",
    "Evaluator",
    "match_pattern_tuple",
    "satisfies",
    "QueryState",
    "run_query",
    "output",
]
