"""Clause semantics ``[[C]]_G : Table → Table`` (paper Figure 7).

Each clause denotes a function from tables to tables; a query is the
composition of these functions (Section 2, "Linear queries").  This module
implements the matching clauses (MATCH / OPTIONAL MATCH / WHERE), the
relational clauses (WITH / UNWIND) and RETURN, including the aggregation
rule the paper describes in Section 3: non-aggregating projection items
act as the implicit grouping key for the aggregating ones.

Update clauses and the Cypher 10 graph clauses are dispatched to
:mod:`repro.updates.executor` and :mod:`repro.multigraph.engine`.
"""

from __future__ import annotations

import functools

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast.expressions import AGGREGATE_FUNCTION_NAMES, contains_aggregate
from repro.ast.patterns import free_variables
from repro.ast.printer import print_expression
from repro.ast.visitor import children
from repro.exceptions import CypherRuntimeError, CypherSemanticError
from repro.functions.aggregates import CountStar as CountStarAggregate
from repro.functions.aggregates import _Percentile, make_aggregate
from repro.semantics.matching import match_pattern_tuple
from repro.semantics.table import Table
from repro.values.ordering import canonical_key, sort_key


def apply_clause(clause, table, state):
    """[[clause]]_G applied to ``table`` under the query ``state``."""
    if isinstance(clause, cl.Match):
        return _apply_match(clause, table, state)
    if isinstance(clause, cl.With):
        return _apply_with(clause, table, state)
    if isinstance(clause, cl.Return):
        return project(clause.projection, table, state)
    if isinstance(clause, cl.Unwind):
        return _apply_unwind(clause, table, state)
    if isinstance(
        clause, (cl.Create, cl.Delete, cl.SetClause, cl.RemoveClause, cl.Merge)
    ):
        from repro.updates.executor import apply_update

        return apply_update(clause, table, state)
    if isinstance(clause, cl.FromGraph):
        state.switch_graph(clause.name, clause.uri)
        return table
    if isinstance(clause, cl.ReturnGraph):
        from repro.multigraph.engine import apply_return_graph

        return apply_return_graph(clause, table, state)
    raise CypherSemanticError("cannot execute clause %r" % (clause,))


# ---------------------------------------------------------------------------
# MATCH and OPTIONAL MATCH (Figure 7, first block)
# ---------------------------------------------------------------------------

def _apply_match(clause, table, state):
    evaluator = state.evaluator()
    new_fields = [
        name
        for name in free_variables(clause.pattern)
        if name not in table.fields
    ]
    fields = table.fields + tuple(new_fields)
    rows = []
    for record in table.rows:
        matches = match_pattern_tuple(
            clause.pattern, state.graph, record, evaluator, state.morphism
        )
        surviving = []
        for bindings in matches:
            row = dict(record)
            row.update(bindings)
            if clause.where is None or evaluator.evaluate_predicate(
                clause.where, row
            ):
                surviving.append(row)
        if surviving:
            rows.extend(surviving)
        elif clause.optional:
            # (u, (free(u, π̄) : null)) — one row padded with nulls
            padded = dict(record)
            for name in new_fields:
                padded[name] = None
            rows.append(padded)
    return Table(fields, rows)


# ---------------------------------------------------------------------------
# UNWIND (Figure 7, last rule — followed verbatim, including non-lists)
# ---------------------------------------------------------------------------

def _apply_unwind(clause, table, state):
    evaluator = state.evaluator()
    if clause.alias in table.fields:
        raise CypherSemanticError(
            "UNWIND alias %r is already in scope" % clause.alias
        )
    fields = table.fields + (clause.alias,)
    rows = []
    for record in table.rows:
        value = evaluator.evaluate(clause.expression, record)
        if isinstance(value, list):
            elements = value  # empty list contributes no rows
        else:
            # The paper's rule unwinds any non-list (null included) to a
            # single row; Neo4j deviates for null.  We follow the paper.
            elements = [value]
        for element in elements:
            row = dict(record)
            row[clause.alias] = element
            rows.append(row)
    return Table(fields, rows)


# ---------------------------------------------------------------------------
# WITH and RETURN (Figures 6 and 7) with aggregation
# ---------------------------------------------------------------------------

def _apply_with(clause, table, state):
    projected = project(clause.projection, table, state)
    if clause.where is None:
        return projected
    evaluator = state.evaluator()
    rows = [
        row
        for row in projected.rows
        if evaluator.evaluate_predicate(clause.where, row)
    ]
    return Table(projected.fields, rows)


def project(projection, table, state):
    """The shared body of WITH and RETURN."""
    evaluator = state.evaluator()
    items = list(_expand_star(projection, table))
    names = _output_names(items)
    aggregating = [contains_aggregate(item.expression) for item in items]

    if any(aggregating):
        out_rows, row_pairs = _aggregate_rows(
            items, names, aggregating, table, state
        )
    else:
        out_rows = []
        row_pairs = []  # (source row, output row) for ORDER BY scoping
        for record in table.rows:
            row = {
                name: evaluator.evaluate(item.expression, record)
                for name, item in zip(names, items)
            }
            out_rows.append(row)
            row_pairs.append((record, row))

    result = Table(tuple(names), out_rows)
    if projection.distinct:
        result = result.deduplicate()
        row_pairs = None  # rows no longer align with inputs
    if projection.order_by:
        result = _order_rows(projection.order_by, result, row_pairs, state)
    result = _skip_limit(projection, result, state)
    return result


def _expand_star(projection, table):
    items = []
    if projection.star:
        if not table.fields and not projection.items:
            raise CypherSemanticError(
                "RETURN * is only defined on a table with at least one field"
            )
        for field in table.fields:
            items.append(cl.ReturnItem(ex.Variable(field), field))
    items.extend(projection.items)
    if not items:
        raise CypherSemanticError("nothing to project")
    return items


def _output_names(items):
    """Output field names: the alias, or α(expression).

    The paper assumes an implementation-dependent injective α mapping
    expressions to names; like Neo4j we use the expression's source text.
    """
    names = []
    for item in items:
        if item.alias is not None:
            names.append(item.alias)
        elif isinstance(item.expression, ex.Variable):
            names.append(item.expression.name)
        else:
            names.append(print_expression(item.expression))
    if len(set(names)) != len(names):
        raise CypherSemanticError(
            "duplicate column names in projection: %r" % (names,)
        )
    return names


def _collect_aggregate_nodes(expression):
    found = []

    def visit(node):
        if isinstance(node, ex.CountStar):
            found.append(node)
            return
        if (
            isinstance(node, ex.FunctionCall)
            and node.name in AGGREGATE_FUNCTION_NAMES
        ):
            for argument in node.args:
                if contains_aggregate(argument):
                    raise CypherSemanticError(
                        "aggregations cannot be nested"
                    )
            found.append(node)
            return
        for child in children(node):
            visit(child)

    visit(expression)
    return found


def _aggregate_rows(items, names, aggregating, table, state):
    """Group rows by the non-aggregating items and evaluate aggregates.

    Returns (output rows, None): after aggregation the output rows no
    longer align 1:1 with input rows, so ORDER BY sees only the output.
    """
    evaluator = state.evaluator()
    grouping = [index for index, is_agg in enumerate(aggregating) if not is_agg]
    aggregates = [index for index, is_agg in enumerate(aggregating) if is_agg]

    groups = {}
    group_order = []
    for record in table.rows:
        key_values = [
            evaluator.evaluate(items[index].expression, record)
            for index in grouping
        ]
        key = tuple(canonical_key(value) for value in key_values)
        if key not in groups:
            groups[key] = (key_values, [])
            group_order.append(key)
        groups[key][1].append(record)

    if not groups and not grouping:
        # Global aggregation over the empty table yields one row
        # (count() = 0, sum() = 0, collect() = [], others null).
        groups[()] = ([], [])
        group_order.append(())

    out_rows = []
    for key in group_order:
        key_values, group_records = groups[key]
        row = {}
        for index, value in zip(grouping, key_values):
            row[names[index]] = value
        for index in aggregates:
            expression = items[index].expression
            row[names[index]] = evaluate_aggregate_item(
                expression, group_records, evaluator
            )
        out_rows.append(row)
    return out_rows, None


def evaluate_aggregate_item(expression, group_records, evaluator):
    aggregate_nodes = _collect_aggregate_nodes(expression)
    overrides = {}
    for node in aggregate_nodes:
        accumulator = _make_accumulator(node)
        for record in group_records:
            _feed_accumulator(accumulator, node, record, evaluator)
        overrides[id(node)] = accumulator.result()
    representative = group_records[0] if group_records else {}
    previous = evaluator.aggregate_values
    evaluator.aggregate_values = overrides
    try:
        return evaluator.evaluate(expression, representative)
    finally:
        evaluator.aggregate_values = previous


def _make_accumulator(node):
    if isinstance(node, ex.CountStar):
        return CountStarAggregate()
    return make_aggregate(node.name, node.distinct)


def _feed_accumulator(accumulator, node, record, evaluator):
    if isinstance(node, ex.CountStar):
        accumulator.include(True)
        return
    if isinstance(accumulator, _Percentile):
        value = evaluator.evaluate(node.args[0], record)
        percentile = evaluator.evaluate(node.args[1], record)
        accumulator.include_pair(value, percentile)
        return
    if len(node.args) != 1:
        raise CypherSemanticError(
            "%s() takes exactly one argument" % node.name
        )
    accumulator.include(evaluator.evaluate(node.args[0], record))


# ---------------------------------------------------------------------------
# ORDER BY / SKIP / LIMIT
# ---------------------------------------------------------------------------

def _order_rows(sort_items, result, row_pairs, state):
    evaluator = state.evaluator()

    if row_pairs is not None and len(row_pairs) == len(result.rows):
        environments = [
            (dict(source, **output), output) for source, output in row_pairs
        ]
    else:
        environments = [(row, row) for row in result.rows]

    def compare_rows(left, right):
        for sort in sort_items:
            left_key = sort_key(evaluator.evaluate(sort.expression, left[0]))
            right_key = sort_key(evaluator.evaluate(sort.expression, right[0]))
            if left_key < right_key:
                return -1 if sort.ascending else 1
            if left_key > right_key:
                return 1 if sort.ascending else -1
        return 0

    ordered = sorted(environments, key=functools.cmp_to_key(compare_rows))
    return Table(result.fields, [output for _env, output in ordered])


def _skip_limit(projection, result, state):
    evaluator = state.evaluator()
    rows = result.rows
    if projection.skip is not None:
        rows = rows[_count_bound(projection.skip, "SKIP", evaluator):]
    if projection.limit is not None:
        bound = _count_bound(projection.limit, "LIMIT", evaluator)
        rows = rows[:bound]
    return Table(result.fields, rows)


def _count_bound(expression, keyword, evaluator):
    value = evaluator.evaluate(expression, {})
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise CypherRuntimeError(
            "%s requires a non-negative integer, got %r" % (keyword, value)
        )
    return value
