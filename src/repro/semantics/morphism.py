"""Pattern-matching morphism modes (paper Sections 4.2 and 8).

Cypher 9 "matches patterns using relationship (edge) isomorphism": no
relationship id is bound twice within one MATCH, which is what keeps
variable-length matching finite (the paper's one-node/one-loop example).
Section 8 envisions letting the query writer pick homomorphism or node
isomorphism instead; we implement all three.

Under homomorphism an unbounded variable-length pattern can match
infinitely many paths, so a traversal-length cap must be supplied —
exactly the problem the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

EDGE = "edge-isomorphism"
NODE = "node-isomorphism"
HOMOMORPHISM_MODE = "homomorphism"


@dataclass(frozen=True)
class Morphism:
    """How matches may reuse graph elements.

    ``max_length`` caps the number of relationships any one variable-length
    traversal may take; it is mandatory for unbounded patterns under
    homomorphism and ignored-if-None otherwise.
    """

    mode: str = EDGE
    max_length: Optional[int] = None

    def __post_init__(self):
        if self.mode not in (EDGE, NODE, HOMOMORPHISM_MODE):
            raise ValueError("unknown morphism mode %r" % (self.mode,))

    @property
    def forbids_repeated_relationships(self):
        return self.mode in (EDGE, NODE)

    @property
    def forbids_repeated_nodes(self):
        return self.mode == NODE


EDGE_ISOMORPHISM = Morphism(EDGE)
NODE_ISOMORPHISM = Morphism(NODE)
HOMOMORPHISM = Morphism(HOMOMORPHISM_MODE, max_length=16)
