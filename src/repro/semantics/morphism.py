"""Pattern-matching morphism modes (paper Sections 4.2 and 8).

Cypher 9 "matches patterns using relationship (edge) isomorphism": no
relationship id is bound twice within one MATCH, which is what keeps
variable-length matching finite (the paper's one-node/one-loop example).
Section 8 envisions letting the query writer pick homomorphism or node
isomorphism instead; we implement all three.

Under homomorphism an unbounded variable-length pattern can match
infinitely many paths, so a traversal-length cap must be supplied —
exactly the problem the paper describes.

:class:`UniquenessKernel` packages the morphism's uniqueness rules as
compiled clash checks over slotted rows, so the planner's Expand
operators are parameterised by the morphism instead of hard-coding edge
isomorphism; all three modes plan natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.values.base import NodeId, RelId

EDGE = "edge-isomorphism"
NODE = "node-isomorphism"
HOMOMORPHISM_MODE = "homomorphism"


@dataclass(frozen=True)
class Morphism:
    """How matches may reuse graph elements.

    ``max_length`` caps the number of relationships any one variable-length
    traversal may take; it is mandatory for unbounded patterns under
    homomorphism and ignored-if-None otherwise.
    """

    mode: str = EDGE
    max_length: Optional[int] = None

    def __post_init__(self):
        if self.mode not in (EDGE, NODE, HOMOMORPHISM_MODE):
            raise ValueError("unknown morphism mode %r" % (self.mode,))

    @property
    def forbids_repeated_relationships(self):
        return self.mode in (EDGE, NODE)

    @property
    def forbids_repeated_nodes(self):
        return self.mode == NODE


EDGE_ISOMORPHISM = Morphism(EDGE)
NODE_ISOMORPHISM = Morphism(NODE)
HOMOMORPHISM = Morphism(HOMOMORPHISM_MODE, max_length=16)


class UniquenessKernel:
    """Morphism-parameterised clash checks for slotted execution.

    The planner compiles one kernel per execution; each Expand step asks
    it for (a) a relationship clash check against earlier bindings, (b)
    a node clash check against the chain's earlier nodes, and (c) the
    effective traversal cap of a variable-length segment.  A ``None``
    check means "nothing to enforce" and the operator skips the call
    entirely, so e.g. homomorphism pays no per-row uniqueness cost.
    """

    __slots__ = ("morphism",)

    def __init__(self, morphism):
        self.morphism = morphism

    def relationship_clash(self, slots):
        """``(rel, row) -> bool`` against earlier bindings; None if moot.

        ``slots`` index row positions holding relationships bound earlier
        in the same MATCH — a single :class:`RelId` for rigid patterns, a
        list for variable-length ones.
        """
        if not self.morphism.forbids_repeated_relationships or not slots:
            return None
        slots = tuple(slots)

        def clashes(rel, row):
            for slot in slots:
                bound = row[slot]
                if isinstance(bound, RelId):
                    if bound == rel:
                        return True
                elif isinstance(bound, list):
                    if rel in bound:
                        return True
            return False

        return clashes

    def node_clash(self, slots):
        """``(node, row) -> bool`` against the chain's earlier nodes.

        Node isomorphism is scoped to one path pattern (matching the
        reference matcher, which tracks ``path_nodes`` per path), so
        ``slots`` lists only the current chain's node variables.
        """
        if not self.morphism.forbids_repeated_nodes or not slots:
            return None
        slots = tuple(slots)

        def clashes(node, row):
            for slot in slots:
                if row[slot] == node:
                    return True
            return False

        return clashes

    def visited_nodes(self, node_slots, segment_slots, row, other_end):
        """All node ids the chain has traversed so far, from one row.

        ``node_slots`` hold the chain's named (and hidden) node bindings;
        ``segment_slots`` are ``(from_slot, rel_list_slot)`` pairs for
        earlier variable-length segments, whose *intermediate* nodes are
        not bound to any slot but are reconstructed by walking each
        relationship from the segment's start (every traversed
        relationship determines its far endpoint via ``other_end``).
        """
        visited = {
            value
            for value in (row[slot] for slot in node_slots)
            if isinstance(value, NodeId)
        }
        for from_slot, rel_slot in segment_slots:
            current = row[from_slot]
            rels = row[rel_slot]
            if not isinstance(current, NodeId) or not isinstance(rels, list):
                continue
            for rel in rels:
                current = other_end(rel, current)
                visited.add(current)
        return visited

    def traversal_cap(self, high):
        """Effective step bound for a var-length segment with bound ``high``.

        Mirrors the reference matcher: under a relationship-uniqueness
        morphism the traversal is finite anyway, so ``max_length`` only
        tightens an explicit bound; under homomorphism an unbounded
        pattern *requires* ``max_length`` (the paper's infinite-match
        example).  Raises :class:`CypherRuntimeError` in the latter case.
        """
        max_length = self.morphism.max_length
        if high is None and not self.morphism.forbids_repeated_relationships:
            if max_length is None:
                from repro.exceptions import CypherRuntimeError

                raise CypherRuntimeError(
                    "unbounded variable-length pattern under homomorphism "
                    "needs Morphism.max_length (the paper's infinite-match "
                    "example)"
                )
            return max_length
        if max_length is not None:
            return max_length if high is None else min(high, max_length)
        return high
