"""Query semantics (paper Figure 6).

``output(Q, G) = [[Q]]_G(T())`` — evaluation starts from the table with
one empty tuple, each clause maps table to table, and UNION [ALL]
combines the results of two queries on the *same* input table (with ε for
the duplicate-eliminating variant).
"""

from __future__ import annotations

from repro.ast import queries as qu
from repro.exceptions import CypherSemanticError
from repro.graph.catalog import GraphCatalog
from repro.semantics.clauses import apply_clause
from repro.semantics.expressions import Evaluator
from repro.semantics.morphism import EDGE_ISOMORPHISM
from repro.semantics.table import Table


class QueryState:
    """Everything an executing query may touch.

    Holds the current source graph (switchable by Cypher 10's FROM GRAPH),
    the catalog of named graphs, query parameters, the function registry
    and the morphism configuration.  ``result_graphs`` accumulates graphs
    produced by RETURN GRAPH.
    """

    def __init__(
        self,
        graph,
        parameters=None,
        functions=None,
        morphism=EDGE_ISOMORPHISM,
        catalog=None,
    ):
        self.catalog = catalog if catalog is not None else GraphCatalog(graph)
        self.graph = graph
        self.parameters = dict(parameters or {})
        self.functions = functions
        self.morphism = morphism
        self.result_graphs = {}
        self._evaluators = {}

    def evaluator(self):
        """An Evaluator bound to the *current* graph (cached per graph)."""
        key = id(self.graph)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = Evaluator(
                self.graph, self.parameters, self.functions, self.morphism
            )
            self._evaluators[key] = evaluator
        return evaluator

    def switch_graph(self, name, uri=None):
        """FROM GRAPH: make a catalog graph the current source graph."""
        self.graph = self.catalog.resolve(name=name, uri=uri)


def run_query(query, state, table=None):
    """[[query]]_G applied to ``table`` (default: the unit table T())."""
    if table is None:
        table = Table.unit()
    if isinstance(query, qu.SingleQuery):
        current = table
        for clause in query.clauses:
            current = apply_clause(clause, current, state)
        return current
    if isinstance(query, qu.UnionQuery):
        left = run_query(query.left, state, table)
        right = run_query(query.right, state, table)
        if set(left.fields) != set(right.fields):
            raise CypherSemanticError(
                "UNION sides must project the same fields: %r vs %r"
                % (list(left.fields), list(right.fields))
            )
        combined = Table(
            left.fields,
            left.rows + [_reorder(row, left.fields) for row in right.rows],
        )
        if query.all:
            return combined
        return combined.deduplicate()
    raise CypherSemanticError("cannot execute query %r" % (query,))


def _reorder(row, fields):
    return {field: row.get(field) for field in fields}


def output(query, graph, parameters=None, morphism=EDGE_ISOMORPHISM):
    """``output(Q, G)``: parse nothing, just run an AST query on a graph."""
    state = QueryState(graph, parameters=parameters, morphism=morphism)
    return run_query(query, state)
