"""Tables as bags of records (paper Section 4.1, "Tables").

A *record* is a partial function from names to values — here a plain dict
(the :class:`Record` alias), never mutated once added to a table.  A
*table with fields A* is a bag (multiset) of records whose domain is A; we
store the bag as a list, so ⊎ is concatenation and multiplicity is
positional.  ``ε(T)`` (duplicate elimination) and bag equality use the
canonical value keys from :mod:`repro.values.ordering`.

This is the *boundary* representation: the slotted execution engine
(:mod:`repro.planner.physical`) works over flat slot-indexed lists
internally and converts to these dict records only when materialising
its result Table, so both execution paths meet in the same bag algebra.
"""

from __future__ import annotations

from collections import Counter

from repro.values.ordering import canonical_key

Record = dict  # a record is a dict from names to values


class Table:
    """A bag of uniform records, with its field set made explicit."""

    __slots__ = ("fields", "rows")

    def __init__(self, fields=(), rows=None):
        self.fields = tuple(fields)
        self.rows = list(rows) if rows is not None else []

    # -- constructors ------------------------------------------------------

    @classmethod
    def unit(cls):
        """T(): the table containing the single empty record ().

        "The evaluation of a query starts with the table containing one
        empty tuple."
        """
        return cls((), [{}])

    @classmethod
    def from_records(cls, records, fields=None):
        records = list(records)
        if fields is None:
            fields = tuple(records[0].keys()) if records else ()
        return cls(fields, records)

    # -- bag algebra -----------------------------------------------------------

    def bag_union(self, other):
        """⊎: bag union — multiplicities add."""
        if set(self.fields) != set(other.fields):
            raise ValueError(
                "bag union requires uniform fields: %r vs %r"
                % (self.fields, other.fields)
            )
        return Table(self.fields, self.rows + other.rows)

    def deduplicate(self):
        """ε(T): each record kept exactly once."""
        seen = set()
        rows = []
        for row in self.rows:
            key = self._row_key(row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return Table(self.fields, rows)

    def _row_key(self, row):
        return tuple(canonical_key(row.get(field)) for field in self.fields)

    # -- inspection ---------------------------------------------------------

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self):
        return bool(self.rows)

    def multiplicity(self, row):
        """How many times a record occurs in the bag."""
        target = self._row_key(row)
        return sum(1 for candidate in self.rows if self._row_key(candidate) == target)

    def column(self, field):
        """All values of one field, in row order."""
        return [row.get(field) for row in self.rows]

    def same_bag(self, other):
        """Bag equality: same fields (as sets) and same multiplicities."""
        if set(self.fields) != set(other.fields):
            return False
        ours = Counter(self._row_key(row) for row in self.rows)
        shared_fields = self.fields
        theirs = Counter(
            tuple(canonical_key(row.get(field)) for field in shared_fields)
            for row in other.rows
        )
        return ours == theirs

    def to_records(self):
        """Copy out the rows as plain dicts (row order preserved)."""
        return [dict(row) for row in self.rows]

    def __repr__(self):
        return "Table(fields={}, rows={})".format(list(self.fields), len(self.rows))

    def pretty(self, limit=20):
        """A fixed-width rendering for examples and benchmark output."""
        headers = list(self.fields)
        body = [
            ["null" if row.get(field) is None else _render(row.get(field)) for field in headers]
            for row in self.rows[:limit]
        ]
        widths = [
            max([len(header)] + [len(line[index]) for line in body] or [0])
            for index, header in enumerate(headers)
        ]
        lines = [
            " | ".join(header.ljust(width) for header, width in zip(headers, widths))
        ]
        lines.append("-+-".join("-" * width for width in widths))
        for line in body:
            lines.append(
                " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
            )
        if len(self.rows) > limit:
            lines.append("... (%d more rows)" % (len(self.rows) - limit))
        return "\n".join(lines)


def _render(value):
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, list):
        return "[" + ", ".join(_render(item) for item in value) + "]"
    if isinstance(value, dict):
        return (
            "{"
            + ", ".join(
                "{}: {}".format(key, _render(item))
                for key, item in sorted(value.items())
            )
            + "}"
        )
    return str(value)
