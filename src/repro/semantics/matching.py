"""Pattern matching (paper Section 4.2).

Two entry points:

* :func:`satisfies` — the satisfaction relation ``(p, G, u) ⊨ π``: does a
  *given* path satisfy a pattern under a *given* assignment?  This is the
  paper's inductive definition, used directly by the Example 4.2–4.5
  reproductions.

* :func:`match_pattern_tuple` — the bag ``match(π̄, G, u)`` of Equation (1):
  all assignments ``u'`` extending ``u`` such that some tuple of paths
  satisfies some rigid pattern in ``rigid(π̄)``.  Crucially this is a *bag
  union over (rigid pattern, path) pairs*: the same binding appears once
  per distinct traversal, which is how Example 4.5 obtains two copies of
  the same record.  Our enumerator walks the graph one relationship at a
  time and emits a result at every admissible stop, which is one-to-one
  with such pairs.

Relationship uniqueness (edge isomorphism) is enforced across the whole
pattern tuple, as the paper requires ("no relationship id occurs in more
than one path in p̄"); morphism modes from Section 8 relax this.
"""

from __future__ import annotations

import itertools

from repro.ast import patterns as pt
from repro.ast.patterns import free_variables
from repro.semantics.morphism import EDGE_ISOMORPHISM, UniquenessKernel
from repro.values.base import NodeId, RelId
from repro.values.comparison import equals
from repro.values.path import Path


# ---------------------------------------------------------------------------
# Shared element checks
# ---------------------------------------------------------------------------

def _node_satisfies(graph, evaluator, base_record, chi, node, bound):
    """The base case of ⊨: name consistency, L ⊆ λ(n), property tests."""
    if chi.name is not None and chi.name in bound:
        if bound[chi.name] != node:
            return False
    node_labels = graph.labels(node)
    for label in chi.labels:
        if label not in node_labels:
            return False
    for key, expression in chi.properties:
        expected = evaluator.evaluate(expression, base_record)
        if equals(graph.property_value(node, key), expected) is not True:
            return False
    return True


def _rel_properties_satisfied(graph, evaluator, base_record, rho, rel):
    for key, expression in rho.properties:
        expected = evaluator.evaluate(expression, base_record)
        if equals(graph.property_value(rel, key), expected) is not True:
            return False
    return True


def _steps_from(graph, rho, node):
    """Candidate (relationship, next node) steps respecting d and T."""
    types = rho.resolved_types  # hoisted: built once per pattern, not per node
    if rho.direction == pt.LEFT_TO_RIGHT:
        for rel in graph.outgoing(node, types):
            yield rel, graph.tgt(rel)
    elif rho.direction == pt.RIGHT_TO_LEFT:
        for rel in graph.incoming(node, types):
            yield rel, graph.src(rel)
    else:
        for rel in graph.touching(node, types):
            yield rel, graph.other_end(rel, node)


def _rel_binding_value(rho, rels):
    """What a named relationship pattern binds to.

    I = nil binds the single relationship (case a''); any ``*`` form binds
    the list of traversed relationships (cases a/a'), possibly empty.
    """
    if rho.length is None:
        return rels[0]
    return list(rels)


# ---------------------------------------------------------------------------
# match(π̄, G, u) — Equation (1)
# ---------------------------------------------------------------------------

class _MatchContext:
    __slots__ = (
        "graph", "evaluator", "base_record", "morphism", "kernel",
        "results", "free",
    )

    def __init__(self, graph, evaluator, base_record, morphism, free):
        self.graph = graph
        self.evaluator = evaluator
        self.base_record = base_record
        self.morphism = morphism
        self.kernel = UniquenessKernel(morphism)
        self.results = []
        self.free = free


def match_pattern_tuple(
    patterns, graph, record, evaluator, morphism=EDGE_ISOMORPHISM
):
    """The bag of assignments ``u'`` with ``dom(u') = free(π̄) − dom(u)``.

    ``patterns`` is a tuple of :class:`~repro.ast.patterns.PathPattern`;
    ``record`` is the driving record u.  Returns a list of dicts (a bag:
    duplicates are meaningful).
    """
    if isinstance(patterns, pt.PathPattern):
        patterns = (patterns,)
    free = free_variables(patterns)
    context = _MatchContext(graph, evaluator, dict(record), morphism, free)
    bound = dict(record)
    used_rels = set()

    def match_from(pattern_index):
        if pattern_index == len(patterns):
            context.results.append(
                {
                    name: bound[name]
                    for name in context.free
                    if name not in record
                }
            )
            return
        pattern = patterns[pattern_index]
        for cleanup in _match_single_path(context, pattern, bound, used_rels):
            match_from(pattern_index + 1)
            cleanup()

    match_from(0)
    return context.results


def _match_single_path(context, pattern, bound, used_rels):
    """Generator yielding once per complete match of one path pattern.

    Each yield delivers a ``cleanup`` callable; ``bound`` and ``used_rels``
    hold the match's bindings until it is invoked (backtracking style).
    """
    graph = context.graph
    elements = pattern.elements
    node_patterns = elements[0::2]
    rel_patterns = elements[1::2]

    first = node_patterns[0]
    if first.name is not None and first.name in bound:
        start_value = bound[first.name]
        candidates = [start_value] if isinstance(start_value, NodeId) else []
        candidates = [
            node for node in candidates if graph.has_node(node)
        ]
    else:
        candidates = graph.nodes()

    def segment(seg_index, current, path_nodes, path_rels):
        """Match segments ρ_i χ_{i+1} onwards, starting at ``current``."""
        if seg_index == len(rel_patterns):
            yield from finish(path_nodes, path_rels)
            return
        rho = rel_patterns[seg_index]
        chi_next = node_patterns[seg_index + 1]
        low, high = rho.resolved_range()
        # One home for the cap/max_length rules: the same kernel the
        # planner's VarLengthExpand consults, so the two paths cannot
        # drift (raises for unbounded homomorphism patterns).
        high = context.kernel.traversal_cap(high)

        def walk(steps_taken, node, seg_rels, seg_nodes):
            if steps_taken >= low and _node_satisfies(
                graph, context.evaluator, context.base_record,
                chi_next, node, bound,
            ):
                yield from stop_here(node, seg_rels, seg_nodes)
            if high is not None and steps_taken >= high:
                return
            for rel, next_node in _steps_from(graph, rho, node):
                if (
                    context.morphism.forbids_repeated_relationships
                    and rel in used_rels
                ):
                    continue
                if not _rel_properties_satisfied(
                    graph, context.evaluator, context.base_record, rho, rel
                ):
                    continue
                if context.morphism.forbids_repeated_nodes and next_node in (
                    set(path_nodes) | set(seg_nodes)
                ):
                    continue
                used_rels.add(rel)
                seg_rels.append(rel)
                seg_nodes.append(next_node)
                yield from walk(steps_taken + 1, next_node, seg_rels, seg_nodes)
                seg_nodes.pop()
                seg_rels.pop()
                used_rels.discard(rel)

        def stop_here(node, seg_rels, seg_nodes):
            # Bind the relationship name, if any, then bind χ_{i+1}'s name,
            # then continue with the next segment.
            undo = []
            if rho.name is not None:
                value = _rel_binding_value(rho, seg_rels)
                if rho.name in bound:
                    existing = bound[rho.name]
                    if not _binding_matches(existing, value):
                        return
                else:
                    bound[rho.name] = value
                    undo.append(rho.name)
            if chi_next.name is not None and chi_next.name not in bound:
                bound[chi_next.name] = node
                undo.append(chi_next.name)
            try:
                yield from segment(
                    seg_index + 1,
                    node,
                    path_nodes + list(seg_nodes),
                    path_rels + list(seg_rels),
                )
            finally:
                for name in undo:
                    del bound[name]

        yield from walk(0, current, [], [])

    def finish(path_nodes, path_rels):
        undo = []
        if pattern.name is not None:
            path_value = Path(tuple(path_nodes), tuple(path_rels))
            if pattern.name in bound:
                if bound[pattern.name] != path_value:
                    return
            else:
                bound[pattern.name] = path_value
                undo.append(pattern.name)

        def cleanup():
            for name in undo:
                del bound[name]

        yield cleanup

    for start in candidates:
        if not _node_satisfies(
            graph, context.evaluator, context.base_record, first, start, bound
        ):
            continue
        undo_start = []
        if first.name is not None and first.name not in bound:
            bound[first.name] = start
            undo_start.append(first.name)
        for cleanup in segment(0, start, [start], []):
            yield cleanup
        for name in undo_start:
            del bound[name]


def _binding_matches(existing, value):
    if isinstance(existing, RelId) or isinstance(value, RelId):
        return existing == value
    if isinstance(existing, list) and isinstance(value, list):
        return existing == value
    return existing == value


# ---------------------------------------------------------------------------
# (p, G, u) ⊨ π — the satisfaction relation, checked directly
# ---------------------------------------------------------------------------

def satisfies(path, graph, assignment, pattern, evaluator=None):
    """Check ``(p, G, u) ⊨ π`` for a concrete path and full assignment.

    Implements the paper's inductive definition, including the
    precondition that all relationships in ``p`` are distinct, and the
    variable-length case via "some rigid pattern subsumed by π fits some
    split of p".
    """
    if evaluator is None:
        from repro.semantics.expressions import Evaluator

        evaluator = Evaluator(graph)
    if not path.has_distinct_relationships():
        return False
    if pattern.name is not None:
        if assignment.get(pattern.name) != path:
            return False
    base = dict(assignment)
    return _satisfies_from(
        graph, evaluator, base, pattern.elements, path, 0, assignment
    )


def _satisfies_from(graph, evaluator, base, elements, path, position, assignment):
    """Does the pattern suffix ``elements`` fit ``path`` from ``position``?"""
    chi = elements[0]
    node = path.nodes[position]
    if not _node_satisfies_assigned(graph, evaluator, base, chi, node, assignment):
        return False
    if len(elements) == 1:
        return position == len(path.relationships)
    rho, rest = elements[1], elements[2:]
    low, high = rho.resolved_range()
    remaining = len(path.relationships) - position
    max_take = remaining if high is None else min(high, remaining)
    for take in range(low, max_take + 1):
        if not _segment_ok(graph, evaluator, base, rho, path, position, take, assignment):
            continue
        if _satisfies_from(
            graph, evaluator, base, rest, path, position + take, assignment
        ):
            return True
    return False


def _node_satisfies_assigned(graph, evaluator, base, chi, node, assignment):
    if chi.name is not None:
        if chi.name not in assignment or assignment[chi.name] != node:
            return False
    node_labels = graph.labels(node)
    for label in chi.labels:
        if label not in node_labels:
            return False
    for key, expression in chi.properties:
        expected = evaluator.evaluate(expression, base)
        if equals(graph.property_value(node, key), expected) is not True:
            return False
    return True


def _segment_ok(graph, evaluator, base, rho, path, position, take, assignment):
    rels = path.relationships[position:position + take]
    # name binding: a'' (single rel) when I = nil, a/a' (list) otherwise
    if rho.name is not None:
        if rho.name not in assignment:
            return False
        bound_value = assignment[rho.name]
        if rho.length is None:
            if take != 1 or bound_value != rels[0]:
                return False
        else:
            if not isinstance(bound_value, list) or list(rels) != bound_value:
                return False
    for offset, rel in enumerate(rels):
        if rho.types and graph.rel_type(rel) not in rho.types:
            return False
        if not _rel_properties_satisfied(graph, evaluator, base, rho, rel):
            return False
        here = path.nodes[position + offset]
        there = path.nodes[position + offset + 1]
        endpoints = (graph.src(rel), graph.tgt(rel))
        if rho.direction == pt.LEFT_TO_RIGHT:
            allowed = {(here, there)}
        elif rho.direction == pt.RIGHT_TO_LEFT:
            allowed = {(there, here)}
        else:
            allowed = {(here, there), (there, here)}
        if endpoints not in allowed:
            return False
    return True


# ---------------------------------------------------------------------------
# rigid(π) — enumerated up to a length bound (it is infinite in general)
# ---------------------------------------------------------------------------

def rigid_extensions(pattern, max_steps):
    """Enumerate the rigid patterns subsumed by ``pattern``.

    Every variable-length relationship pattern ρ with range [m, n] is
    replaced by rigid versions (m', m') for each m' in the range, capped
    at ``max_steps``.  Example 4.4's rigid(π) = {π1, π2, π3, π4} is this
    with max_steps=2.
    """
    choices = []
    for rho in pattern.relationship_patterns:
        low, high = rho.resolved_range()
        top = max_steps if high is None else min(high, max_steps)
        options = []
        for exact in range(low, top + 1):
            if rho.length is None:
                options.append(rho)  # already rigid with I = nil
                break
            options.append(
                pt.RelationshipPattern(
                    direction=rho.direction,
                    name=rho.name,
                    types=rho.types,
                    properties=rho.properties,
                    length=(exact, exact),
                )
            )
        choices.append(options)
    results = []
    for combo in itertools.product(*choices):
        elements = list(pattern.elements)
        for index, rho in enumerate(combo):
            elements[2 * index + 1] = rho
        results.append(pt.PathPattern(tuple(elements), name=pattern.name))
    return results
