"""Compile expression ASTs into slot-indexed Python closures.

The tree-walking :class:`~repro.semantics.expressions.Evaluator` re-visits
every AST node, re-dispatches on node type and re-resolves variable names
for every row.  The planner executes the same expression over thousands
of rows, so :class:`ExpressionCompiler` performs that work once per plan:

* every AST node becomes one nested closure, specialised for its node
  type (dispatch happens at compile time, not per row);
* variables become integer slot reads against the slotted rows of
  :mod:`repro.planner.slots` (see :data:`MISSING`);
* scalar literals are folded, constant arithmetic is pre-evaluated where
  safe, and literal regular expressions are pre-compiled;
* null/ternary semantics are reproduced *exactly* — each closure mirrors
  the corresponding ``Evaluator`` method.

Constructs that bind *inner* variables — list comprehensions,
quantifiers, ``reduce``, pattern comprehensions — compile to *scratch
slots*: the inner name is allocated a slot up front (see
:func:`repro.planner.slots.collect_plan_names`), the compiled closure
writes each candidate value into it, evaluates the compiled body, and
restores the previous value, so shadowing behaves exactly like the tree
walker's nested records.  Pattern comprehensions compile a *native*
single-path enumerator (same emit order and bag as the reference
matcher, structural analysis hoisted to compile time) whose var-length
segments prune through a declared reachability index when the far
endpoint is correlated to an outer binding; pattern predicates and
EXISTS subqueries still enumerate through the reference matcher, but
all three evaluate their WHERE/projection bodies as compiled closures
over scratch slots, so no construct tree-walks per row any more.  An unknown node type still falls back to the Evaluator
over a converted record, preserving expressiveness for future AST
growth.  Aggregate calls are compiled separately by the physical
``Aggregate`` operator; reaching one here raises, exactly as the tree
walker does outside WITH/RETURN.
"""

from __future__ import annotations

import operator
import re

from repro.ast import expressions as ex
from repro.exceptions import (
    CypherError,
    CypherRuntimeError,
    CypherSemanticError,
    CypherTypeError,
    ParameterNotBound,
)
from repro.semantics.expressions import _as_ternary, apply_arithmetic
from repro.values.base import NodeId, RelId
from repro.values.comparison import (
    and3,
    compare,
    equals,
    not3,
    not_equals,
    or3,
    xor3,
)


class _Missing:
    """Sentinel marking an unassigned slot (distinct from Cypher null)."""

    __slots__ = ()

    def __repr__(self):
        return "MISSING"


#: The single unassigned-slot marker shared by slots, compiler, executor.
MISSING = _Missing()

#: Scalar types that are safe to share across rows when constant-folding.
_FOLDABLE_SCALARS = (bool, int, float, str)

#: Native operators for the int-int fast paths in compiled closures.
_NATIVE_INEQUALITIES = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_NATIVE_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


def _constant(value):
    """A closure returning ``value``, tagged so parents can fold it."""

    def const(row):
        return value

    const.constant_value = (value,)  # 1-tuple so None/False survive the tag
    return const


def _constant_of(compiled):
    """The ``(value,)`` tag of a compiled constant, or None."""
    return getattr(compiled, "constant_value", None)


class ExpressionCompiler:
    """Compiles expressions against one slot layout and one evaluator.

    The evaluator supplies the graph, parameters, function registry and
    the fallback path; the slot map supplies variable positions and the
    slot-row → record conversion the fallback needs.

    ``read_only=True`` enables common-subexpression elimination on
    property reads (the :class:`ColumnCompiler` below has always done
    this; the row path is at parity now): every ``n.key`` over a plain
    variable compiles to *one shared closure* per ``(variable, key)``
    pair, and that closure memoises its last ``(subject, result)`` —
    compared by identity, so a predicate and a projection both touching
    ``n.age`` hit the store once per row, not once per occurrence.  The
    memo is only sound when nothing mutates properties mid-statement,
    hence the flag: write plans keep the uncached closure.
    """

    def __init__(self, evaluator, slots, read_only=False):
        self.evaluator = evaluator
        self.slots = slots
        self.graph = evaluator.graph
        self.read_only = read_only
        self._cache = {}
        #: Shared property-read closures, keyed ``(variable, key)``;
        #: only populated under ``read_only``.
        self._property_readers = {}

    # ------------------------------------------------------------------

    def compile(self, expression):
        """A function ``row -> value`` equivalent to ``[[expression]]``."""
        key = id(expression)
        compiled = self._cache.get(key)
        if compiled is None:
            compiled = self._dispatch(expression)
            self._cache[key] = compiled
        return compiled

    def compile_predicate(self, expression):
        """WHERE semantics: ``row -> bool`` (strict ``is True`` test)."""
        compiled = self.compile(expression)

        def predicate(row):
            return compiled(row) is True

        return predicate

    def compile_property_map(self, properties):
        """A ``row -> dict`` closure for a pattern's inline property map.

        Used by the write operators (CREATE/MERGE instantiation): each
        value expression compiles once, and the returned dict feeds the
        store transaction, which validates and drops nulls exactly as
        the tree-walking executor's per-row evaluation did.
        """
        items = tuple(
            (key, self.compile(expression)) for key, expression in properties
        )
        if not items:
            def empty(row):
                return {}

            return empty

        def build(row):
            return {key: compiled(row) for key, compiled in items}

        return build

    # ------------------------------------------------------------------

    def _dispatch(self, expression):
        method = _COMPILERS.get(type(expression))
        if method is None:
            return self._fallback(expression)
        return method(self, expression)

    def _fallback(self, expression):
        """Tree-walk an uncovered construct over a converted record."""
        evaluate = self.evaluator.evaluate
        to_record = self.slots.to_record

        def walk(row):
            return evaluate(expression, to_record(row))

        return walk

    # -- leaves ------------------------------------------------------------

    def _literal(self, node):
        # The tree walker also returns node.value itself, so sharing the
        # object across rows is the established semantics.
        return _constant(node.value)

    def _variable(self, node):
        name = node.name
        slot = self.slots.index_of(name)
        if slot is None:

            def unbound(row):
                raise CypherSemanticError("variable not in scope: %s" % name)

            return unbound

        def var(row):
            value = row[slot]
            if value is MISSING:
                raise CypherSemanticError("variable not in scope: %s" % name)
            return value

        return var

    def _parameter(self, node):
        name = node.name
        parameters = self.evaluator.parameters

        def param(row):
            if name not in parameters:
                raise ParameterNotBound("parameter not bound: $%s" % name)
            return parameters[name]

        return param

    # -- maps, properties --------------------------------------------------

    def _property_access(self, node):
        shareable = self.read_only and isinstance(node.subject, ex.Variable)
        if shareable:
            reader_key = (node.subject.name, node.key)
            shared = self._property_readers.get(reader_key)
            if shared is not None:
                return shared
        prop = self._build_property_access(node, memoise=shareable)
        if shareable:
            self._property_readers[reader_key] = prop
        return prop

    def _build_property_access(self, node, memoise=False):
        subject = self.compile(node.subject)
        key = node.key
        property_value = self.graph.property_value

        def read(value):
            if value is None:
                return None
            if isinstance(value, (NodeId, RelId)):
                return property_value(value, key)
            if isinstance(value, dict):
                return value.get(key)
            component = getattr(value, "cypher_component", None)
            if component is not None:  # temporal values expose .year etc.
                return component(key)
            raise CypherTypeError(
                "cannot access property %r on %r" % (key, value)
            )

        if not memoise:
            def prop(row):
                return read(subject(row))

            return prop

        # Last-value memo: within a read-only statement the same subject
        # object always yields the same property value, and consecutive
        # occurrences in one row share the same NodeId object, so an
        # identity check replaces the second store lookup.
        memo = [MISSING, None]

        def memoised(row):
            value = subject(row)
            if value is memo[0]:
                return memo[1]
            result = read(value)
            memo[0] = value
            memo[1] = result
            return result

        return memoised

    def _map_literal(self, node):
        items = tuple((key, self.compile(value)) for key, value in node.items)

        def build(row):
            return {key: compiled(row) for key, compiled in items}

        return build

    # -- lists -------------------------------------------------------------

    def _list_literal(self, node):
        items = tuple(self.compile(item) for item in node.items)

        def build(row):
            return [compiled(row) for compiled in items]

        return build

    def _list_index(self, node):
        subject = self.compile(node.subject)
        index = self.compile(node.index)
        property_value = self.graph.property_value

        def lookup(row):
            container = subject(row)
            position = index(row)
            if container is None or position is None:
                return None
            if isinstance(container, list):
                if not isinstance(position, int) or isinstance(position, bool):
                    raise CypherTypeError("list index must be an integer")
                if -len(container) <= position < len(container):
                    return container[position]
                return None
            if isinstance(container, dict):
                if not isinstance(position, str):
                    raise CypherTypeError("map lookup key must be a string")
                return container.get(position)
            if isinstance(container, (NodeId, RelId)):
                if not isinstance(position, str):
                    raise CypherTypeError(
                        "property lookup key must be a string"
                    )
                return property_value(container, position)
            raise CypherTypeError("%r is not indexable" % (container,))

        return lookup

    def _list_slice(self, node):
        subject = self.compile(node.subject)
        start = self.compile(node.start) if node.start is not None else None
        end = self.compile(node.end) if node.end is not None else None

        def slice_(row):
            container = subject(row)
            if container is None:
                return None
            if not isinstance(container, list):
                raise CypherTypeError("slicing requires a list")
            low = start(row) if start is not None else 0
            high = end(row) if end is not None else len(container)
            if low is None or high is None:
                return None
            for bound in (low, high):
                if not isinstance(bound, int) or isinstance(bound, bool):
                    raise CypherTypeError("slice bounds must be integers")
            return container[low:high]

        return slice_

    def _in(self, node):
        item = self.compile(node.item)
        container = self.compile(node.container)

        def membership(row):
            needle = item(row)
            haystack = container(row)
            if haystack is None:
                return None
            if not isinstance(haystack, list):
                raise CypherTypeError(
                    "IN requires a list, got %r" % (haystack,)
                )
            saw_unknown = False
            for element in haystack:
                verdict = equals(needle, element)
                if verdict is True:
                    return True
                if verdict is None:
                    saw_unknown = True
            return None if saw_unknown else False

        return membership

    # -- strings -----------------------------------------------------------

    def _string_predicate(self, node):
        left = self.compile(node.left)
        right = self.compile(node.right)
        operator = node.operator

        if operator == "STARTS WITH":
            def starts(row):
                l, r = left(row), right(row)
                if not isinstance(l, str) or not isinstance(r, str):
                    return None
                return l.startswith(r)

            return starts
        if operator == "ENDS WITH":
            def ends(row):
                l, r = left(row), right(row)
                if not isinstance(l, str) or not isinstance(r, str):
                    return None
                return l.endswith(r)

            return ends

        def contains(row):
            l, r = left(row), right(row)
            if not isinstance(l, str) or not isinstance(r, str):
                return None
            return r in l

        return contains

    def _regex(self, node):
        subject = self.compile(node.subject)
        pattern = self.compile(node.pattern)
        folded = _constant_of(pattern)
        if folded is not None and isinstance(folded[0], str):
            try:
                matcher = re.compile(folded[0]).fullmatch
            except re.error:
                matcher = None  # invalid pattern: error at row time, as before
            if matcher is not None:

                def match_compiled(row):
                    value = subject(row)
                    if not isinstance(value, str):
                        return None
                    return matcher(value) is not None

                return match_compiled

        def match(row):
            value = subject(row)
            expr = pattern(row)
            if not isinstance(value, str) or not isinstance(expr, str):
                return None
            return re.fullmatch(expr, value) is not None

        return match

    # -- logic -------------------------------------------------------------

    def _binary_logic(self, node):
        left = self.compile(node.left)
        right = self.compile(node.right)
        operator = node.operator

        if operator == "AND":
            def conjunction(row):
                l = _as_ternary(left(row))
                if l is False:
                    return False
                return and3(l, _as_ternary(right(row)))

            return conjunction
        if operator == "OR":
            def disjunction(row):
                l = _as_ternary(left(row))
                if l is True:
                    return True
                return or3(l, _as_ternary(right(row)))

            return disjunction

        def exclusive(row):
            return xor3(_as_ternary(left(row)), _as_ternary(right(row)))

        return exclusive

    def _not(self, node):
        operand = self.compile(node.operand)

        def negation(row):
            return not3(_as_ternary(operand(row)))

        return negation

    def _is_null(self, node):
        operand = self.compile(node.operand)

        def test(row):
            return operand(row) is None

        return test

    def _is_not_null(self, node):
        operand = self.compile(node.operand)

        def test(row):
            return operand(row) is not None

        return test

    # -- comparisons -------------------------------------------------------

    def _comparison(self, node):
        operands = tuple(self.compile(operand) for operand in node.operands)
        operators = node.operators
        if len(operands) == 2:
            left, right = operands
            operator = operators[0]
            if operator == "=":
                return lambda row: equals(left(row), right(row))
            if operator == "<>":
                return lambda row: not_equals(left(row), right(row))
            # Int-int is the overwhelmingly common case on graph data;
            # Python's own comparison agrees with compare() there, so
            # skip the generic ordering machinery for it.
            native = _NATIVE_INEQUALITIES[operator]

            def inequality(row):
                l = left(row)
                r = right(row)
                if type(l) is int and type(r) is int:
                    return native(l, r)
                return _ordering_verdict(operator, l, r)

            return inequality

        def chain(row):
            values = [operand(row) for operand in operands]
            verdict = True
            for operator, l, r in zip(operators, values, values[1:]):
                verdict = and3(verdict, _compare_once(operator, l, r))
                if verdict is False:
                    return False
            return verdict

        return chain

    # -- arithmetic --------------------------------------------------------

    def _arithmetic(self, node):
        left = self.compile(node.left)
        right = self.compile(node.right)
        operator = node.operator
        left_const = _constant_of(left)
        right_const = _constant_of(right)
        if left_const is not None and right_const is not None:
            try:
                value = apply_arithmetic(
                    operator, left_const[0], right_const[0]
                )
            except CypherError:
                pass  # e.g. 1 / 0: must raise per evaluated row, not here
            else:
                if value is None or isinstance(value, _FOLDABLE_SCALARS):
                    return _constant(value)

        if operator in ("+", "-", "*"):
            # Same fast path as comparisons: int-int never overflows or
            # divides, so the native operator is exact; everything else
            # keeps the full Cypher numeric/temporal/list semantics.
            native = _NATIVE_ARITHMETIC[operator]

            def arithmetic_fast(row):
                l = left(row)
                r = right(row)
                if type(l) is int and type(r) is int:
                    return native(l, r)
                return apply_arithmetic(operator, l, r)

            return arithmetic_fast

        if operator == "%":
            # Cypher's % follows the dividend's sign (Java-style), which
            # coincides with Python's % exactly when both operands are
            # non-negative ints (and the divisor nonzero) — the common
            # bucketing shape `i % k`.
            def modulo_fast(row):
                l = left(row)
                r = right(row)
                if type(l) is int and type(r) is int and l >= 0 and r > 0:
                    return l % r
                return apply_arithmetic(operator, l, r)

            return modulo_fast

        if operator == "/":
            # Cypher integer division truncates toward zero; Python's //
            # floors — they agree on non-negative int operands.
            def divide_fast(row):
                l = left(row)
                r = right(row)
                if type(l) is int and type(r) is int and l >= 0 and r > 0:
                    return l // r
                return apply_arithmetic(operator, l, r)

            return divide_fast

        def arithmetic(row):
            return apply_arithmetic(operator, left(row), right(row))

        return arithmetic

    def _unary_minus(self, node):
        operand = self.compile(node.operand)

        def negate(row):
            value = operand(row)
            if value is None:
                return None
            if isinstance(value, bool):
                raise CypherTypeError("cannot negate %r" % (value,))
            if isinstance(value, (int, float)):
                return -value
            if hasattr(value, "cypher_negate"):
                return value.cypher_negate()
            raise CypherTypeError("cannot negate %r" % (value,))

        return negate

    def _unary_plus(self, node):
        operand = self.compile(node.operand)

        def plus(row):
            value = operand(row)
            if value is None:
                return value
            if not isinstance(value, bool) and isinstance(value, (int, float)):
                return value
            raise CypherTypeError("unary + expects a number")

        return plus

    # -- functions ---------------------------------------------------------

    def _function_call(self, node):
        if node.name in ex.AGGREGATE_FUNCTION_NAMES:
            name = node.name

            def misplaced(row):
                raise CypherSemanticError(
                    "aggregate %s() is only allowed in WITH/RETURN" % name
                )

            return misplaced
        args = tuple(self.compile(argument) for argument in node.args)
        call = self.evaluator.functions.call
        context = self.evaluator.function_context
        name = node.name

        def invoke(row):
            return call(name, context, [argument(row) for argument in args])

        return invoke

    def _count_star(self, node):
        def misplaced(row):
            raise CypherSemanticError("count(*) is only allowed in WITH/RETURN")

        return misplaced

    # -- labels ------------------------------------------------------------

    def _label_predicate(self, node):
        subject = self.compile(node.subject)
        labels = tuple(node.labels)
        graph_labels = self.graph.labels

        def test(row):
            value = subject(row)
            if value is None:
                return None
            if not isinstance(value, NodeId):
                raise CypherTypeError("label predicate expects a node")
            node_labels = graph_labels(value)
            for label in labels:
                if label not in node_labels:
                    return False
            return True

        return test

    # -- CASE --------------------------------------------------------------

    def _case(self, node):
        alternatives = tuple(
            (self.compile(when), self.compile(then))
            for when, then in node.alternatives
        )
        default = (
            self.compile(node.default) if node.default is not None else None
        )
        if node.operand is not None:
            operand = self.compile(node.operand)

            def simple_case(row):
                subject = operand(row)
                for when, then in alternatives:
                    if equals(subject, when(row)) is True:
                        return then(row)
                return default(row) if default is not None else None

            return simple_case

        def searched_case(row):
            for when, then in alternatives:
                if when(row) is True:
                    return then(row)
            return default(row) if default is not None else None

        return searched_case


    # -- comprehensions and quantifiers (scratch slots) ----------------------

    def _list_comprehension(self, node):
        source = self.compile(node.source)
        slot = self.slots.add(node.variable)
        where = (
            self.compile_predicate(node.where)
            if node.where is not None
            else None
        )
        projection = (
            self.compile(node.projection)
            if node.projection is not None
            else None
        )

        def comprehend(row):
            values = source(row)
            if values is None:
                return None
            if not isinstance(values, list):
                raise CypherTypeError("comprehension source must be a list")
            result = []
            append = result.append
            saved = row[slot]
            try:
                for element in values:
                    row[slot] = element
                    if where is not None and not where(row):
                        continue
                    append(
                        projection(row) if projection is not None else element
                    )
            finally:
                row[slot] = saved
            return result

        return comprehend

    def _quantified(self, node):
        source = self.compile(node.source)
        slot = self.slots.add(node.variable)
        predicate = self.compile(node.predicate)
        quantifier = node.quantifier

        def quantify(row):
            values = source(row)
            if values is None:
                return None
            if not isinstance(values, list):
                raise CypherTypeError("quantifier source must be a list")
            trues = falses = unknowns = 0
            saved = row[slot]
            try:
                for element in values:
                    row[slot] = element
                    verdict = _as_ternary(predicate(row))
                    if verdict is True:
                        trues += 1
                    elif verdict is False:
                        falses += 1
                    else:
                        unknowns += 1
            finally:
                row[slot] = saved
            if quantifier == "all":
                if falses:
                    return False
                return None if unknowns else True
            if quantifier == "any":
                if trues:
                    return True
                return None if unknowns else False
            if quantifier == "none":
                if trues:
                    return False
                return None if unknowns else True
            # single
            if trues > 1:
                return False
            if unknowns:
                return None
            return trues == 1

        return quantify

    def _reduce(self, node):
        source = self.compile(node.source)
        init = self.compile(node.init)
        accumulator_slot = self.slots.add(node.accumulator)
        variable_slot = self.slots.add(node.variable)
        body = self.compile(node.expression)

        def fold(row):
            values = source(row)
            if values is None:
                return None
            if not isinstance(values, list):
                raise CypherTypeError("reduce() source must be a list")
            accumulator = init(row)
            saved_accumulator = row[accumulator_slot]
            saved_variable = row[variable_slot]
            try:
                for element in values:
                    row[accumulator_slot] = accumulator
                    row[variable_slot] = element
                    accumulator = body(row)
            finally:
                row[accumulator_slot] = saved_accumulator
                row[variable_slot] = saved_variable
            return accumulator

        return fold

    # -- patterns in expressions (matcher + compiled bodies) -----------------

    def _pattern_binder(self, pattern_tuple):
        """Shared machinery for pattern-shaped expressions.

        Returns ``(match, names, slots)``: a ``row -> bag of bindings``
        closure over the reference matcher, plus the pattern's free
        variables and their scratch slots.  Names already bound in the
        row constrain the match (the matcher sees them through the
        record); the rest come back as fresh bindings to install.
        """
        from repro.ast.patterns import free_variables
        from repro.semantics.matching import match_pattern_tuple

        names = tuple(free_variables(pattern_tuple))
        slots = tuple(self.slots.add(name) for name in names)
        evaluator = self.evaluator
        graph = self.graph
        morphism = evaluator.morphism
        to_record = self.slots.to_record

        def match(row):
            return match_pattern_tuple(
                pattern_tuple, graph, to_record(row), evaluator, morphism
            )

        return match, names, slots

    def _pattern_predicate(self, node):
        match, _names, _slots = self._pattern_binder((node.pattern,))

        def test(row):
            return bool(match(row))

        return test

    def _exists_subquery(self, node):
        match, names, slots = self._pattern_binder(tuple(node.pattern))
        if node.where is None:

            def exists(row):
                return bool(match(row))

            return exists
        where = self.compile_predicate(node.where)

        def exists_filtered(row):
            matches = match(row)
            if not matches:
                return False
            saved = [row[slot] for slot in slots]
            try:
                for bindings in matches:
                    for name, slot in zip(names, slots):
                        if name in bindings:
                            row[slot] = bindings[name]
                    if where(row):
                        return True
            finally:
                for slot, value in zip(slots, saved):
                    row[slot] = value
            return False

        return exists_filtered

    def _compile_path_enumerator(self, pattern):
        """Native single-path enumerator for pattern comprehensions.

        Mirrors the reference matcher's emit-at-every-admissible-stop
        DFS (:func:`repro.semantics.matching.match_pattern_tuple`) for
        one path pattern — same candidate order, same bag — but drives
        the graph directly: the structural work (segment splitting,
        range resolution, uniqueness policy) happens once at compile
        time, and a var-length segment whose far endpoint is already
        bound can be pruned through a declared reachability index.  A
        subtree that cannot reach the bound endpoint can never satisfy
        the stop condition, hence never emits, so skipping it preserves
        both the bag and its order.
        """
        from repro.ast import patterns as pt
        from repro.ast.patterns import free_variables
        from repro.semantics.matching import (
            _binding_matches,
            _node_satisfies,
            _rel_binding_value,
            _rel_properties_satisfied,
            _steps_from,
        )
        from repro.semantics.morphism import UniquenessKernel
        from repro.values.path import Path

        graph = self.graph
        evaluator = self.evaluator
        morphism = evaluator.morphism
        kernel = UniquenessKernel(morphism)
        to_record = self.slots.to_record
        free = tuple(free_variables((pattern,)))
        elements = pattern.elements
        node_patterns = elements[0::2]
        rel_patterns = elements[1::2]
        segments = tuple(
            (rho, node_patterns[position + 1]) + rho.resolved_range()
            for position, rho in enumerate(rel_patterns)
        )
        first = node_patterns[0]
        probe_getter = getattr(graph, "reachability_index_for", None)
        forbids_rels = morphism.forbids_repeated_relationships
        forbids_nodes = morphism.forbids_repeated_nodes

        def enumerate_bindings(row):
            base_record = to_record(row)
            bound = dict(base_record)
            used_rels = set()
            results = []

            def segment(seg_index, current, path_nodes, path_rels):
                if seg_index == len(segments):
                    finish(path_nodes, path_rels)
                    return
                rho, chi_next, low, high = segments[seg_index]
                # Same kernel the planner's VarLengthExpand consults,
                # resolved at the same moment the matcher would.
                high = kernel.traversal_cap(high)
                prune = None
                if (
                    high is None
                    and rho.length is not None
                    and rho.direction != pt.UNDIRECTED
                    and probe_getter is not None
                    and chi_next.name is not None
                ):
                    target = bound.get(chi_next.name)
                    if isinstance(target, NodeId):
                        index = probe_getter(rho.resolved_types)
                        if index is not None:
                            reachable = index.reachable
                            if rho.direction == pt.LEFT_TO_RIGHT:
                                prune = lambda node: reachable(node, target)
                            else:
                                prune = lambda node: reachable(target, node)

                def walk(steps_taken, node, seg_rels, seg_nodes):
                    if steps_taken >= low and _node_satisfies(
                        graph, evaluator, base_record, chi_next, node, bound
                    ):
                        stop_here(node, seg_rels, seg_nodes)
                    if high is not None and steps_taken >= high:
                        return
                    for rel, next_node in _steps_from(graph, rho, node):
                        if forbids_rels and rel in used_rels:
                            continue
                        if not _rel_properties_satisfied(
                            graph, evaluator, base_record, rho, rel
                        ):
                            continue
                        if forbids_nodes and (
                            next_node in path_nodes
                            or next_node in seg_nodes
                        ):
                            continue
                        if prune is not None and not prune(next_node):
                            continue
                        used_rels.add(rel)
                        seg_rels.append(rel)
                        seg_nodes.append(next_node)
                        walk(steps_taken + 1, next_node, seg_rels, seg_nodes)
                        seg_nodes.pop()
                        seg_rels.pop()
                        used_rels.discard(rel)

                def stop_here(node, seg_rels, seg_nodes):
                    undo = []
                    if rho.name is not None:
                        value = _rel_binding_value(rho, seg_rels)
                        if rho.name in bound:
                            if not _binding_matches(bound[rho.name], value):
                                return
                        else:
                            bound[rho.name] = value
                            undo.append(rho.name)
                    if (
                        chi_next.name is not None
                        and chi_next.name not in bound
                    ):
                        bound[chi_next.name] = node
                        undo.append(chi_next.name)
                    try:
                        segment(
                            seg_index + 1,
                            node,
                            path_nodes + seg_nodes,
                            path_rels + seg_rels,
                        )
                    finally:
                        for name in undo:
                            del bound[name]

                if prune is not None and not prune(current):
                    return
                walk(0, current, [], [])

            def finish(path_nodes, path_rels):
                undo = []
                if pattern.name is not None:
                    path_value = Path(tuple(path_nodes), tuple(path_rels))
                    if pattern.name in bound:
                        if bound[pattern.name] != path_value:
                            return
                    else:
                        bound[pattern.name] = path_value
                        undo.append(pattern.name)
                results.append(
                    {
                        name: bound[name]
                        for name in free
                        if name not in base_record
                    }
                )
                for name in undo:
                    del bound[name]

            if first.name is not None and first.name in bound:
                start_value = bound[first.name]
                candidates = (
                    [start_value]
                    if isinstance(start_value, NodeId)
                    and graph.has_node(start_value)
                    else []
                )
            else:
                candidates = graph.nodes()
            for start in candidates:
                if not _node_satisfies(
                    graph, evaluator, base_record, first, start, bound
                ):
                    continue
                install = first.name is not None and first.name not in bound
                if install:
                    bound[first.name] = start
                segment(0, start, [start], [])
                if install:
                    del bound[first.name]
            return results

        return enumerate_bindings

    def _pattern_comprehension(self, node):
        from repro.ast.patterns import free_variables

        match = self._compile_path_enumerator(node.pattern)
        names = tuple(free_variables((node.pattern,)))
        slots = tuple(self.slots.add(name) for name in names)
        where = (
            self.compile_predicate(node.where)
            if node.where is not None
            else None
        )
        projection = self.compile(node.projection)

        def comprehend(row):
            matches = match(row)
            result = []
            if not matches:
                return result
            append = result.append
            saved = [row[slot] for slot in slots]
            try:
                for bindings in matches:
                    # dom(u') is the same for every match, so stale
                    # values from the previous iteration never leak.
                    for name, slot in zip(names, slots):
                        if name in bindings:
                            row[slot] = bindings[name]
                    if where is not None and not where(row):
                        continue
                    append(projection(row))
            finally:
                for slot, value in zip(slots, saved):
                    row[slot] = value
            return result

        return comprehend


def select_columns(cols, indices):
    """A new column array restricted to ``indices`` (in that order).

    The one column-selection kernel shared by the batch operators
    (:mod:`repro.planner.batch`) and the masked AND/OR evaluation below:
    unbound (``None``) columns stay unbound, bound columns are gathered
    into fresh lists.
    """
    return [
        None if col is None else [col[index] for index in indices]
        for col in cols
    ]


class ColumnCompiler:
    """Compile expressions to *column* closures over morsel batches.

    The batch engine (:mod:`repro.planner.batch`) processes morsels of N
    rows as slot columns — one flat Python list per slot.  A compiled
    column closure has the signature ``(n, cols) -> list`` where ``cols``
    is the batch's column array (``cols[slot]`` is a list of length ``n``,
    or ``None`` when the slot is unbound for the whole batch) and the
    result is a fresh list of N values.  The per-row dispatch that the
    row compiler already eliminated per *plan* is eliminated per *morsel*
    here: one closure call evaluates a whole column, with tight loops for
    the hot shapes —

    * variables return their column by reference (zero copies);
    * property access tries the store's bulk ``node_property_column``
      first and only drops to the per-element mixed-type loop when the
      column is not purely nodes;
    * repeated ``variable.key`` reads are *memoised*: all occurrences of
      e.g. ``n.v`` across one compilation share a single closure
      (structural key, not AST identity), and that closure caches its
      last ``(cols, n) -> column`` result — so a filter and a projection
      over the same morsel, or ``n.v + n.v`` inside one expression, hit
      the store once per morsel instead of once per occurrence (the
      ROADMAP's first cut of common-subexpression elimination).  Sound
      because column arrays are never mutated in place and the graph
      cannot change during a read execution;
    * arithmetic and comparisons run int fast-path loops, specialised
      when one operand is a constant (``n.v > 5`` is one list pass);
    * AND/OR short-circuit *by column*: the right operand is evaluated
      only on the sub-batch the left side did not decide, which keeps
      the row path's "never evaluates the pruned side" error semantics.

    Everything else — comprehensions, CASE, pattern predicates, any
    future node type — reuses the row compiler's closure element-wise
    over a scratch row materialised from the bound columns; scratch
    slots (comprehension variables and friends) live in that scratch row
    and are reused across the whole column, so the inner-loop shadowing
    semantics are exactly the row path's.
    """

    def __init__(self, row_compiler):
        self.rows = row_compiler
        self.slots = row_compiler.slots
        self.graph = row_compiler.graph
        self.evaluator = row_compiler.evaluator
        self._cache = {}
        #: Structural closure cache for ``variable.key`` property reads:
        #: distinct AST nodes spelling the same read share one closure
        #: (and therefore one per-morsel value memo).
        self._property_readers = {}

    # ------------------------------------------------------------------

    def compile(self, expression):
        """A closure ``(n, cols) -> list`` equivalent to ``[[expression]]``."""
        key = id(expression)
        compiled = self._cache.get(key)
        if compiled is None:
            method = _COLUMN_COMPILERS.get(type(expression))
            if method is None:
                compiled = self._elementwise(expression)
            else:
                compiled = method(self, expression)
            self._cache[key] = compiled
        return compiled

    def compile_selection(self, expression):
        """WHERE semantics as a selection: row indices where strictly true."""
        compiled = self.compile(expression)

        def selection(n, cols):
            return [
                index
                for index, verdict in enumerate(compiled(n, cols))
                if verdict is True
            ]

        return selection

    # ------------------------------------------------------------------

    def _elementwise(self, expression):
        """Apply the row-compiled closure per element of the batch.

        The scratch row is rebuilt from the bound columns per row and
        reused across the column — comprehension/quantifier closures
        save and restore their scratch slots themselves, so reuse is
        safe and keeps allocations per morsel, not per row.
        """
        row_fn = self.rows.compile(expression)
        width = len(self.slots)

        def column(n, cols):
            bound = [
                (slot, col) for slot, col in enumerate(cols) if col is not None
            ]
            row = [MISSING] * width
            out = []
            append = out.append
            for index in range(n):
                for slot, col in bound:
                    row[slot] = col[index]
                append(row_fn(row))
            return out

        return column

    # -- leaves ------------------------------------------------------------

    def _literal(self, node):
        value = node.value

        def const_column(n, cols):
            return [value] * n

        const_column.constant_value = (value,)
        return const_column

    def _parameter(self, node):
        row_fn = self.rows.compile(node)
        empty = []

        def param_column(n, cols):
            if n == 0:
                return empty
            return [row_fn(empty)] * n

        return param_column

    def _variable(self, node):
        name = node.name
        slot = self.slots.index_of(name)

        def var_column(n, cols):
            col = cols[slot] if slot is not None else None
            if col is None:
                if n == 0:
                    return []
                raise CypherSemanticError("variable not in scope: %s" % name)
            return col

        return var_column

    # -- properties ---------------------------------------------------------

    def _property_access(self, node):
        if isinstance(node.subject, ex.Variable):
            # Structural sharing: every `n.key` in this compilation maps
            # to one memoising closure, whatever AST node spelt it.
            reader_key = (node.subject.name, node.key)
            reader = self._property_readers.get(reader_key)
            if reader is None:
                reader = self._build_property_access(node, memoise=True)
                self._property_readers[reader_key] = reader
            return reader
        return self._build_property_access(node, memoise=False)

    def _build_property_access(self, node, memoise):
        subject = self.compile(node.subject)
        key = node.key
        bulk = getattr(self.graph, "node_property_column", None)
        property_value = self.graph.property_value

        def element(value):
            if value is None:
                return None
            if isinstance(value, (NodeId, RelId)):
                return property_value(value, key)
            if isinstance(value, dict):
                return value.get(key)
            component = getattr(value, "cypher_component", None)
            if component is not None:
                return component(key)
            raise CypherTypeError(
                "cannot access property %r on %r" % (key, value)
            )

        def prop_column(n, cols):
            values = subject(n, cols)
            if bulk is not None:
                try:
                    return bulk(values, key)
                except (KeyError, TypeError):
                    pass  # not a pure node column: mixed-type loop below
            return [element(value) for value in values]

        if not memoise:
            return prop_column

        # Per-morsel value memo: column arrays are immutable once
        # yielded and reads cannot observe writes mid-execution, so the
        # (cols identity, n) pair fully determines the result.  Holding
        # the cols reference keeps the identity from being recycled.
        memo = [None, -1, None]  # [cols, n, column]

        def memoised_column(n, cols):
            if cols is memo[0] and n == memo[1]:
                return memo[2]
            column = prop_column(n, cols)
            memo[0] = cols
            memo[1] = n
            memo[2] = column
            return column

        return memoised_column

    # -- arithmetic and comparisons -----------------------------------------

    def _arithmetic(self, node):
        row_fn = self.rows.compile(node)
        folded = _constant_of(row_fn)
        if folded is not None:
            value = folded[0]

            def const_column(n, cols):
                return [value] * n

            const_column.constant_value = folded
            return const_column
        left = self.compile(node.left)
        right = self.compile(node.right)
        operator_name = node.operator
        native = _NATIVE_ARITHMETIC.get(operator_name)
        if native is None:
            # %, / and ^ keep their sign/zero subtleties: reuse the row
            # closure's fast paths element-wise over operand columns.
            def general_column(n, cols):
                return [
                    apply_arithmetic(operator_name, l, r)
                    for l, r in zip(left(n, cols), right(n, cols))
                ]

            return general_column
        right_const = _constant_of(right)
        if right_const is not None and type(right_const[0]) is int:
            rv = right_const[0]

            def const_right(n, cols):
                return [
                    native(l, rv)
                    if type(l) is int
                    else apply_arithmetic(operator_name, l, rv)
                    for l in left(n, cols)
                ]

            return const_right

        def arithmetic_column(n, cols):
            return [
                native(l, r)
                if type(l) is int and type(r) is int
                else apply_arithmetic(operator_name, l, r)
                for l, r in zip(left(n, cols), right(n, cols))
            ]

        return arithmetic_column

    def _comparison(self, node):
        if len(node.operands) != 2:
            return self._elementwise(node)
        left = self.compile(node.operands[0])
        right = self.compile(node.operands[1])
        operator_name = node.operators[0]
        if operator_name == "=":

            def eq_column(n, cols):
                return [
                    equals(l, r) for l, r in zip(left(n, cols), right(n, cols))
                ]

            return eq_column
        if operator_name == "<>":

            def ne_column(n, cols):
                return [
                    not_equals(l, r)
                    for l, r in zip(left(n, cols), right(n, cols))
                ]

            return ne_column
        native = _NATIVE_INEQUALITIES[operator_name]
        right_const = _constant_of(right)
        if right_const is not None and type(right_const[0]) is int:
            rv = right_const[0]

            def const_right(n, cols):
                return [
                    native(l, rv)
                    if type(l) is int
                    else _ordering_verdict(operator_name, l, rv)
                    for l in left(n, cols)
                ]

            return const_right

        def inequality_column(n, cols):
            return [
                native(l, r)
                if type(l) is int and type(r) is int
                else _ordering_verdict(operator_name, l, r)
                for l, r in zip(left(n, cols), right(n, cols))
            ]

        return inequality_column

    # -- logic --------------------------------------------------------------

    def _binary_logic(self, node):
        left = self.compile(node.left)
        right = self.compile(node.right)
        operator_name = node.operator
        if operator_name == "XOR":

            def xor_column(n, cols):
                return [
                    xor3(_as_ternary(l), _as_ternary(r))
                    for l, r in zip(left(n, cols), right(n, cols))
                ]

            return xor_column
        deciding = False if operator_name == "AND" else True
        combine = and3 if operator_name == "AND" else or3
        sub_batch = select_columns

        def logic_column(n, cols):
            out = [_as_ternary(value) for value in left(n, cols)]
            undecided = [
                index for index, value in enumerate(out) if value is not deciding
            ]
            if undecided:
                if len(undecided) == n:
                    right_values = right(n, cols)
                else:
                    right_values = right(
                        len(undecided), sub_batch(cols, undecided)
                    )
                for position, index in enumerate(undecided):
                    out[index] = combine(
                        out[index], _as_ternary(right_values[position])
                    )
            return out

        return logic_column

    def _not(self, node):
        operand = self.compile(node.operand)

        def not_column(n, cols):
            return [not3(_as_ternary(value)) for value in operand(n, cols)]

        return not_column

    def _is_null(self, node):
        operand = self.compile(node.operand)

        def null_column(n, cols):
            return [value is None for value in operand(n, cols)]

        return null_column

    def _is_not_null(self, node):
        operand = self.compile(node.operand)

        def not_null_column(n, cols):
            return [value is not None for value in operand(n, cols)]

        return not_null_column

    # -- labels, functions ---------------------------------------------------

    def _label_predicate(self, node):
        subject = self.compile(node.subject)
        labels = tuple(node.labels)
        graph_labels = self.graph.labels

        def label_column(n, cols):
            out = []
            append = out.append
            for value in subject(n, cols):
                if value is None:
                    append(None)
                    continue
                if not isinstance(value, NodeId):
                    raise CypherTypeError("label predicate expects a node")
                node_labels = graph_labels(value)
                append(all(label in node_labels for label in labels))
            return out

        return label_column

    def _function_call(self, node):
        if node.name in ex.AGGREGATE_FUNCTION_NAMES:
            return self._elementwise(node)  # same misplaced-aggregate error
        args = tuple(self.compile(argument) for argument in node.args)
        call = self.evaluator.functions.call
        context = self.evaluator.function_context
        name = node.name

        def invoke_column(n, cols):
            columns = [argument(n, cols) for argument in args]
            return [
                call(name, context, [column[index] for column in columns])
                for index in range(n)
            ]

        return invoke_column


_COLUMN_COMPILERS = {
    ex.Literal: ColumnCompiler._literal,
    ex.Parameter: ColumnCompiler._parameter,
    ex.Variable: ColumnCompiler._variable,
    ex.PropertyAccess: ColumnCompiler._property_access,
    ex.Arithmetic: ColumnCompiler._arithmetic,
    ex.Comparison: ColumnCompiler._comparison,
    ex.BinaryLogic: ColumnCompiler._binary_logic,
    ex.Not: ColumnCompiler._not,
    ex.IsNull: ColumnCompiler._is_null,
    ex.IsNotNull: ColumnCompiler._is_not_null,
    ex.LabelPredicate: ColumnCompiler._label_predicate,
    ex.FunctionCall: ColumnCompiler._function_call,
}


def _compare_once(operator, left, right):
    if operator == "=":
        return equals(left, right)
    if operator == "<>":
        return not_equals(left, right)
    return _ordering_verdict(operator, left, right)


def _ordering_verdict(operator, left, right):
    verdict = compare(left, right)
    if verdict is None:
        return None
    if operator == "<":
        return verdict < 0
    if operator == "<=":
        return verdict <= 0
    if operator == ">":
        return verdict > 0
    return verdict >= 0  # ">="


_COMPILERS = {
    ex.Literal: ExpressionCompiler._literal,
    ex.Variable: ExpressionCompiler._variable,
    ex.Parameter: ExpressionCompiler._parameter,
    ex.PropertyAccess: ExpressionCompiler._property_access,
    ex.MapLiteral: ExpressionCompiler._map_literal,
    ex.ListLiteral: ExpressionCompiler._list_literal,
    ex.ListIndex: ExpressionCompiler._list_index,
    ex.ListSlice: ExpressionCompiler._list_slice,
    ex.In: ExpressionCompiler._in,
    ex.StringPredicate: ExpressionCompiler._string_predicate,
    ex.RegexMatch: ExpressionCompiler._regex,
    ex.BinaryLogic: ExpressionCompiler._binary_logic,
    ex.Not: ExpressionCompiler._not,
    ex.IsNull: ExpressionCompiler._is_null,
    ex.IsNotNull: ExpressionCompiler._is_not_null,
    ex.Comparison: ExpressionCompiler._comparison,
    ex.Arithmetic: ExpressionCompiler._arithmetic,
    ex.UnaryMinus: ExpressionCompiler._unary_minus,
    ex.UnaryPlus: ExpressionCompiler._unary_plus,
    ex.FunctionCall: ExpressionCompiler._function_call,
    ex.CountStar: ExpressionCompiler._count_star,
    ex.LabelPredicate: ExpressionCompiler._label_predicate,
    ex.CaseExpression: ExpressionCompiler._case,
    ex.ListComprehension: ExpressionCompiler._list_comprehension,
    ex.QuantifiedPredicate: ExpressionCompiler._quantified,
    ex.Reduce: ExpressionCompiler._reduce,
    ex.PatternPredicate: ExpressionCompiler._pattern_predicate,
    ex.ExistsSubquery: ExpressionCompiler._exists_subquery,
    ex.PatternComprehension: ExpressionCompiler._pattern_comprehension,
}
