"""Scalar and entity functions: id, labels, type, properties, size, ...

The paper's example queries use ``labels(pInfo)`` and ``collect`` /
``count`` (aggregates live elsewhere); the rest is the standard Cypher 9
scalar kit.
"""

from __future__ import annotations

from repro.exceptions import CypherTypeError
from repro.values.base import NodeId, RelId
from repro.values.path import Path


def install(registry):
    registry.register("id", _id, 1, 1)
    registry.register("labels", _labels, 1, 1)
    registry.register("type", _type, 1, 1)
    registry.register("properties", _properties, 1, 1)
    registry.register("keys", _keys, 1, 1)
    registry.register("exists", _exists, 1, 1)
    registry.register("coalesce", _coalesce, 1, None)
    registry.register("size", _size, 1, 1)
    registry.register("length", _length, 1, 1)
    registry.register("head", _head, 1, 1)
    registry.register("last", _last, 1, 1)
    registry.register("tail", _tail, 1, 1)
    registry.register("startNode", _start_node, 1, 1)
    registry.register("endNode", _end_node, 1, 1)
    registry.register("nodes", _nodes, 1, 1)
    registry.register("relationships", _relationships, 1, 1)
    registry.register("toString", _to_string, 1, 1)
    registry.register("toInteger", _to_integer, 1, 1)
    registry.register("toFloat", _to_float, 1, 1)
    registry.register("toBoolean", _to_boolean, 1, 1)


def _id(context, value):
    if value is None:
        return None
    if isinstance(value, (NodeId, RelId)):
        return value.value
    raise CypherTypeError("id() expects a node or relationship")


def _labels(context, value):
    if value is None:
        return None
    if isinstance(value, NodeId):
        return sorted(context.graph.labels(value))
    raise CypherTypeError("labels() expects a node")


def _type(context, value):
    if value is None:
        return None
    if isinstance(value, RelId):
        return context.graph.rel_type(value)
    raise CypherTypeError("type() expects a relationship")


def _properties(context, value):
    if value is None:
        return None
    if isinstance(value, (NodeId, RelId)):
        return context.graph.properties(value)
    if isinstance(value, dict):
        return dict(value)
    raise CypherTypeError("properties() expects an entity or map")


def _keys(context, value):
    if value is None:
        return None
    if isinstance(value, (NodeId, RelId)):
        return sorted(context.graph.properties(value).keys())
    if isinstance(value, dict):
        return sorted(value.keys())
    raise CypherTypeError("keys() expects an entity or map")


def _exists(context, value):
    """exists(n.prop) — true iff the property evaluated to non-null."""
    return value is not None


def _coalesce(context, *values):
    for value in values:
        if value is not None:
            return value
    return None


def _size(context, value):
    if value is None:
        return None
    if isinstance(value, (list, str)):
        return len(value)
    if isinstance(value, dict):
        return len(value)
    raise CypherTypeError("size() expects a list, string or map")


def _length(context, value):
    """length(p) is the number of relationships in the path."""
    if value is None:
        return None
    if isinstance(value, Path):
        return len(value)
    if isinstance(value, (list, str)):
        return len(value)  # legacy permissiveness
    raise CypherTypeError("length() expects a path")


def _head(context, value):
    if value is None:
        return None
    if isinstance(value, list):
        return value[0] if value else None
    raise CypherTypeError("head() expects a list")


def _last(context, value):
    if value is None:
        return None
    if isinstance(value, list):
        return value[-1] if value else None
    raise CypherTypeError("last() expects a list")


def _tail(context, value):
    if value is None:
        return None
    if isinstance(value, list):
        return list(value[1:])
    raise CypherTypeError("tail() expects a list")


def _start_node(context, value):
    if value is None:
        return None
    if isinstance(value, RelId):
        return context.graph.src(value)
    raise CypherTypeError("startNode() expects a relationship")


def _end_node(context, value):
    if value is None:
        return None
    if isinstance(value, RelId):
        return context.graph.tgt(value)
    raise CypherTypeError("endNode() expects a relationship")


def _nodes(context, value):
    if value is None:
        return None
    if isinstance(value, Path):
        return list(value.nodes)
    raise CypherTypeError("nodes() expects a path")


def _relationships(context, value):
    if value is None:
        return None
    if isinstance(value, Path):
        return list(value.relationships)
    raise CypherTypeError("relationships() expects a path")


def _to_string(context, value):
    if value is None:
        return None
    if isinstance(value, str):
        return value
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value) if isinstance(value, float) else str(value)
    if hasattr(value, "cypher_to_string"):
        return value.cypher_to_string()
    raise CypherTypeError("toString() expects a scalar value")


def _to_integer(context, value):
    if value is None:
        return None
    if isinstance(value, bool):
        raise CypherTypeError("toInteger() does not accept booleans")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            try:
                return int(float(value.strip()))
            except ValueError:
                return None
    raise CypherTypeError("toInteger() expects a number or string")


def _to_float(context, value):
    if value is None:
        return None
    if isinstance(value, bool):
        raise CypherTypeError("toFloat() does not accept booleans")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    raise CypherTypeError("toFloat() expects a number or string")


def _to_boolean(context, value):
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return None
    raise CypherTypeError("toBoolean() expects a boolean or string")
