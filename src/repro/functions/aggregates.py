"""Aggregate functions (Section 3: "The syntax for grouping and aggregation
is simple ... non-aggregating expressions act as an implicit grouping key").

Aggregates are accumulator objects, not members of the scalar registry: the
projection machinery partitions rows into groups, feeds each aggregate one
value per row, and reads the result off at the end.  All aggregates skip
nulls (the §3 walkthrough counts "all the non-null values of s"), and all
support DISTINCT (the final RETURN needs ``count(DISTINCT p2)``).
"""

from __future__ import annotations

import math

from repro.exceptions import CypherTypeError, CypherSemanticError
from repro.values.comparison import compare
from repro.values.coercion import is_number
from repro.values.ordering import canonical_key


class Aggregate:
    """Base accumulator; subclasses implement _include and result."""

    def __init__(self, distinct=False):
        self.distinct = distinct
        self._seen = set() if distinct else None

    def include(self, value):
        if value is None:
            return  # aggregates skip nulls
        if self.distinct:
            key = canonical_key(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._include(value)

    def _include(self, value):
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class Count(Aggregate):
    """count(expr): number of non-null values."""

    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._count = 0

    def _include(self, value):
        self._count += 1

    def result(self):
        return self._count


class CountStar(Aggregate):
    """count(*): number of rows, nulls and all."""

    def __init__(self, distinct=False):
        super().__init__(False)
        self._count = 0

    def include(self, value):
        self._count += 1

    def result(self):
        return self._count


class Sum(Aggregate):
    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._total = 0

    def _include(self, value):
        if not is_number(value):
            raise CypherTypeError("sum() expects numbers, got %r" % (value,))
        self._total += value

    def result(self):
        return self._total


class Avg(Aggregate):
    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._total = 0.0
        self._count = 0

    def _include(self, value):
        if not is_number(value):
            raise CypherTypeError("avg() expects numbers, got %r" % (value,))
        self._total += value
        self._count += 1

    def result(self):
        if self._count == 0:
            return None
        return self._total / self._count


class Min(Aggregate):
    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._best = None
        self._has_value = False

    def _include(self, value):
        if not self._has_value:
            self._best, self._has_value = value, True
            return
        verdict = compare(value, self._best)
        if verdict is not None and verdict < 0:
            self._best = value

    def result(self):
        return self._best if self._has_value else None


class Max(Aggregate):
    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._best = None
        self._has_value = False

    def _include(self, value):
        if not self._has_value:
            self._best, self._has_value = value, True
            return
        verdict = compare(value, self._best)
        if verdict is not None and verdict > 0:
            self._best = value

    def result(self):
        return self._best if self._has_value else None


class Collect(Aggregate):
    """collect(expr): "returns a list containing the values returned by the
    expression" (Section 3's fraud example)."""

    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._values = []

    def _include(self, value):
        self._values.append(value)

    def result(self):
        return self._values


class _Deviation(Aggregate):
    sample = True

    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._values = []

    def _include(self, value):
        if not is_number(value):
            raise CypherTypeError("stdev() expects numbers, got %r" % (value,))
        self._values.append(float(value))

    def result(self):
        count = len(self._values)
        if count == 0:
            return 0.0
        mean = sum(self._values) / count
        squared = sum((v - mean) ** 2 for v in self._values)
        divisor = count - 1 if self.sample else count
        if divisor <= 0:
            return 0.0
        return math.sqrt(squared / divisor)


class Stdev(_Deviation):
    sample = True


class StdevP(_Deviation):
    sample = False


class _Percentile(Aggregate):
    """Percentile aggregates take (value, percentile) pairs per row."""

    def __init__(self, distinct=False):
        super().__init__(distinct)
        self._values = []
        self._percentile = None

    def include_pair(self, value, percentile):
        if percentile is not None:
            if not is_number(percentile) or not (0 <= percentile <= 1):
                raise CypherTypeError(
                    "percentile must be between 0.0 and 1.0"
                )
            self._percentile = float(percentile)
        self.include(value)

    def _include(self, value):
        if not is_number(value):
            raise CypherTypeError("percentile expects numbers")
        self._values.append(float(value))


class PercentileCont(_Percentile):
    def result(self):
        if not self._values or self._percentile is None:
            return None
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        position = self._percentile * (len(ordered) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        fraction = position - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction


class PercentileDisc(_Percentile):
    def result(self):
        if not self._values or self._percentile is None:
            return None
        ordered = sorted(self._values)
        index = max(0, int(math.ceil(self._percentile * len(ordered))) - 1)
        return ordered[index]


AGGREGATES = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "min": Min,
    "max": Max,
    "collect": Collect,
    "stdev": Stdev,
    "stdevp": StdevP,
    "percentilecont": PercentileCont,
    "percentiledisc": PercentileDisc,
}


def make_aggregate(name, distinct=False):
    """Instantiate the accumulator for an aggregate function name."""
    try:
        factory = AGGREGATES[name.lower()]
    except KeyError:
        raise CypherSemanticError("unknown aggregate function: %s()" % name)
    return factory(distinct)
