"""Constructors for the Cypher 10 temporal types (paper Section 6).

The CIP the paper cites specifies five instant types and a duration type;
the constructor functions here accept either an ISO-ish string or a
component map, mirroring the proposal.
"""

from __future__ import annotations

from repro.exceptions import CypherTypeError


def install(registry):
    registry.register("date", _date, 0, 1)
    registry.register("time", _time, 0, 1)
    registry.register("localtime", _localtime, 0, 1)
    registry.register("datetime", _datetime, 0, 1)
    registry.register("localdatetime", _localdatetime, 0, 1)
    registry.register("duration", _duration, 1, 1)


def _build(type_name, argument):
    from repro import temporal

    constructor = {
        "Date": temporal.Date,
        "Time": temporal.Time,
        "LocalTime": temporal.LocalTime,
        "DateTime": temporal.DateTime,
        "LocalDateTime": temporal.LocalDateTime,
        "Duration": temporal.Duration,
    }[type_name]
    if argument is None:
        raise CypherTypeError(
            "%s() without arguments needs a clock; pass a string or map"
            % type_name.lower()
        )
    if isinstance(argument, str):
        return constructor.parse(argument)
    if isinstance(argument, dict):
        return constructor.from_map(argument)
    raise CypherTypeError(
        "%s() expects a string or component map" % type_name.lower()
    )


def _date(context, argument=None):
    return _build("Date", argument)


def _time(context, argument=None):
    return _build("Time", argument)


def _localtime(context, argument=None):
    return _build("LocalTime", argument)


def _datetime(context, argument=None):
    return _build("DateTime", argument)


def _localdatetime(context, argument=None):
    return _build("LocalDateTime", argument)


def _duration(context, argument):
    return _build("Duration", argument)
