"""Numeric functions (arithmetic operators live in the evaluator; these are
the function-call forms)."""

from __future__ import annotations

import math

from repro.exceptions import CypherTypeError
from repro.values.coercion import is_number


def install(registry):
    registry.register("abs", _abs, 1, 1)
    registry.register("ceil", _ceil, 1, 1)
    registry.register("floor", _floor, 1, 1)
    registry.register("round", _round, 1, 1)
    registry.register("sign", _sign, 1, 1)
    registry.register("sqrt", _sqrt, 1, 1)
    registry.register("exp", _unary(math.exp), 1, 1)
    registry.register("log", _log, 1, 1)
    registry.register("log10", _log10, 1, 1)
    registry.register("sin", _unary(math.sin), 1, 1)
    registry.register("cos", _unary(math.cos), 1, 1)
    registry.register("tan", _unary(math.tan), 1, 1)
    registry.register("asin", _unary(math.asin), 1, 1)
    registry.register("acos", _unary(math.acos), 1, 1)
    registry.register("atan", _unary(math.atan), 1, 1)
    registry.register("atan2", _atan2, 2, 2)
    registry.register("pi", _pi, 0, 0)
    registry.register("e", _e, 0, 0)


def _require_number(value, name):
    if not is_number(value):
        raise CypherTypeError("%s() expects a number, got %r" % (name, value))
    return value


def _abs(context, value):
    if value is None:
        return None
    return abs(_require_number(value, "abs"))


def _ceil(context, value):
    if value is None:
        return None
    return float(math.ceil(_require_number(value, "ceil")))


def _floor(context, value):
    if value is None:
        return None
    return float(math.floor(_require_number(value, "floor")))


def _round(context, value):
    if value is None:
        return None
    number = _require_number(value, "round")
    # Cypher rounds half away from zero, unlike Python's bankers' rounding.
    return float(math.floor(number + 0.5)) if number >= 0 else float(math.ceil(number - 0.5))


def _sign(context, value):
    if value is None:
        return None
    number = _require_number(value, "sign")
    if number > 0:
        return 1
    if number < 0:
        return -1
    return 0


def _sqrt(context, value):
    if value is None:
        return None
    number = _require_number(value, "sqrt")
    if number < 0:
        return float("nan")
    return math.sqrt(number)


def _unary(fn):
    def implementation(context, value):
        if value is None:
            return None
        return fn(_require_number(value, fn.__name__))

    return implementation


def _log(context, value):
    if value is None:
        return None
    number = _require_number(value, "log")
    if number <= 0:
        return float("nan")
    return math.log(number)


def _log10(context, value):
    if value is None:
        return None
    number = _require_number(value, "log10")
    if number <= 0:
        return float("nan")
    return math.log10(number)


def _atan2(context, y, x):
    if y is None or x is None:
        return None
    return math.atan2(_require_number(y, "atan2"), _require_number(x, "atan2"))


def _pi(context):
    return math.pi


def _e(context):
    return math.e
