"""The base function set F (paper Section 4.1).

"Every real-life query language will have a number of functions defined on
its values ... we assume a finite set F of predefined functions that can be
applied to values.  The semantics is parameterized by this set, which can
be extended whenever new types and/or basic functions are added."

:func:`default_registry` builds the registry the engine ships with —
scalar, string, math, list and temporal functions.  Aggregates (count,
sum, collect, ...) are *not* ordinary members of F: they are evaluated
per-group by the projection machinery in :mod:`repro.semantics.clauses`,
and live in :mod:`repro.functions.aggregates`.
"""

from repro.functions.registry import FunctionContext, FunctionRegistry, default_registry
from repro.functions.aggregates import AGGREGATES, make_aggregate

__all__ = [
    "FunctionRegistry",
    "FunctionContext",
    "default_registry",
    "AGGREGATES",
    "make_aggregate",
]
