"""Function registry: name → implementation, with arity checking.

Functions are called as ``fn(context, *values)``; the context exposes the
graph so entity functions (labels, type, properties, ...) can consult
λ, τ and ι.  Lookup is case-insensitive, matching Cypher.
"""

from __future__ import annotations

from repro.exceptions import CypherTypeError, CypherSemanticError


class FunctionContext:
    """What a function implementation may see: the current graph."""

    __slots__ = ("graph",)

    def __init__(self, graph):
        self.graph = graph


class _Registered:
    __slots__ = ("implementation", "min_arity", "max_arity")

    def __init__(self, implementation, min_arity, max_arity):
        self.implementation = implementation
        self.min_arity = min_arity
        self.max_arity = max_arity


class FunctionRegistry:
    """A mutable, case-insensitive mapping of function names."""

    def __init__(self):
        self._functions = {}

    def register(self, name, implementation, min_arity=None, max_arity=None):
        """Register ``implementation`` under ``name``.

        ``min_arity``/``max_arity`` bound the number of *value* arguments
        (the context does not count); ``max_arity=None`` means variadic.
        """
        if min_arity is None:
            min_arity = 0
        self._functions[name.lower()] = _Registered(
            implementation, min_arity, max_arity
        )
        return implementation

    def lookup(self, name):
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CypherSemanticError("unknown function: %s()" % name)

    def call(self, name, context, args):
        entry = self.lookup(name)
        if len(args) < entry.min_arity or (
            entry.max_arity is not None and len(args) > entry.max_arity
        ):
            raise CypherTypeError(
                "%s() called with %d argument(s)" % (name, len(args))
            )
        return entry.implementation(context, *args)

    def names(self):
        return sorted(self._functions.keys())

    def __contains__(self, name):
        return name.lower() in self._functions

    def copy(self):
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


_DEFAULT = None


def default_registry():
    """The registry with all built-ins; built once and shared."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = FunctionRegistry()
        from repro.functions import lists, math_fns, scalar, strings, temporal_fns

        scalar.install(registry)
        strings.install(registry)
        math_fns.install(registry)
        lists.install(registry)
        temporal_fns.install(registry)
        _DEFAULT = registry
    return _DEFAULT
