"""String functions (Section 4.3 lists prefix/suffix/subword operators as
primitives; these are the function-call counterparts every implementation
ships)."""

from __future__ import annotations

from repro.exceptions import CypherTypeError


def install(registry):
    registry.register("toUpper", _to_upper, 1, 1)
    registry.register("toLower", _to_lower, 1, 1)
    registry.register("upper", _to_upper, 1, 1)   # legacy aliases
    registry.register("lower", _to_lower, 1, 1)
    registry.register("trim", _trim, 1, 1)
    registry.register("ltrim", _ltrim, 1, 1)
    registry.register("rtrim", _rtrim, 1, 1)
    registry.register("replace", _replace, 3, 3)
    registry.register("split", _split, 2, 2)
    registry.register("substring", _substring, 2, 3)
    registry.register("left", _left, 2, 2)
    registry.register("right", _right, 2, 2)
    registry.register("reverse", _reverse, 1, 1)


def _require_string(value, name):
    if not isinstance(value, str):
        raise CypherTypeError("%s() expects a string, got %r" % (name, value))
    return value


def _to_upper(context, value):
    if value is None:
        return None
    return _require_string(value, "toUpper").upper()


def _to_lower(context, value):
    if value is None:
        return None
    return _require_string(value, "toLower").lower()


def _trim(context, value):
    if value is None:
        return None
    return _require_string(value, "trim").strip()


def _ltrim(context, value):
    if value is None:
        return None
    return _require_string(value, "ltrim").lstrip()


def _rtrim(context, value):
    if value is None:
        return None
    return _require_string(value, "rtrim").rstrip()


def _replace(context, original, search, replacement):
    if original is None or search is None or replacement is None:
        return None
    return _require_string(original, "replace").replace(
        _require_string(search, "replace"),
        _require_string(replacement, "replace"),
    )


def _split(context, original, delimiter):
    if original is None or delimiter is None:
        return None
    text = _require_string(original, "split")
    sep = _require_string(delimiter, "split")
    if sep == "":
        return list(text)
    return text.split(sep)


def _substring(context, original, start, length=None):
    if original is None or start is None:
        return None
    text = _require_string(original, "substring")
    if not isinstance(start, int) or isinstance(start, bool):
        raise CypherTypeError("substring() start must be an integer")
    if start < 0:
        raise CypherTypeError("substring() start must not be negative")
    if length is None:
        return text[start:]
    if not isinstance(length, int) or isinstance(length, bool) or length < 0:
        raise CypherTypeError("substring() length must be a non-negative integer")
    return text[start:start + length]


def _left(context, original, length):
    if original is None or length is None:
        return None
    if not isinstance(length, int) or isinstance(length, bool) or length < 0:
        raise CypherTypeError("left() length must be a non-negative integer")
    return _require_string(original, "left")[:length]


def _right(context, original, length):
    if original is None or length is None:
        return None
    if not isinstance(length, int) or isinstance(length, bool) or length < 0:
        raise CypherTypeError("right() length must be a non-negative integer")
    text = _require_string(original, "right")
    return text[len(text) - length:] if length else ""


def _reverse(context, value):
    if value is None:
        return None
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, list):
        return list(reversed(value))
    raise CypherTypeError("reverse() expects a string or list")
