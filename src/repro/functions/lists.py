"""List functions.  The paper highlights "powerful features such as list
slicing and list comprehensions" (Section 2); slicing and comprehensions
are evaluator constructs, and these are the function-call companions."""

from __future__ import annotations

from repro.exceptions import CypherTypeError


def install(registry):
    registry.register("range", _range, 2, 3)


def _range(context, start, end, step=None):
    if start is None or end is None:
        return None
    for value in (start, end):
        if not isinstance(value, int) or isinstance(value, bool):
            raise CypherTypeError("range() bounds must be integers")
    if step is None:
        step = 1
    if not isinstance(step, int) or isinstance(step, bool):
        raise CypherTypeError("range() step must be an integer")
    if step == 0:
        raise CypherTypeError("range() step must not be zero")
    # range() is inclusive of the end bound in Cypher.
    if step > 0:
        return list(range(start, end + 1, step))
    return list(range(start, end - 1, step))
