"""Constraint definitions and the graph validator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.values.base import type_name
from repro.values.ordering import canonical_key


@dataclass(frozen=True)
class Violation:
    """One constraint violation, with the offending entity."""

    constraint: object
    entity: object
    message: str

    def __str__(self):
        return self.message


@dataclass(frozen=True)
class ExistenceConstraint:
    """Nodes with ``label`` must have a non-null ``property`` — the
    paper's own example of a schema constraint."""

    label: str
    property: str

    def check(self, graph):
        for node in graph.nodes_with_label(self.label):
            if graph.property_value(node, self.property) is None:
                yield Violation(
                    self,
                    node,
                    "node %s (:%s) is missing required property %r"
                    % (node, self.label, self.property),
                )

    def __str__(self):
        return "EXISTS(:%s.%s)" % (self.label, self.property)


@dataclass(frozen=True)
class UniquenessConstraint:
    """No two ``label`` nodes may share a value of ``property``."""

    label: str
    property: str

    def check(self, graph):
        seen = {}
        for node in graph.nodes_with_label(self.label):
            value = graph.property_value(node, self.property)
            if value is None:
                continue  # uniqueness constrains only present values
            key = canonical_key(value)
            if key in seen:
                yield Violation(
                    self,
                    node,
                    "nodes %s and %s (:%s) share %r = %r"
                    % (seen[key], node, self.label, self.property, value),
                )
            else:
                seen[key] = node

    def __str__(self):
        return "UNIQUE(:%s.%s)" % (self.label, self.property)


@dataclass(frozen=True)
class TypeConstraint:
    """If present, ``property`` on ``label`` nodes must have a Cypher type
    (by name: "Integer", "String", "Boolean", "Float", "List", "Map")."""

    label: str
    property: str
    expected_type: str

    def check(self, graph):
        for node in graph.nodes_with_label(self.label):
            value = graph.property_value(node, self.property)
            if value is None:
                continue
            actual = type_name(value)
            if actual != self.expected_type:
                yield Violation(
                    self,
                    node,
                    "node %s (:%s) has %s of type %s, expected %s"
                    % (node, self.label, self.property, actual,
                       self.expected_type),
                )

    def __str__(self):
        return "TYPE(:%s.%s IS %s)" % (
            self.label, self.property, self.expected_type,
        )


class Schema:
    """An ordered collection of constraints with a validator."""

    def __init__(self, constraints=()):
        self.constraints = list(constraints)

    def add(self, constraint):
        self.constraints.append(constraint)
        return self

    def validate(self, graph):
        """All violations in the graph, in constraint order."""
        violations = []
        for constraint in self.constraints:
            violations.extend(constraint.check(graph))
        return violations

    def is_valid(self, graph):
        return not self.validate(graph)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self):
        return len(self.constraints)

    def __repr__(self):
        return "Schema(%s)" % ", ".join(str(c) for c in self.constraints)
