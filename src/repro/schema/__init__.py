"""Schema constraints (paper Section 8, "Schema model").

"Neo4j nowadays is schema-optional, i.e. it supports an additional schema
constraint language (e.g. for requiring nodes with a given label to have
certain properties)."  This package implements that schema-optional
layer: property-existence, uniqueness and property-type constraints over
labels, a whole-graph validator, and engine integration that checks
constraints after every updating query (rolling the update back on
violation).
"""

from repro.schema.constraints import (
    ExistenceConstraint,
    Schema,
    TypeConstraint,
    UniquenessConstraint,
    Violation,
)

__all__ = [
    "Schema",
    "ExistenceConstraint",
    "UniquenessConstraint",
    "TypeConstraint",
    "Violation",
]
