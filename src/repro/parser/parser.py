"""Recursive-descent parser for Cypher.

Grammar sources: the paper's Figure 3 (patterns) and Figure 5
(expressions / queries / clauses), extended with the constructs the
paper's running examples use: DISTINCT, ORDER BY / SKIP / LIMIT, label
predicate expressions, update clauses, CASE, list/pattern comprehensions,
quantified predicates, and the Cypher 10 graph clauses of Section 6.

The parser is hand-written with one-token lookahead plus cheap
backtracking (save/restore of the token index) in the few genuinely
ambiguous spots: ``(`` opening either a parenthesized expression or a
pattern predicate, and ``[`` opening a list literal, a list
comprehension or a pattern comprehension.
"""

from __future__ import annotations

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.ast import queries as qu
from repro.exceptions import CypherSyntaxError
from repro.parser.lexer import tokenize
from repro.parser.tokens import END, FLOAT, IDENT, INTEGER, OPERATOR, STRING

_CLAUSE_STARTERS = frozenset(
    {
        "MATCH",
        "OPTIONAL",
        "WITH",
        "RETURN",
        "UNWIND",
        "CREATE",
        "DELETE",
        "DETACH",
        "SET",
        "REMOVE",
        "MERGE",
        "FROM",
    }
)

_QUANTIFIERS = frozenset({"all", "any", "none", "single"})

_EXPRESSION_STOPPERS = frozenset(
    {
        "AS",
        "ORDER",
        "SKIP",
        "LIMIT",
        "WHERE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "ASC",
        "ASCENDING",
        "DESC",
        "DESCENDING",
        "UNION",
        "ON",
    }
) | _CLAUSE_STARTERS


class Parser:
    """Parses one query (or expression / pattern) from a token list."""

    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self._peek()
        if token.kind != END:
            self.position += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise CypherSyntaxError(message, token.line, token.column)

    def _at_operator(self, text, offset=0):
        token = self._peek(offset)
        return token.kind == OPERATOR and token.text == text

    def _accept_operator(self, text):
        if self._at_operator(text):
            return self._advance()
        return None

    def _expect_operator(self, text):
        if not self._at_operator(text):
            self._error("expected %r, found %r" % (text, self._peek().text))
        return self._advance()

    def _at_keyword(self, word, offset=0):
        token = self._peek(offset)
        return token.kind == IDENT and token.upper == word

    def _accept_keyword(self, word):
        if self._at_keyword(word):
            return self._advance()
        return None

    def _expect_keyword(self, word):
        if not self._at_keyword(word):
            self._error("expected %s, found %r" % (word, self._peek().text))
        return self._advance()

    def _expect_identifier(self, what="identifier"):
        token = self._peek()
        if token.kind != IDENT:
            self._error("expected %s, found %r" % (what, token.text))
        return self._advance().text

    def _save(self):
        return self.position

    def _restore(self, mark):
        self.position = mark

    def _at_clause_start(self):
        token = self._peek()
        if token.kind != IDENT:
            return False
        word = token.upper
        if word == "QUERY":
            return self._at_keyword("GRAPH", 1)
        return word in _CLAUSE_STARTERS

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def parse_query(self):
        query = self._parse_single_query()
        while self._at_keyword("UNION"):
            self._advance()
            union_all = bool(self._accept_keyword("ALL"))
            right = self._parse_single_query()
            query = qu.UnionQuery(query, right, union_all)
        if self._accept_operator(";"):
            pass
        if self._peek().kind != END:
            self._error("unexpected input after query: %r" % self._peek().text)
        return query

    def _parse_single_query(self):
        clauses = []
        while self._at_clause_start():
            clause = self._parse_clause()
            clauses.append(clause)
            if isinstance(clause, cl.Return):
                break
        if not clauses:
            self._error("expected a clause, found %r" % self._peek().text)
        self._validate_clause_order(clauses)
        return qu.SingleQuery(tuple(clauses))

    def _validate_clause_order(self, clauses):
        for clause in clauses[:-1]:
            if isinstance(clause, cl.Return):
                self._error("RETURN can only be the final clause")
        updating = (cl.Create, cl.Delete, cl.SetClause, cl.RemoveClause, cl.Merge)
        last = clauses[-1]
        if not isinstance(last, (cl.Return, cl.ReturnGraph) + updating):
            if isinstance(last, (cl.Match, cl.Unwind, cl.With, cl.FromGraph)):
                self._error(
                    "query must end with RETURN or an updating clause"
                )

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------

    def _parse_clause(self):
        if self._at_keyword("OPTIONAL"):
            self._advance()
            self._expect_keyword("MATCH")
            return self._parse_match(optional=True)
        if self._accept_keyword("MATCH"):
            return self._parse_match(optional=False)
        if self._accept_keyword("WITH"):
            return self._parse_with()
        if self._at_keyword("RETURN"):
            self._advance()
            if self._at_keyword("GRAPH"):
                return self._parse_return_graph()
            return cl.Return(self._parse_projection())
        if self._accept_keyword("UNWIND"):
            expression = self.parse_expression()
            self._expect_keyword("AS")
            alias = self._expect_identifier("alias")
            return cl.Unwind(expression, alias)
        if self._accept_keyword("CREATE"):
            return cl.Create(self._parse_pattern_tuple())
        if self._at_keyword("DETACH"):
            self._advance()
            self._expect_keyword("DELETE")
            return self._parse_delete(detach=True)
        if self._accept_keyword("DELETE"):
            return self._parse_delete(detach=False)
        if self._accept_keyword("SET"):
            return cl.SetClause(tuple(self._parse_set_items()))
        if self._accept_keyword("REMOVE"):
            return cl.RemoveClause(tuple(self._parse_remove_items()))
        if self._accept_keyword("MERGE"):
            return self._parse_merge()
        if self._at_keyword("FROM"):
            self._advance()
            self._expect_keyword("GRAPH")
            return self._parse_from_graph()
        if self._at_keyword("QUERY"):
            self._advance()
            self._expect_keyword("GRAPH")
            name = self._expect_identifier("graph name")
            return cl.FromGraph(name)
        self._error("expected a clause, found %r" % self._peek().text)

    def _parse_match(self, optional):
        pattern = self._parse_pattern_tuple()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return cl.Match(pattern, optional=optional, where=where)

    def _parse_with(self):
        projection = self._parse_projection()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return cl.With(projection, where=where)

    def _parse_projection(self):
        distinct = bool(self._accept_keyword("DISTINCT"))
        star = False
        items = []
        if self._accept_operator("*"):
            star = True
            if self._accept_operator(","):
                items = self._parse_return_items()
        else:
            items = self._parse_return_items()
        order_by = ()
        if self._at_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by = tuple(self._parse_sort_items())
        skip = None
        if self._accept_keyword("SKIP"):
            skip = self.parse_expression()
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self.parse_expression()
        return cl.Projection(
            star=star,
            items=tuple(items),
            distinct=distinct,
            order_by=order_by,
            skip=skip,
            limit=limit,
        )

    def _parse_return_items(self):
        items = [self._parse_return_item()]
        while self._accept_operator(","):
            items.append(self._parse_return_item())
        return items

    def _parse_return_item(self):
        expression = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        return cl.ReturnItem(expression, alias)

    def _parse_sort_items(self):
        items = [self._parse_sort_item()]
        while self._accept_operator(","):
            items.append(self._parse_sort_item())
        return items

    def _parse_sort_item(self):
        expression = self.parse_expression()
        ascending = True
        if self._accept_keyword("DESC") or self._accept_keyword("DESCENDING"):
            ascending = False
        elif self._accept_keyword("ASC") or self._accept_keyword("ASCENDING"):
            ascending = True
        return cl.SortItem(expression, ascending)

    def _parse_delete(self, detach):
        expressions = [self.parse_expression()]
        while self._accept_operator(","):
            expressions.append(self.parse_expression())
        return cl.Delete(tuple(expressions), detach=detach)

    def _parse_set_items(self):
        items = [self._parse_set_item()]
        while self._accept_operator(","):
            items.append(self._parse_set_item())
        return items

    def _parse_set_item(self):
        # SET a:Label...
        if self._peek().kind == IDENT and self._at_operator(":", 1):
            name = self._advance().text
            labels = self._parse_label_sequence()
            return cl.SetLabels(name, labels)
        target = self._parse_postfix_expression()
        if isinstance(target, ex.Variable):
            if self._accept_operator("+="):
                return cl.SetVariable(target.name, self.parse_expression(), merge=True)
            self._expect_operator("=")
            return cl.SetVariable(target.name, self.parse_expression(), merge=False)
        if isinstance(target, ex.PropertyAccess):
            self._expect_operator("=")
            return cl.SetProperty(target.subject, target.key, self.parse_expression())
        self._error("cannot SET %r" % (target,))

    def _parse_remove_items(self):
        items = [self._parse_remove_item()]
        while self._accept_operator(","):
            items.append(self._parse_remove_item())
        return items

    def _parse_remove_item(self):
        if self._peek().kind == IDENT and self._at_operator(":", 1):
            name = self._advance().text
            labels = self._parse_label_sequence()
            return cl.RemoveLabels(name, labels)
        target = self._parse_postfix_expression()
        if isinstance(target, ex.PropertyAccess):
            return cl.RemoveProperty(target.subject, target.key)
        self._error("cannot REMOVE %r" % (target,))

    def _parse_merge(self):
        pattern = self.parse_path_pattern()
        on_create = []
        on_match = []
        while self._at_keyword("ON"):
            self._advance()
            if self._accept_keyword("CREATE"):
                self._expect_keyword("SET")
                on_create.extend(self._parse_set_items())
            elif self._accept_keyword("MATCH"):
                self._expect_keyword("SET")
                on_match.extend(self._parse_set_items())
            else:
                self._error("expected CREATE or MATCH after ON")
        return cl.Merge(pattern, tuple(on_create), tuple(on_match))

    def _parse_from_graph(self):
        name = self._expect_identifier("graph name")
        uri = None
        if self._accept_keyword("AT"):
            token = self._peek()
            if token.kind != STRING:
                self._error("expected a string after AT")
            uri = self._advance().text
        return cl.FromGraph(name, uri)

    def _parse_return_graph(self):
        self._expect_keyword("GRAPH")
        graph_name = self._expect_identifier("graph name")
        pattern = None
        if self._accept_keyword("OF"):
            pattern = self.parse_path_pattern()
        return cl.ReturnGraph(graph_name, pattern)

    # ------------------------------------------------------------------
    # Patterns (Figure 3)
    # ------------------------------------------------------------------

    def _parse_pattern_tuple(self):
        patterns = [self.parse_path_pattern()]
        while self._accept_operator(","):
            patterns.append(self.parse_path_pattern())
        return tuple(patterns)

    def parse_path_pattern(self):
        """``pattern ::= pattern° | a = pattern°``."""
        name = None
        if (
            self._peek().kind == IDENT
            and self._at_operator("=", 1)
            and self._peek().upper not in _EXPRESSION_STOPPERS
        ):
            name = self._advance().text
            self._advance()  # '='
        return self._parse_anonymous_path_pattern(name)

    def _parse_anonymous_path_pattern(self, name=None):
        elements = [self._parse_node_pattern()]
        while self._at_operator("-") or self._at_operator("<"):
            elements.append(self._parse_relationship_pattern())
            elements.append(self._parse_node_pattern())
        return pt.PathPattern(tuple(elements), name=name)

    def _parse_node_pattern(self):
        self._expect_operator("(")
        name = None
        if self._peek().kind == IDENT and not self._at_operator("(", 0):
            # a bare identifier; labels and map may follow
            name = self._advance().text
        labels = ()
        if self._at_operator(":"):
            labels = self._parse_label_sequence()
        properties = ()
        if self._at_operator("{"):
            properties = self._parse_property_map()
        self._expect_operator(")")
        return pt.NodePattern(name=name, labels=labels, properties=properties)

    def _parse_label_sequence(self):
        labels = []
        while self._accept_operator(":"):
            labels.append(self._expect_identifier("label"))
        return tuple(labels)

    def _parse_property_map(self):
        self._expect_operator("{")
        items = []
        if not self._at_operator("}"):
            while True:
                key = self._expect_identifier("property key")
                self._expect_operator(":")
                items.append((key, self.parse_expression()))
                if not self._accept_operator(","):
                    break
        self._expect_operator("}")
        return tuple(items)

    def _parse_relationship_pattern(self):
        pointing_left = False
        pointing_right = False
        if self._accept_operator("<"):
            pointing_left = True
        self._expect_operator("-")
        name = None
        types = ()
        length = None
        properties = ()
        if self._accept_operator("["):
            if self._peek().kind == IDENT and not self._at_operator(":", 0):
                name = self._advance().text
            if self._at_operator(":"):
                types = self._parse_type_alternatives()
            if self._accept_operator("*"):
                length = self._parse_length_range()
            if self._at_operator("{"):
                properties = self._parse_property_map()
            self._expect_operator("]")
        self._expect_operator("-")
        if self._accept_operator(">"):
            pointing_right = True
        if pointing_left and pointing_right:
            self._error("a relationship pattern cannot point both ways")
        if pointing_left:
            direction = pt.RIGHT_TO_LEFT
        elif pointing_right:
            direction = pt.LEFT_TO_RIGHT
        else:
            direction = pt.UNDIRECTED
        return pt.RelationshipPattern(
            direction=direction,
            name=name,
            types=types,
            properties=properties,
            length=length,
        )

    def _parse_type_alternatives(self):
        self._expect_operator(":")
        types = [self._expect_identifier("relationship type")]
        while self._accept_operator("|"):
            self._accept_operator(":")  # both :A|B and :A|:B are accepted
            types.append(self._expect_identifier("relationship type"))
        return tuple(types)

    def _parse_length_range(self):
        """After the ``*``: ``∗ | ∗d | ∗d1.. | ∗..d2 | ∗d1..d2``."""
        low = None
        high = None
        if self._peek().kind == INTEGER:
            low = int(self._advance().text)
        if self._accept_operator(".."):
            if self._peek().kind == INTEGER:
                high = int(self._advance().text)
        else:
            # '*d' alone fixes the range to exactly d; bare '*' is (nil, nil)
            high = low
        return (low, high)

    # ------------------------------------------------------------------
    # Expressions (Figure 5) — precedence climbing
    # ------------------------------------------------------------------

    def parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_xor()
        while self._accept_keyword("OR"):
            left = ex.BinaryLogic("OR", left, self._parse_xor())
        return left

    def _parse_xor(self):
        left = self._parse_and()
        while self._accept_keyword("XOR"):
            left = ex.BinaryLogic("XOR", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ex.BinaryLogic("AND", left, self._parse_not())
        return left

    def _parse_not(self):
        if self._accept_keyword("NOT"):
            return ex.Not(self._parse_not())
        return self._parse_comparison()

    _COMPARISON_OPERATORS = ("=", "<>", "<=", ">=", "<", ">")

    def _parse_comparison(self):
        first = self._parse_predicated()
        operators = []
        operands = [first]
        while True:
            operator = None
            for candidate in self._COMPARISON_OPERATORS:
                if self._at_operator(candidate):
                    operator = candidate
                    break
            if operator is None:
                break
            self._advance()
            operators.append(operator)
            operands.append(self._parse_predicated())
        if not operators:
            return first
        return ex.Comparison(tuple(operators), tuple(operands))

    def _parse_predicated(self):
        """Additive expression followed by postfix predicates.

        IN, STARTS WITH, ENDS WITH, CONTAINS, =~, IS [NOT] NULL.
        """
        value = self._parse_additive()
        while True:
            if self._accept_keyword("IN"):
                value = ex.In(value, self._parse_additive())
            elif self._at_keyword("STARTS"):
                self._advance()
                self._expect_keyword("WITH")
                value = ex.StringPredicate("STARTS WITH", value, self._parse_additive())
            elif self._at_keyword("ENDS"):
                self._advance()
                self._expect_keyword("WITH")
                value = ex.StringPredicate("ENDS WITH", value, self._parse_additive())
            elif self._accept_keyword("CONTAINS"):
                value = ex.StringPredicate("CONTAINS", value, self._parse_additive())
            elif self._accept_operator("=~"):
                value = ex.RegexMatch(value, self._parse_additive())
            elif self._at_keyword("IS"):
                self._advance()
                if self._accept_keyword("NOT"):
                    self._expect_keyword("NULL")
                    value = ex.IsNotNull(value)
                else:
                    self._expect_keyword("NULL")
                    value = ex.IsNull(value)
            else:
                return value

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            if self._accept_operator("+"):
                left = ex.Arithmetic("+", left, self._parse_multiplicative())
            elif self._accept_operator("-"):
                left = ex.Arithmetic("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_power()
        while True:
            if self._accept_operator("*"):
                left = ex.Arithmetic("*", left, self._parse_power())
            elif self._accept_operator("/"):
                left = ex.Arithmetic("/", left, self._parse_power())
            elif self._accept_operator("%"):
                left = ex.Arithmetic("%", left, self._parse_power())
            else:
                return left

    def _parse_power(self):
        left = self._parse_unary()
        while self._accept_operator("^"):
            left = ex.Arithmetic("^", left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self._accept_operator("-"):
            return ex.UnaryMinus(self._parse_unary())
        if self._accept_operator("+"):
            return ex.UnaryPlus(self._parse_unary())
        return self._parse_postfix_expression()

    def _parse_postfix_expression(self):
        value = self._parse_atom()
        while True:
            if self._at_operator(".") and self._peek(1).kind == IDENT:
                self._advance()
                key = self._advance().text
                value = ex.PropertyAccess(value, key)
            elif self._at_operator("["):
                value = self._parse_index_or_slice(value)
            elif self._at_operator(":") and self._peek(1).kind == IDENT:
                labels = self._parse_label_sequence()
                value = ex.LabelPredicate(value, labels)
            else:
                return value

    def _parse_index_or_slice(self, subject):
        self._expect_operator("[")
        start = None
        if not self._at_operator(".."):
            start = self.parse_expression()
        if self._accept_operator(".."):
            end = None
            if not self._at_operator("]"):
                end = self.parse_expression()
            self._expect_operator("]")
            return ex.ListSlice(subject, start, end)
        self._expect_operator("]")
        return ex.ListIndex(subject, start)

    # -- atoms -----------------------------------------------------------

    def _parse_atom(self):
        token = self._peek()
        if token.kind == INTEGER:
            self._advance()
            return ex.Literal(int(token.text))
        if token.kind == FLOAT:
            self._advance()
            return ex.Literal(float(token.text))
        if token.kind == STRING:
            self._advance()
            return ex.Literal(token.text)
        if self._at_operator("$"):
            self._advance()
            name = self._peek()
            if name.kind in (IDENT, INTEGER):
                self._advance()
                return ex.Parameter(name.text)
            self._error("expected a parameter name after $")
        if self._at_operator("("):
            return self._parse_parenthesized_or_pattern()
        if self._at_operator("["):
            return self._parse_bracketed()
        if self._at_operator("{"):
            return ex.MapLiteral(self._parse_property_map())
        if token.kind == IDENT:
            return self._parse_identifier_atom()
        self._error("expected an expression, found %r" % token.text)

    def _parse_identifier_atom(self):
        token = self._peek()
        word = token.upper
        if word == "TRUE":
            self._advance()
            return ex.Literal(True)
        if word == "FALSE":
            self._advance()
            return ex.Literal(False)
        if word == "NULL":
            self._advance()
            return ex.Literal(None)
        if word == "CASE":
            return self._parse_case()
        name = token.text
        if self._at_operator("(", 1):
            lowered = name.lower()
            if lowered == "count" and self._at_operator("*", 2) and self._at_operator(")", 3):
                self._advance()  # name
                self._advance()  # (
                self._advance()  # *
                self._advance()  # )
                return ex.CountStar()
            if lowered in _QUANTIFIERS and self._peek(2).kind == IDENT and self._at_keyword("IN", 3):
                return self._parse_quantifier(lowered)
            if lowered == "exists":
                return self._parse_exists()
            if lowered == "reduce" and self._peek(2).kind == IDENT and self._at_operator("=", 3):
                return self._parse_reduce()
            return self._parse_function_call()
        self._advance()
        return ex.Variable(name)

    def _parse_function_call(self):
        name = self._advance().text.lower()
        self._expect_operator("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        args = []
        if not self._at_operator(")"):
            args.append(self.parse_expression())
            while self._accept_operator(","):
                args.append(self.parse_expression())
        self._expect_operator(")")
        return ex.FunctionCall(name, tuple(args), distinct=distinct)

    def _parse_quantifier(self, quantifier):
        self._advance()  # quantifier word
        self._expect_operator("(")
        variable = self._expect_identifier("variable")
        self._expect_keyword("IN")
        source = self.parse_expression()
        self._expect_keyword("WHERE")
        predicate = self.parse_expression()
        self._expect_operator(")")
        return ex.QuantifiedPredicate(quantifier, variable, source, predicate)

    def _parse_reduce(self):
        """``reduce(acc = init, x IN list | expr)``."""
        self._advance()  # 'reduce'
        self._expect_operator("(")
        accumulator = self._expect_identifier("accumulator")
        self._expect_operator("=")
        init = self.parse_expression()
        self._expect_operator(",")
        variable = self._expect_identifier("variable")
        self._expect_keyword("IN")
        source = self.parse_expression()
        self._expect_operator("|")
        expression = self.parse_expression()
        self._expect_operator(")")
        return ex.Reduce(accumulator, init, variable, source, expression)

    def _parse_exists(self):
        self._advance()  # 'exists'
        self._expect_operator("(")
        mark = self._save()
        try:
            pattern = self._parse_pattern_tuple()
            where = None
            if self._accept_keyword("WHERE"):
                where = self.parse_expression()
            self._expect_operator(")")
            # A bare '(x)' parse would swallow a plain variable; only treat
            # it as a pattern if there is a relationship or a label/property.
            if self._pattern_is_informative(pattern):
                return ex.ExistsSubquery(pattern, where)
            raise CypherSyntaxError("not a pattern")
        except CypherSyntaxError:
            self._restore(mark)
        argument = self.parse_expression()
        self._expect_operator(")")
        return ex.FunctionCall("exists", (argument,))

    @staticmethod
    def _pattern_is_informative(pattern):
        for path in pattern:
            if len(path.elements) > 1:
                return True
            node = path.elements[0]
            if node.labels or node.properties:
                return True
        return False

    def _parse_case(self):
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self.parse_expression()
        alternatives = []
        while self._accept_keyword("WHEN"):
            when = self.parse_expression()
            self._expect_keyword("THEN")
            then = self.parse_expression()
            alternatives.append((when, then))
        if not alternatives:
            self._error("CASE requires at least one WHEN")
        default = None
        if self._accept_keyword("ELSE"):
            default = self.parse_expression()
        self._expect_keyword("END")
        return ex.CaseExpression(operand, tuple(alternatives), default)

    def _parse_parenthesized_or_pattern(self):
        mark = self._save()
        try:
            pattern = self._parse_anonymous_path_pattern()
            if len(pattern.elements) > 1 and not self._at_operator("("):
                return ex.PatternPredicate(pattern)
            raise CypherSyntaxError("not a pattern predicate")
        except CypherSyntaxError:
            self._restore(mark)
        self._expect_operator("(")
        inner = self.parse_expression()
        self._expect_operator(")")
        return inner

    def _parse_bracketed(self):
        # list comprehension?
        if (
            self._peek(1).kind == IDENT
            and self._at_keyword("IN", 2)
            and self._peek(1).upper not in ("TRUE", "FALSE", "NULL")
        ):
            mark = self._save()
            try:
                return self._parse_list_comprehension()
            except CypherSyntaxError:
                self._restore(mark)
        # pattern comprehension?  Either starts at a node pattern or
        # names its path: ``[p = (a)-->(b) | length(p)]``.
        if self._at_operator("(", 1) or (
            self._peek(1).kind == IDENT
            and self._at_operator("=", 2)
            and self._at_operator("(", 3)
        ):
            mark = self._save()
            try:
                return self._parse_pattern_comprehension()
            except CypherSyntaxError:
                self._restore(mark)
        return self._parse_list_literal()

    def _parse_list_comprehension(self):
        self._expect_operator("[")
        variable = self._expect_identifier("variable")
        self._expect_keyword("IN")
        source = self.parse_expression()
        where = None
        projection = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        if self._accept_operator("|"):
            projection = self.parse_expression()
        self._expect_operator("]")
        return ex.ListComprehension(variable, source, where, projection)

    def _parse_pattern_comprehension(self):
        self._expect_operator("[")
        name = None
        if self._peek().kind == IDENT and self._at_operator("=", 1):
            name = self._advance().text
            self._expect_operator("=")
        pattern = self._parse_anonymous_path_pattern(name)
        if len(pattern.elements) == 1:
            self._error("pattern comprehensions need a relationship")
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        self._expect_operator("|")
        projection = self.parse_expression()
        self._expect_operator("]")
        return ex.PatternComprehension(pattern, where, projection)

    def _parse_list_literal(self):
        self._expect_operator("[")
        items = []
        if not self._at_operator("]"):
            items.append(self.parse_expression())
            while self._accept_operator(","):
                items.append(self.parse_expression())
        self._expect_operator("]")
        return ex.ListLiteral(tuple(items))


# ---------------------------------------------------------------------------
# Public helpers
# ---------------------------------------------------------------------------

def parse_query(text):
    """Parse a complete Cypher query; returns a Query AST node."""
    return Parser(text).parse_query()


def parse_expression(text):
    """Parse a standalone expression (for tests and the REPL)."""
    parser = Parser(text)
    expression = parser.parse_expression()
    if parser._peek().kind != END:
        parser._error("unexpected input after expression")
    return expression


def parse_pattern(text):
    """Parse a standalone path pattern (for tests)."""
    parser = Parser(text)
    pattern = parser.parse_path_pattern()
    if parser._peek().kind != END:
        parser._error("unexpected input after pattern")
    return pattern
