"""Lexer and recursive-descent parser for Cypher 9 (+ Cypher 10 graph clauses).

The concrete syntax follows the paper's Figures 3 and 5, extended with the
constructs the paper's own examples use (ORDER BY / SKIP / LIMIT, DISTINCT,
label predicates, collect/count aggregates, update clauses, FROM GRAPH /
RETURN GRAPH).  ``parse_query`` is the main entry point.
"""

from repro.parser.lexer import Lexer, tokenize
from repro.parser.parser import (
    Parser,
    parse_expression,
    parse_pattern,
    parse_query,
)

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_query",
    "parse_expression",
    "parse_pattern",
]
