"""The Cypher lexer.

Hand-written scanner producing :class:`repro.parser.tokens.Token` values.
Notable Cypher quirks handled here:

* ``1..3`` in a range must lex as INTEGER, ``..``, INTEGER — a digit
  followed by ``..`` never starts a float;
* identifiers may be backtick-quoted (```weird name```), with doubled
  backticks as escapes;
* strings accept single or double quotes with C-style escapes;
* both ``//`` line comments and ``/* */`` block comments are whitespace.
"""

from __future__ import annotations

from repro.exceptions import CypherSyntaxError
from repro.parser.tokens import (
    END,
    FLOAT,
    IDENT,
    INTEGER,
    MULTI_CHAR_OPERATORS,
    OPERATOR,
    SINGLE_CHAR_OPERATORS,
    STRING,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
}


class Lexer:
    """Streams tokens from a query string."""

    def __init__(self, text):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    # -- helpers -------------------------------------------------------------

    def _peek(self, offset=0):
        index = self.position + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.position < len(self.text):
                if self.text[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _error(self, message):
        raise CypherSyntaxError(message, self.line, self.column)

    def _make(self, kind, text, line, column):
        return Token(kind, text, line, column)

    # -- whitespace and comments ----------------------------------------------

    def _skip_trivia(self):
        while True:
            char = self._peek()
            if char and char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while True:
                    if not self._peek():
                        self._error("unterminated block comment")
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    # -- token scanners ----------------------------------------------------------

    def _scan_string(self):
        line, column = self.line, self.column
        quote = self._peek()
        self._advance()
        chunks = []
        while True:
            char = self._peek()
            if not char:
                self._error("unterminated string literal")
            if char == quote:
                self._advance()
                return self._make(STRING, "".join(chunks), line, column)
            if char == "\\":
                self._advance()
                escape = self._peek()
                if escape in _ESCAPES:
                    chunks.append(_ESCAPES[escape])
                    self._advance()
                elif escape in ("u", "U"):
                    width = 4 if escape == "u" else 8
                    self._advance()
                    digits = self.text[self.position:self.position + width]
                    if len(digits) < width:
                        self._error("bad unicode escape")
                    try:
                        chunks.append(chr(int(digits, 16)))
                    except ValueError:
                        self._error("bad unicode escape")
                    self._advance(width)
                else:
                    self._error("unknown escape \\%s" % escape)
            else:
                chunks.append(char)
                self._advance()

    def _scan_backtick_identifier(self):
        line, column = self.line, self.column
        self._advance()  # opening backtick
        chunks = []
        while True:
            char = self._peek()
            if not char:
                self._error("unterminated backtick identifier")
            if char == "`":
                if self._peek(1) == "`":  # escaped backtick
                    chunks.append("`")
                    self._advance(2)
                else:
                    self._advance()
                    return self._make(IDENT, "".join(chunks), line, column)
            else:
                chunks.append(char)
                self._advance()

    def _scan_number(self):
        line, column = self.line, self.column
        start = self.position
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.text[start:self.position]
            return self._make(INTEGER, str(int(text, 16)), line, column)
        while self._peek().isdigit():
            self._advance()
        is_float = False
        # A '.' starts a fraction only if followed by a digit (so `1..3`
        # and `n.prop` keep their meaning).
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start:self.position]
        return self._make(FLOAT if is_float else INTEGER, text, line, column)

    def _scan_identifier(self):
        line, column = self.line, self.column
        start = self.position
        while True:
            char = self._peek()
            if char and (char.isalnum() or char == "_"):
                self._advance()
            else:
                break
        return self._make(IDENT, self.text[start:self.position], line, column)

    def _scan_operator(self):
        line, column = self.line, self.column
        for operator in MULTI_CHAR_OPERATORS:
            if self.text.startswith(operator, self.position):
                self._advance(len(operator))
                return self._make(OPERATOR, operator, line, column)
        char = self._peek()
        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return self._make(OPERATOR, char, line, column)
        self._error("unexpected character %r" % char)

    # -- driver ------------------------------------------------------------------

    def next_token(self):
        self._skip_trivia()
        char = self._peek()
        if not char:
            return self._make(END, "", self.line, self.column)
        if char in ("'", '"'):
            return self._scan_string()
        if char == "`":
            return self._scan_backtick_identifier()
        if char.isdigit():
            return self._scan_number()
        if char.isalpha() or char == "_":
            return self._scan_identifier()
        return self._scan_operator()

    def tokens(self):
        """Scan the whole input eagerly; the END sentinel is included."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == END:
                return result


def tokenize(text):
    """Tokenize ``text`` fully, returning the token list (with END last)."""
    return Lexer(text).tokens()
