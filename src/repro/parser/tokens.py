"""Token kinds and the Token record produced by the lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.  Keywords are lexed as IDENT and classified by the parser,
# which keeps the lexer simple and the keyword set case-insensitive.
IDENT = "IDENT"            # plain or backtick-quoted identifier
INTEGER = "INTEGER"
FLOAT = "FLOAT"
STRING = "STRING"
OPERATOR = "OPERATOR"      # punctuation and multi-char operators
END = "END"                # end of input sentinel

#: Multi-character operators, longest first so maximal munch works.
MULTI_CHAR_OPERATORS = (
    "<=",
    ">=",
    "<>",
    "=~",
    "+=",
    "..",
)

SINGLE_CHAR_OPERATORS = set("()[]{},:;.|+-*/%^=<>$")


#: Words with reserved meaning.  The parser still accepts most of them as
#: identifiers where unambiguous (Cypher is liberal), but expression parsing
#: uses this set to stop at clause boundaries.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "ASCENDING",
        "AT",
        "BY",
        "CASE",
        "CONTAINS",
        "CREATE",
        "DELETE",
        "DESC",
        "DESCENDING",
        "DETACH",
        "DISTINCT",
        "ELSE",
        "END",
        "ENDS",
        "EXISTS",
        "FALSE",
        "FROM",
        "GRAPH",
        "IN",
        "IS",
        "LIMIT",
        "MATCH",
        "MERGE",
        "NOT",
        "NULL",
        "OF",
        "ON",
        "OPTIONAL",
        "OR",
        "ORDER",
        "QUERY",
        "REMOVE",
        "RETURN",
        "SET",
        "SKIP",
        "STARTS",
        "THEN",
        "TRUE",
        "UNION",
        "UNWIND",
        "WHEN",
        "WHERE",
        "WITH",
        "XOR",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    text: str        # raw text; for STRING, the *decoded* value
    line: int
    column: int

    @property
    def upper(self):
        """Upper-cased text, for case-insensitive keyword matching."""
        return self.text.upper()

    def is_keyword(self, word):
        return self.kind == IDENT and self.upper == word

    def __repr__(self):
        return "Token({}, {!r} @{}:{})".format(
            self.kind, self.text, self.line, self.column
        )
