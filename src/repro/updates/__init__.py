"""Update-clause execution (paper Section 2, "Data modification").

"Updating clauses re-use the visual graph-pattern language and provide the
same simple, top-down semantic model as the rest of Cypher": each update
clause is still a function from tables to tables — it mutates the graph as
a side effect and passes the (possibly widened) driving table on.
"""

from repro.updates.executor import apply_update

__all__ = ["apply_update"]
