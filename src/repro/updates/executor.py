"""Execution of CREATE / DELETE / SET / REMOVE / MERGE.

Each function takes (clause, table, state) and returns the next driving
table, mutating ``state.graph`` along the way.  The semantics follows
Neo4j's documented behaviour for the constructs the paper describes:

* CREATE instantiates its (rigid, directed, single-type) pattern once per
  driving row, binding any new names;
* DELETE collects entities across all rows and removes relationships
  before nodes; non-DETACH deletion of a connected node is an error;
* SET/REMOVE mutate properties and labels per row;
* MERGE matches its pattern per row — every existing match yields a row
  (with ON MATCH applied); if none exists the whole pattern is created
  (with ON CREATE applied), so a MERGE never partially reuses a pattern.

All mutation goes through the store's :class:`StoreTransaction` — the
same change-buffer kernel the planner's physical write operators drive
(:mod:`repro.planner.physical`) — one transaction per clause here, so
the version bump and cache invalidation happen once per clause instead
of once per touched entity.  The per-row logic in this module is the
*reference* semantics the slotted write pipeline is cross-checked
against.
"""

from __future__ import annotations

from repro.ast import clauses as cl
from repro.ast import patterns as pt
from repro.exceptions import CypherSemanticError, CypherTypeError
from repro.semantics.matching import match_pattern_tuple
from repro.semantics.table import Table
from repro.values.base import NodeId, RelId
from repro.values.path import Path


def apply_update(clause, table, state):
    dispatch = _DISPATCH.get(type(clause))
    if dispatch is None:
        raise CypherSemanticError("not an update clause: %r" % (clause,))
    transaction = state.graph.write_transaction()
    try:
        result = dispatch(clause, table, state, transaction)
    except BaseException:
        transaction.abandon()
        raise
    transaction.commit()
    return result


# ---------------------------------------------------------------------------
# CREATE
# ---------------------------------------------------------------------------

def validate_create_pattern(path_pattern):
    """Structural constraints on a CREATE pattern (checked per clause).

    Shared with the planner, which performs the same check at plan time;
    hoisting it out of the row loop keeps the two paths agreeing even on
    an empty driving table.
    """
    for rho in path_pattern.relationship_patterns:
        if rho.length is not None:
            raise CypherSemanticError(
                "CREATE cannot use variable-length relationships"
            )
        if len(rho.types) != 1:
            raise CypherSemanticError(
                "CREATE requires exactly one relationship type"
            )
        if rho.direction == pt.UNDIRECTED:
            raise CypherSemanticError(
                "CREATE requires a directed relationship"
            )


def validate_merge_pattern(path_pattern):
    """Structural constraints on a MERGE pattern (undirected is allowed)."""
    for rho in path_pattern.relationship_patterns:
        if rho.length is not None or len(rho.types) != 1:
            raise CypherSemanticError(
                "MERGE requires rigid single-type relationships"
            )


def _apply_create(clause, table, state, transaction):
    evaluator = state.evaluator()
    for path_pattern in clause.pattern:
        validate_create_pattern(path_pattern)
    new_fields = [
        name
        for name in pt.free_variables(clause.pattern)
        if name not in table.fields
    ]
    rows = []
    for record in table.rows:
        row = dict(record)
        for path_pattern in clause.pattern:
            _create_path(path_pattern, row, transaction, evaluator)
        rows.append(row)
    return Table(table.fields + tuple(new_fields), rows)


def _create_path(path_pattern, row, transaction, evaluator):
    elements = path_pattern.elements
    nodes = []
    rels = []
    current = _create_or_reuse_node(elements[0], row, transaction, evaluator)
    nodes.append(current)
    for index in range(1, len(elements), 2):
        rho = elements[index]
        chi = elements[index + 1]
        next_node = _create_or_reuse_node(chi, row, transaction, evaluator)
        properties = {
            key: evaluator.evaluate(value, row) for key, value in rho.properties
        }
        if rho.direction == pt.LEFT_TO_RIGHT:
            rel = transaction.create_relationship(
                current, next_node, rho.types[0], properties
            )
        else:
            rel = transaction.create_relationship(
                next_node, current, rho.types[0], properties
            )
        if rho.name is not None:
            if rho.name in row:
                raise CypherSemanticError(
                    "relationship variable %r already bound" % rho.name
                )
            row[rho.name] = rel
        rels.append(rel)
        nodes.append(next_node)
        current = next_node
    if path_pattern.name is not None:
        row[path_pattern.name] = Path(tuple(nodes), tuple(rels))


def _create_or_reuse_node(chi, row, transaction, evaluator):
    if chi.name is not None and chi.name in row:
        value = row[chi.name]
        if not isinstance(value, NodeId):
            raise CypherTypeError(
                "cannot CREATE through %r: bound to %r" % (chi.name, value)
            )
        if chi.labels or chi.properties:
            raise CypherSemanticError(
                "cannot add labels or properties to the bound variable %r "
                "inside CREATE" % chi.name
            )
        return value
    properties = {
        key: evaluator.evaluate(value, row) for key, value in chi.properties
    }
    node = transaction.create_node(chi.labels, properties)
    if chi.name is not None:
        row[chi.name] = node
    return node


# ---------------------------------------------------------------------------
# DELETE
# ---------------------------------------------------------------------------

def _apply_delete(clause, table, state, transaction):
    evaluator = state.evaluator()
    detach = clause.detach
    for record in table.rows:
        for expression in clause.expressions:
            transaction.delete_value(
                evaluator.evaluate(expression, record), detach
            )
    transaction.flush()
    return table


# ---------------------------------------------------------------------------
# SET and REMOVE
# ---------------------------------------------------------------------------

def _apply_set_clause(clause, table, state, transaction):
    return _apply_set(clause.items, table, state, transaction)


def _apply_set(items, table, state, transaction, rows=None):
    evaluator = state.evaluator()
    for record in rows if rows is not None else table.rows:
        for item in items:
            _apply_set_item(item, record, state, evaluator, transaction)
    return table


def _apply_set_item(item, record, state, evaluator, transaction):
    graph = state.graph
    if isinstance(item, cl.SetProperty):
        entity = evaluator.evaluate(item.subject, record)
        if entity is None:
            return
        if not isinstance(entity, (NodeId, RelId)):
            raise CypherTypeError("SET expects a node or relationship")
        transaction.set_property(
            entity, item.key, evaluator.evaluate(item.value, record)
        )
        return
    if isinstance(item, cl.SetVariable):
        entity = record.get(item.name)
        if entity is None:
            return
        if not isinstance(entity, (NodeId, RelId)):
            raise CypherTypeError("SET expects a node or relationship")
        value = evaluator.evaluate(item.value, record)
        if isinstance(value, (NodeId, RelId)):
            value = graph.properties(value)
        if not isinstance(value, dict):
            raise CypherTypeError(
                "SET %s = ... expects a map or entity" % item.name
            )
        if item.merge:
            transaction.merge_properties(entity, value)
        else:
            transaction.replace_properties(entity, value)
        return
    if isinstance(item, cl.SetLabels):
        entity = record.get(item.name)
        if entity is None:
            return
        if not isinstance(entity, NodeId):
            raise CypherTypeError("labels can only be set on nodes")
        for label in item.labels:
            transaction.add_label(entity, label)
        return
    raise CypherSemanticError("unknown SET item %r" % (item,))


def _apply_remove(clause, table, state, transaction):
    evaluator = state.evaluator()
    for record in table.rows:
        for item in clause.items:
            if isinstance(item, cl.RemoveProperty):
                entity = evaluator.evaluate(item.subject, record)
                if entity is None:
                    continue
                if not isinstance(entity, (NodeId, RelId)):
                    raise CypherTypeError(
                        "REMOVE expects a node or relationship"
                    )
                transaction.remove_property(entity, item.key)
            elif isinstance(item, cl.RemoveLabels):
                entity = record.get(item.name)
                if entity is None:
                    continue
                if not isinstance(entity, NodeId):
                    raise CypherTypeError("labels can only be removed from nodes")
                for label in item.labels:
                    transaction.remove_label(entity, label)
            else:
                raise CypherSemanticError("unknown REMOVE item %r" % (item,))
    return table


# ---------------------------------------------------------------------------
# MERGE
# ---------------------------------------------------------------------------

def _apply_merge(clause, table, state, transaction):
    evaluator = state.evaluator()
    validate_merge_pattern(clause.pattern)
    new_fields = [
        name
        for name in pt.free_variables((clause.pattern,))
        if name not in table.fields
    ]
    rows = []
    for record in table.rows:
        matches = match_pattern_tuple(
            (clause.pattern,), state.graph, record, evaluator, state.morphism
        )
        if matches:
            for bindings in matches:
                row = dict(record)
                row.update(bindings)
                rows.append(row)
            if clause.on_match:
                _apply_set(
                    clause.on_match, table, state, transaction,
                    rows=rows[-len(matches):],
                )
        else:
            row = dict(record)
            _merge_create(clause.pattern, row, transaction, evaluator)
            rows.append(row)
            if clause.on_create:
                _apply_set(
                    clause.on_create, table, state, transaction, rows=[row]
                )
    return Table(table.fields + tuple(new_fields), rows)


def _merge_create(path_pattern, row, transaction, evaluator):
    """Create the whole pattern; bound endpoints are reused as-is."""
    elements = path_pattern.elements
    nodes = []
    rels = []
    current = _merge_node(elements[0], row, transaction, evaluator)
    nodes.append(current)
    for index in range(1, len(elements), 2):
        rho = elements[index]
        chi = elements[index + 1]
        next_node = _merge_node(chi, row, transaction, evaluator)
        properties = {
            key: evaluator.evaluate(value, row) for key, value in rho.properties
        }
        if rho.direction == pt.RIGHT_TO_LEFT:
            rel = transaction.create_relationship(
                next_node, current, rho.types[0], properties
            )
        else:
            # Undirected MERGE creates left-to-right, as Neo4j does.
            rel = transaction.create_relationship(
                current, next_node, rho.types[0], properties
            )
        if rho.name is not None and rho.name not in row:
            row[rho.name] = rel
        rels.append(rel)
        nodes.append(next_node)
        current = next_node
    if path_pattern.name is not None:
        row[path_pattern.name] = Path(tuple(nodes), tuple(rels))


def _merge_node(chi, row, transaction, evaluator):
    if chi.name is not None and chi.name in row:
        value = row[chi.name]
        if not isinstance(value, NodeId):
            raise CypherTypeError(
                "MERGE through %r: bound to %r" % (chi.name, value)
            )
        return value
    properties = {
        key: evaluator.evaluate(value, row) for key, value in chi.properties
    }
    node = transaction.create_node(chi.labels, properties)
    if chi.name is not None:
        row[chi.name] = node
    return node


_DISPATCH = {
    cl.Create: _apply_create,
    cl.Delete: _apply_delete,
    cl.SetClause: _apply_set_clause,
    cl.RemoveClause: _apply_remove,
    cl.Merge: _apply_merge,
}
