"""Execution of CREATE / DELETE / SET / REMOVE / MERGE.

Each function takes (clause, table, state) and returns the next driving
table, mutating ``state.graph`` along the way.  The semantics follows
Neo4j's documented behaviour for the constructs the paper describes:

* CREATE instantiates its (rigid, directed, single-type) pattern once per
  driving row, binding any new names;
* DELETE collects entities across all rows and removes relationships
  before nodes; non-DETACH deletion of a connected node is an error;
* SET/REMOVE mutate properties and labels per row;
* MERGE matches its pattern per row — every existing match yields a row
  (with ON MATCH applied); if none exists the whole pattern is created
  (with ON CREATE applied), so a MERGE never partially reuses a pattern.
"""

from __future__ import annotations

from repro.ast import clauses as cl
from repro.ast import patterns as pt
from repro.exceptions import (
    ConstraintViolation,
    CypherSemanticError,
    CypherTypeError,
)
from repro.semantics.matching import match_pattern_tuple
from repro.semantics.table import Table
from repro.values.base import NodeId, RelId
from repro.values.path import Path


def apply_update(clause, table, state):
    if isinstance(clause, cl.Create):
        return _apply_create(clause, table, state)
    if isinstance(clause, cl.Delete):
        return _apply_delete(clause, table, state)
    if isinstance(clause, cl.SetClause):
        return _apply_set(clause.items, table, state)
    if isinstance(clause, cl.RemoveClause):
        return _apply_remove(clause, table, state)
    if isinstance(clause, cl.Merge):
        return _apply_merge(clause, table, state)
    raise CypherSemanticError("not an update clause: %r" % (clause,))


# ---------------------------------------------------------------------------
# CREATE
# ---------------------------------------------------------------------------

def _apply_create(clause, table, state):
    evaluator = state.evaluator()
    new_fields = [
        name
        for name in pt.free_variables(clause.pattern)
        if name not in table.fields
    ]
    rows = []
    for record in table.rows:
        row = dict(record)
        for path_pattern in clause.pattern:
            _create_path(path_pattern, row, state, evaluator)
        rows.append(row)
    return Table(table.fields + tuple(new_fields), rows)


def _create_path(path_pattern, row, state, evaluator):
    graph = state.graph
    elements = path_pattern.elements
    nodes = []
    rels = []
    current = _create_or_reuse_node(elements[0], row, state, evaluator)
    nodes.append(current)
    for index in range(1, len(elements), 2):
        rho = elements[index]
        chi = elements[index + 1]
        _validate_create_relationship(rho)
        next_node = _create_or_reuse_node(chi, row, state, evaluator)
        properties = {
            key: evaluator.evaluate(value, row) for key, value in rho.properties
        }
        if rho.direction == pt.LEFT_TO_RIGHT:
            rel = graph.create_relationship(current, next_node, rho.types[0], properties)
        else:
            rel = graph.create_relationship(next_node, current, rho.types[0], properties)
        if rho.name is not None:
            if rho.name in row:
                raise CypherSemanticError(
                    "relationship variable %r already bound" % rho.name
                )
            row[rho.name] = rel
        rels.append(rel)
        nodes.append(next_node)
        current = next_node
    if path_pattern.name is not None:
        row[path_pattern.name] = Path(tuple(nodes), tuple(rels))


def _validate_create_relationship(rho):
    if rho.length is not None:
        raise CypherSemanticError(
            "CREATE cannot use variable-length relationships"
        )
    if len(rho.types) != 1:
        raise CypherSemanticError(
            "CREATE requires exactly one relationship type"
        )
    if rho.direction == pt.UNDIRECTED:
        raise CypherSemanticError(
            "CREATE requires a directed relationship"
        )


def _create_or_reuse_node(chi, row, state, evaluator):
    if chi.name is not None and chi.name in row:
        value = row[chi.name]
        if not isinstance(value, NodeId):
            raise CypherTypeError(
                "cannot CREATE through %r: bound to %r" % (chi.name, value)
            )
        if chi.labels or chi.properties:
            raise CypherSemanticError(
                "cannot add labels or properties to the bound variable %r "
                "inside CREATE" % chi.name
            )
        return value
    properties = {
        key: evaluator.evaluate(value, row) for key, value in chi.properties
    }
    node = state.graph.create_node(chi.labels, properties)
    if chi.name is not None:
        row[chi.name] = node
    return node


# ---------------------------------------------------------------------------
# DELETE
# ---------------------------------------------------------------------------

def _apply_delete(clause, table, state):
    evaluator = state.evaluator()
    nodes = set()
    rels = set()
    detach = clause.detach
    for record in table.rows:
        for expression in clause.expressions:
            value = evaluator.evaluate(expression, record)
            _collect_deletions(value, nodes, rels)
    graph = state.graph
    for rel in rels:
        if graph.has_relationship(rel):
            graph.delete_relationship(rel)
    for node in nodes:
        if not graph.has_node(node):
            continue
        if not detach and graph.degree(node) > 0:
            raise ConstraintViolation(
                "cannot delete node %r: it still has relationships; "
                "use DETACH DELETE" % (node,)
            )
        graph.delete_node(node, detach=True)
    return table


def _collect_deletions(value, nodes, rels):
    if value is None:
        return
    if isinstance(value, NodeId):
        nodes.add(value)
    elif isinstance(value, RelId):
        rels.add(value)
    elif isinstance(value, Path):
        nodes.update(value.nodes)
        rels.update(value.relationships)
    elif isinstance(value, list):
        for item in value:
            _collect_deletions(item, nodes, rels)
    else:
        raise CypherTypeError("cannot DELETE %r" % (value,))


# ---------------------------------------------------------------------------
# SET and REMOVE
# ---------------------------------------------------------------------------

def _apply_set(items, table, state, rows=None):
    evaluator = state.evaluator()
    for record in rows if rows is not None else table.rows:
        for item in items:
            _apply_set_item(item, record, state, evaluator)
    return table


def _apply_set_item(item, record, state, evaluator):
    graph = state.graph
    if isinstance(item, cl.SetProperty):
        entity = evaluator.evaluate(item.subject, record)
        if entity is None:
            return
        if not isinstance(entity, (NodeId, RelId)):
            raise CypherTypeError("SET expects a node or relationship")
        graph.set_property(entity, item.key, evaluator.evaluate(item.value, record))
        return
    if isinstance(item, cl.SetVariable):
        entity = record.get(item.name)
        if entity is None:
            return
        if not isinstance(entity, (NodeId, RelId)):
            raise CypherTypeError("SET expects a node or relationship")
        value = evaluator.evaluate(item.value, record)
        if isinstance(value, (NodeId, RelId)):
            value = graph.properties(value)
        if not isinstance(value, dict):
            raise CypherTypeError(
                "SET %s = ... expects a map or entity" % item.name
            )
        if item.merge:
            graph.merge_properties(entity, value)
        else:
            graph.replace_properties(entity, value)
        return
    if isinstance(item, cl.SetLabels):
        entity = record.get(item.name)
        if entity is None:
            return
        if not isinstance(entity, NodeId):
            raise CypherTypeError("labels can only be set on nodes")
        for label in item.labels:
            graph.add_label(entity, label)
        return
    raise CypherSemanticError("unknown SET item %r" % (item,))


def _apply_remove(clause, table, state):
    evaluator = state.evaluator()
    graph = state.graph
    for record in table.rows:
        for item in clause.items:
            if isinstance(item, cl.RemoveProperty):
                entity = evaluator.evaluate(item.subject, record)
                if entity is None:
                    continue
                if not isinstance(entity, (NodeId, RelId)):
                    raise CypherTypeError(
                        "REMOVE expects a node or relationship"
                    )
                graph.remove_property(entity, item.key)
            elif isinstance(item, cl.RemoveLabels):
                entity = record.get(item.name)
                if entity is None:
                    continue
                if not isinstance(entity, NodeId):
                    raise CypherTypeError("labels can only be removed from nodes")
                for label in item.labels:
                    graph.remove_label(entity, label)
            else:
                raise CypherSemanticError("unknown REMOVE item %r" % (item,))
    return table


# ---------------------------------------------------------------------------
# MERGE
# ---------------------------------------------------------------------------

def _apply_merge(clause, table, state):
    evaluator = state.evaluator()
    new_fields = [
        name
        for name in pt.free_variables((clause.pattern,))
        if name not in table.fields
    ]
    rows = []
    for record in table.rows:
        matches = match_pattern_tuple(
            (clause.pattern,), state.graph, record, evaluator, state.morphism
        )
        if matches:
            for bindings in matches:
                row = dict(record)
                row.update(bindings)
                rows.append(row)
            if clause.on_match:
                _apply_set(clause.on_match, table, state, rows=rows[-len(matches):])
        else:
            row = dict(record)
            _merge_create(clause.pattern, row, state, evaluator)
            rows.append(row)
            if clause.on_create:
                _apply_set(clause.on_create, table, state, rows=[row])
    return Table(table.fields + tuple(new_fields), rows)


def _merge_create(path_pattern, row, state, evaluator):
    """Create the whole pattern; bound endpoints are reused as-is."""
    graph = state.graph
    elements = path_pattern.elements
    nodes = []
    rels = []
    current = _merge_node(elements[0], row, state, evaluator)
    nodes.append(current)
    for index in range(1, len(elements), 2):
        rho = elements[index]
        chi = elements[index + 1]
        if rho.length is not None or len(rho.types) != 1:
            raise CypherSemanticError(
                "MERGE requires rigid single-type relationships"
            )
        next_node = _merge_node(chi, row, state, evaluator)
        properties = {
            key: evaluator.evaluate(value, row) for key, value in rho.properties
        }
        if rho.direction == pt.RIGHT_TO_LEFT:
            rel = graph.create_relationship(
                next_node, current, rho.types[0], properties
            )
        else:
            # Undirected MERGE creates left-to-right, as Neo4j does.
            rel = graph.create_relationship(
                current, next_node, rho.types[0], properties
            )
        if rho.name is not None and rho.name not in row:
            row[rho.name] = rel
        rels.append(rel)
        nodes.append(next_node)
        current = next_node
    if path_pattern.name is not None:
        row[path_pattern.name] = Path(tuple(nodes), tuple(rels))


def _merge_node(chi, row, state, evaluator):
    if chi.name is not None and chi.name in row:
        value = row[chi.name]
        if not isinstance(value, NodeId):
            raise CypherTypeError(
                "MERGE through %r: bound to %r" % (chi.name, value)
            )
        return value
    properties = {
        key: evaluator.evaluate(value, row) for key, value in chi.properties
    }
    node = state.graph.create_node(chi.labels, properties)
    if chi.name is not None:
        row[chi.name] = node
    return node
