"""Graph serialization: JSON round-trips and DOT export.

The JSON document shape is the obvious one::

    {"nodes": [{"id": 1, "labels": ["Person"], "properties": {...}}, ...],
     "relationships": [{"id": 1, "type": "KNOWS", "start": 1, "end": 2,
                        "properties": {...}}, ...]}

Node and relationship ids are preserved on load (via ``adopt``-style
insertion), so serialized references and Cypher 10 cross-graph identity
survive a round trip.  Declared property indexes ride along under an
``"indexes"`` key (``[{"label": ..., "key": ...}, ...]`` for single-key
indexes, ``{"label": ..., "keys": [...]}`` for composites) and are
rebuilt on load, so index statistics survive the round trip too;
reachability indexes ride along the same way under
``"reachability_indexes"`` (``[{"types": [...] | null}, ...]``, null
meaning the all-types index).  DOT export renders the graph for
graphviz.
"""

from __future__ import annotations

import json

from repro.exceptions import CypherRuntimeError
from repro.graph.store import MemoryGraph
from repro.values.base import NodeId, RelId


def graph_to_dict(graph):
    """A plain-dict snapshot of a property graph (JSON-ready)."""
    nodes = []
    for node in sorted(graph.nodes(), key=lambda n: n.value):
        nodes.append(
            {
                "id": node.value,
                "labels": sorted(graph.labels(node)),
                "properties": graph.properties(node),
            }
        )
    relationships = []
    for rel in sorted(graph.relationships(), key=lambda r: r.value):
        relationships.append(
            {
                "id": rel.value,
                "type": graph.rel_type(rel),
                "start": graph.src(rel).value,
                "end": graph.tgt(rel).value,
                "properties": graph.properties(rel),
            }
        )
    document = {"nodes": nodes, "relationships": relationships}
    declared = getattr(graph, "indexes", None)
    if callable(declared):
        # Single-key indexes keep the legacy {"label", "key"} shape so
        # old documents stay readable by old code; composites add the
        # {"label", "keys": [...]} form.
        indexes = []
        for label, keys in declared():
            if isinstance(keys, str):
                indexes.append({"label": label, "key": keys})
            else:
                indexes.append({"label": label, "keys": list(keys)})
        if indexes:
            document["indexes"] = indexes
    reach = getattr(graph, "reachability_indexes", None)
    if callable(reach):
        reachability = [
            {"types": None if types is None else list(types)}
            for types in reach()
        ]
        if reachability:
            document["reachability_indexes"] = reachability
    return document


def graph_from_dict(document):
    """Rebuild a MemoryGraph from :func:`graph_to_dict` output.

    Node ids are preserved exactly; relationship ids are preserved when
    possible (they are reassigned in document order otherwise).
    """
    graph = MemoryGraph()
    try:
        node_specs = document["nodes"]
        rel_specs = document.get("relationships", [])
    except (TypeError, KeyError):
        raise CypherRuntimeError("malformed graph document")
    for spec in node_specs:
        graph.adopt_node(
            NodeId(spec["id"]),
            spec.get("labels", ()),
            spec.get("properties", {}),
        )
    for spec in rel_specs:
        rel = graph.create_relationship(
            NodeId(spec["start"]),
            NodeId(spec["end"]),
            spec["type"],
            spec.get("properties", {}),
        )
        if rel.value != spec.get("id", rel.value):
            # ids are engine-assigned; document order defines them here
            pass
    for spec in document.get("indexes", ()):
        # Declared after the data so the initial build scans once and
        # the loaded index statistics match a live-built index exactly.
        keys = spec.get("keys")
        if keys is None:
            keys = [spec["key"]]
        graph.create_index(spec["label"], *keys)
    for spec in document.get("reachability_indexes", ()):
        types = spec.get("types")
        graph.create_reachability_index(
            None if types is None else tuple(types)
        )
    return graph


def dump_json(graph, path=None, indent=2):
    """Serialize to a JSON string, optionally also writing ``path``."""
    text = json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def load_json(source):
    """Load a graph from a JSON string or a file path."""
    if "\n" in source or source.lstrip().startswith("{"):
        document = json.loads(source)
    else:
        with open(source) as handle:
            document = json.load(handle)
    return graph_from_dict(document)


def to_dot(graph, name="G"):
    """Render the graph in graphviz DOT syntax."""
    lines = ["digraph %s {" % name]
    for node in sorted(graph.nodes(), key=lambda n: n.value):
        labels = ":".join(sorted(graph.labels(node)))
        display = graph.property_value(node, "name")
        title = display if isinstance(display, str) else "n%d" % node.value
        if labels:
            title += "\\n:" + labels
        lines.append('  n%d [label="%s"];' % (node.value, title))
    for rel in sorted(graph.relationships(), key=lambda r: r.value):
        lines.append(
            '  n%d -> n%d [label="%s"];'
            % (
                graph.src(rel).value,
                graph.tgt(rel).value,
                graph.rel_type(rel),
            )
        )
    lines.append("}")
    return "\n".join(lines)
